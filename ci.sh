#!/usr/bin/env bash
# CI gate. Everything runs with --offline: the workspace is hermetic
# (zero external crates — see DESIGN.md §3), and this script is what
# enforces that policy. A build that reaches for the network fails here.
set -euo pipefail
cd "$(dirname "$0")"

echo "== lint: rustfmt =="
cargo fmt --check

echo "== lint: clippy (offline, all warnings deny) =="
# --workspace pulls in crates/live too, which default-members exclude
# from build/test; lints still cover it.
cargo clippy --offline --workspace -- -D warnings

echo "== lint: cidre-lint (determinism & safety ratchet) =="
# In-tree static analyzer (crates/lint): the token rules (W1 wall-clock,
# O1 unordered hash iteration, F1 partial_cmp, C1 lossy time/mem casts,
# E1 ambient entropy, U1 bare unwrap, P1 library printing) plus the
# flow-sensitive concurrency rules (G1 guard across await, K1 wake
# under an executor lock, L1 lock-order cycles, S1 conductor
# confinement — seeded from lint-locks.toml). Fails on any violation
# not accepted by lint-baseline.toml, on a stale baseline, and on any
# unjustified `lint:allow`. See DESIGN.md §8 and §13. The analyzer must
# itself be deterministic: run the JSON report twice and require
# byte-identical output, inside a 10s wall-time budget for both scans.
cargo build -q --release --offline -p cidre-lint
lint_a="$(mktemp)"
lint_b="$(mktemp)"
trap 'rm -f "$lint_a" "$lint_b"' EXIT
lint_t0="$(date +%s%N)"
cargo run -q --release --offline -p cidre-lint -- --format=json > "$lint_a"
cargo run -q --release --offline -p cidre-lint -- --format=json > "$lint_b"
lint_t1="$(date +%s%N)"
cmp "$lint_a" "$lint_b"
lint_ms=$(( (lint_t1 - lint_t0) / 1000000 ))
echo "   cidre-lint: two scans in ${lint_ms}ms"
if [ "$lint_ms" -ge 10000 ]; then
  echo "cidre-lint: wall-time budget blown (${lint_ms}ms >= 10000ms)" >&2
  exit 1
fi
rm -f "$lint_a" "$lint_b"
trap - EXIT

echo "== tier 1: release build (offline) =="
cargo build --release --offline

echo "== tier 1: sharded oracle smoke (2 shards, offline) =="
# Fast fail signal for the epoch-barrier protocol (DESIGN.md §9):
# one pinned seed through all three engines at 2 shards, in release so
# it finishes in seconds. The full randomized three-way oracle runs in
# the debug suite below.
cargo test -q --offline --release --test equivalence sharded_oracle_smoke_two_shards

echo "== tier 1: tests (offline) =="
# Workspace default-members exclude crates/live, whose wall-clock
# fidelity tests are load-sensitive; everything else runs.
cargo test -q --offline

echo "== tier 1: live load-gen smoke (offline) =="
# ~1500 requests through the executor-backed live host and the
# simulator side by side: exits non-zero on dropped requests, a missed
# concurrency floor, or live-vs-sim divergence beyond documented noise.
# --no-report keeps BENCH_results.json untouched; the reporting run
# happens after the bench baseline snapshot below.
cargo run -q --release --offline -p cidre-bench --bin live_load -- \
  --smoke --no-report

echo "== tier 1: pareto sweep smoke (offline) =="
# The cost-ledger Pareto frontier (DESIGN.md §11): run the sweep twice
# at tiny scale into scratch dirs and require byte-identical CSVs —
# the cheap end-to-end determinism check; the golden hash, --jobs, and
# shard-count pins live in tests/determinism.rs.
pareto_a="$(mktemp -d)"
pareto_b="$(mktemp -d)"
trap 'rm -rf "$pareto_a" "$pareto_b"' EXIT
cargo run -q --release --offline -p cidre-bench --bin experiments -- \
  pareto --tiny --out "$pareto_a"
cargo run -q --release --offline -p cidre-bench --bin experiments -- \
  pareto --tiny --out "$pareto_b"
cmp "$pareto_a/pareto.csv" "$pareto_b/pareto.csv"
rm -rf "$pareto_a" "$pareto_b"
trap - EXIT

echo "== tier 1: trace export smoke (offline) =="
# The observability sweep (DESIGN.md §12): run the latency-waterfall
# experiment twice at tiny scale and require the CSV *and* every
# Chrome trace-event export byte-identical — recording must be as
# deterministic as the runs it records. Shard-count and --jobs
# invariance plus the golden hash live in tests/determinism.rs.
trace_a="$(mktemp -d)"
trace_b="$(mktemp -d)"
trap 'rm -rf "$trace_a" "$trace_b"' EXIT
cargo run -q --release --offline -p cidre-bench --bin experiments -- \
  trace --tiny --out "$trace_a"
cargo run -q --release --offline -p cidre-bench --bin experiments -- \
  trace --tiny --out "$trace_b"
cmp "$trace_a/trace.csv" "$trace_b/trace.csv"
for policy in faascache cidre-bss cidre; do
  cmp "$trace_a/trace_$policy.json" "$trace_b/trace_$policy.json"
done
rm -rf "$trace_a" "$trace_b"
trap - EXIT

echo "== bench smoke (offline) =="
# Seconds-long pass over all bench targets; merges median/p95 stats
# into BENCH_results.json and proves the harness end-to-end. The
# committed file is snapshotted first so bench_guard can compare the
# fresh numbers against the pre-run baseline.
baseline="$(mktemp)"
trap 'rm -f "$baseline"' EXIT
cp BENCH_results.json "$baseline"
BENCH_SMOKE=1 cargo bench --offline

echo "== bench lane: live load serving (offline) =="
# Re-run the load-gen smoke with reporting on: merges the sustained
# req/s, live p99 wait, and GB-s/request lanes (live_load/serve_smoke/*)
# into BENCH_results.json for bench_guard to ratchet.
cargo run -q --release --offline -p cidre-bench --bin live_load -- --smoke

echo "== bench guard: large-N throughput + sharded scaling + live lanes =="
# Fails on a >20% events/sec regression of replay/large_n vs the
# committed baseline, if the indexed scan drops below 2x the retained
# reference scan, or if the sharded scaling lane (scaling/shards_4 vs
# scaling/shards_1) falls below its parallelism-aware floor — 2.5x on
# >=4-CPU hosts, an overhead bound on narrower ones — or regresses
# >20% vs its committed baseline. The live serving lanes ratchet too,
# at a looser 35% (wall-clock noise): sustained req/s may not fall,
# and live p99 wait may not grow, past that band. The memory ratchet
# (serve_smoke/gbs_per_req, deterministic sim-side GB-s per request)
# holds the tight 20% band: the keep-warm bill may not quietly grow.
# The recorder-off gate holds replay/large_n (which runs with the
# NoopRecorder) within 2% of the committed baseline, best sample vs
# median, proving the disabled recorder is free (DESIGN.md §12).
cargo run -q --release --offline -p cidre-bench --bin bench_guard -- \
  "$baseline" BENCH_results.json

echo "== ci.sh: all green =="
