//! # CIDRE — Concurrency-Informed Orchestration for Serverless Functions
//!
//! A from-scratch Rust reproduction of the ASPLOS 2025 paper
//! *Concurrency-Informed Orchestration for Serverless Functions*
//! (Liu, Cheng, Shen, Wang, Balaji): the CIDRE container-orchestration
//! policy, a discrete-event FaaS cluster simulator to run it on,
//! synthetic production-shaped workloads, every baseline the paper
//! compares against, and an experiment harness regenerating every table
//! and figure of the evaluation.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`trace`] — workload model, synthetic Azure/FC generators,
//!   transforms, statistics ([`faas_trace`]).
//! * [`sim`] — the discrete-event cluster simulator and policy traits
//!   ([`faas_sim`]).
//! * [`core`] — CIDRE itself: CIP eviction, BSS/CSS speculative scaling
//!   ([`cidre_core`]).
//! * [`policies`] — TTL, LRU, FaasCache, RainbowCake, IceBreaker,
//!   CodeCrunch, Flame, ENSURE, and the Offline oracle
//!   ([`faas_policies`]).
//! * [`live`] — a live mini-FaaS host (real threads and clocks) driven
//!   by the same policies, for validating the simulator
//!   ([`faas_live`]).
//! * [`metrics`] — CDFs, percentiles, sliding windows, tables
//!   ([`faas_metrics`]).
//! * [`obs`] — deterministic tracing: decision provenance, Chrome
//!   trace export, latency waterfalls ([`faas_obs`]).
//!
//! # Quickstart
//!
//! ```
//! use cidre::core::{cidre_stack, CidreConfig};
//! use cidre::policies::faascache_stack;
//! use cidre::sim::{run, SimConfig, StartClass};
//! use cidre::trace::gen;
//!
//! // A small Azure-shaped workload.
//! let trace = gen::azure(42).functions(20).minutes(1).build();
//! let config = SimConfig::default();
//!
//! let cidre = run(&trace, &config, cidre_stack(CidreConfig::default()));
//! let faascache = run(&trace, &config, faascache_stack());
//!
//! // CIDRE converts cold starts into (cheaper) delayed warm starts.
//! assert!(cidre.ratio(StartClass::Cold) <= faascache.ratio(StartClass::Cold));
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and substitution notes, and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure and table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cidre_core as core;
pub use faas_live as live;
pub use faas_metrics as metrics;
pub use faas_obs as obs;
pub use faas_policies as policies;
pub use faas_sim as sim;
pub use faas_trace as trace;

/// Workspace version, matching every member crate.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
