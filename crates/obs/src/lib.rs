//! # faas-obs — deterministic observability for every engine
//!
//! A structured event recorder threaded through all four execution
//! engines (sequential sim, sharded sim, live runtime, live host),
//! answering *why* a policy stack did what it did: every policy choice
//! point — admit/queue/cold-start/speculative-start decisions, eviction
//! victim selection with the losing candidates and their priorities,
//! retry/backoff scheduling — emits a provenance record, and the
//! request lifecycle events around them decompose end-to-end latency
//! into queue / provisioning / retry / execution segments
//! ([`waterfall`]).
//!
//! Three design rules (DESIGN.md §12):
//!
//! * **Deterministic.** Timestamps are virtual [`TimePoint`]s, never
//!   wall clocks. Events are emitted only from the deterministic
//!   control path — in the sharded engine that means conductor context
//!   and the lineage-ordered `sync()` replay — so a sharded run's
//!   stream is byte-identical to the sequential run's, at any shard
//!   count, faults included.
//! * **Zero-cost when off.** Engines are generic over [`Recorder`];
//!   the unit [`NoopRecorder`] returns `enabled() == false` from an
//!   inlined default method, so monomorphized untraced runs compile
//!   every emission site to nothing. Anything expensive to build
//!   (candidate snapshots, provenance strings) must be gated behind
//!   `enabled()` at the call site.
//! * **Dependency-free.** Only `faas-trace` (itself std-only) for the
//!   time and function-id vocabulary; ids of other domain types cross
//!   the boundary as raw integers so `faas-obs` sits below the engines
//!   in the crate DAG.
//!
//! Exporters: [`chrome::to_chrome_json`] writes the Chrome trace-event
//! format (load in Perfetto / `chrome://tracing`; one track per worker
//! and container, one for orchestrator decisions), and
//! [`waterfall::waterfalls`] turns a log into per-request latency
//! decompositions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod waterfall;

use std::collections::VecDeque;

use faas_trace::{FunctionId, TimeDelta, TimePoint};

/// The final admission decision for an arrival that found no idle warm
/// container (warm hits start immediately and emit only
/// [`ObsEvent::Start`]; there is no policy choice to record).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitDecision {
    /// Provision a new container immediately.
    ColdStart,
    /// Park in the pending queue until a warm container frees up.
    WaitWarm,
    /// CSS race: queue the request *and* start a speculative container.
    Race,
    /// Enqueue on a specific busy container's local queue.
    EnqueueOn(u64),
}

/// How a request's execution started. Mirrors the simulator's
/// `StartClass` without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsClass {
    /// Immediate start on an idle warm container.
    Warm,
    /// Queued, then started on a container that became free.
    DelayedWarm,
    /// Waited for a fresh container to be provisioned.
    Cold,
}

impl ObsClass {
    /// All classes, in waterfall display order.
    pub const ALL: [ObsClass; 3] = [ObsClass::Warm, ObsClass::DelayedWarm, ObsClass::Cold];

    /// Stable lowercase label (CSV columns, chart rows).
    pub fn label(self) -> &'static str {
        match self {
            ObsClass::Warm => "warm",
            ObsClass::DelayedWarm => "delayed_warm",
            ObsClass::Cold => "cold",
        }
    }
}

/// Why a container was evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// REPLACE round: evicted to make room for an incoming container.
    Replace,
    /// Keep-alive expiration (idle timeout / policy tick).
    Expire,
    /// The worker hosting it crashed.
    Crash,
}

/// One structured trace event. Instants carry their own `at`; spans
/// are reconstructed by exporters from begin/end pairs
/// ([`ObsEvent::ProvisionBegin`]/[`ObsEvent::ProvisionEnd`],
/// [`ObsEvent::Start`]/[`ObsEvent::Finish`]).
///
/// Container, request, and worker ids are raw integers (`u64`/`u16`)
/// so this crate does not depend on the simulator; the engines own the
/// newtype wrappers.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// Admission decision for a blocked arrival (decision provenance).
    /// `note` carries the scaler's [`explain`] string when available.
    ///
    /// [`explain`]: ObsEvent#provenance-notes
    Admit {
        /// Virtual time of the arrival.
        at: TimePoint,
        /// Request id.
        rid: u64,
        /// Function of the request.
        func: FunctionId,
        /// The final decision, after any escalation or validation.
        decision: AdmitDecision,
        /// Scaler-provided provenance note.
        note: Option<String>,
    },
    /// A request began executing.
    Start {
        /// Virtual start time.
        at: TimePoint,
        /// Request id.
        rid: u64,
        /// Serving container.
        cid: u64,
        /// Function of the request.
        func: FunctionId,
        /// How the start was served.
        class: ObsClass,
        /// Queue wait endured before the start (`at - arrival`).
        wait: TimeDelta,
    },
    /// A request finished executing.
    Finish {
        /// Virtual completion time.
        at: TimePoint,
        /// Request id.
        rid: u64,
        /// Serving container.
        cid: u64,
    },
    /// Container provisioning began.
    ProvisionBegin {
        /// Virtual time provisioning started.
        at: TimePoint,
        /// The new container's id.
        cid: u64,
        /// Function the container will serve.
        func: FunctionId,
        /// Worker it is placed on.
        worker: u16,
        /// True when started speculatively (CSS race).
        speculative: bool,
        /// Retry attempt number (0 = first try).
        attempt: u32,
    },
    /// Container provisioning completed (`ok`) or failed (`!ok`).
    ProvisionEnd {
        /// Virtual time provisioning ended.
        at: TimePoint,
        /// The container's id.
        cid: u64,
        /// Whether the container came up.
        ok: bool,
    },
    /// A failed provision was scheduled for retry (decision
    /// provenance: fault-model backoff).
    RetryScheduled {
        /// Virtual time of the failure.
        at: TimePoint,
        /// Function whose provision failed.
        func: FunctionId,
        /// The attempt number the retry will carry.
        attempt: u32,
        /// Backoff delay until the retry fires.
        backoff: TimeDelta,
        /// Whether the failed provision was speculative.
        speculative: bool,
    },
    /// Victim-selection provenance for a REPLACE round: every idle
    /// candidate on the chosen worker with its keep-alive priority,
    /// sorted ascending (priority, then container id) — the eviction
    /// order. The actual victims are a prefix of this list; the rest
    /// are the losing candidates.
    EvictCandidates {
        /// Virtual time of the REPLACE round.
        at: TimePoint,
        /// Worker being scavenged.
        worker: u16,
        /// Function the freed memory is for.
        incoming: FunctionId,
        /// `(container id, priority)` in eviction order.
        candidates: Vec<(u64, f64)>,
    },
    /// A container was evicted. `note` carries the keep-alive policy's
    /// `explain` string when available.
    Evict {
        /// Virtual eviction time.
        at: TimePoint,
        /// The evicted container.
        cid: u64,
        /// Function it served.
        func: FunctionId,
        /// Worker it lived on.
        worker: u16,
        /// Why it was evicted.
        reason: EvictReason,
        /// Keep-alive-provided provenance note.
        note: Option<String>,
    },
    /// A provision request could not be placed (no worker with enough
    /// reclaimable memory) and was deferred to the backlog.
    Defer {
        /// Virtual time of the deferral.
        at: TimePoint,
        /// Function whose provision was deferred.
        func: FunctionId,
        /// Whether the deferred provision is speculative.
        speculative: bool,
    },
    /// A worker crashed (fault injection); per-victim
    /// [`ObsEvent::Evict`] records with [`EvictReason::Crash`] follow.
    WorkerDown {
        /// Virtual crash time.
        at: TimePoint,
        /// The crashed worker.
        worker: u16,
    },
}

impl ObsEvent {
    /// The event's virtual timestamp.
    pub fn at(&self) -> TimePoint {
        match self {
            ObsEvent::Admit { at, .. }
            | ObsEvent::Start { at, .. }
            | ObsEvent::Finish { at, .. }
            | ObsEvent::ProvisionBegin { at, .. }
            | ObsEvent::ProvisionEnd { at, .. }
            | ObsEvent::RetryScheduled { at, .. }
            | ObsEvent::EvictCandidates { at, .. }
            | ObsEvent::Evict { at, .. }
            | ObsEvent::Defer { at, .. }
            | ObsEvent::WorkerDown { at, .. } => *at,
        }
    }
}

/// Event sink the engines are generic over. The default methods are
/// the no-op implementation: `enabled()` is a constant `false` the
/// optimizer folds, so every emission site guarded by
/// `if rec.enabled()` disappears from untraced monomorphizations.
///
/// Implementations must be cheap and infallible; recording must never
/// influence engine behavior (determinism rule: a traced run produces
/// the same report as an untraced one).
pub trait Recorder {
    /// Whether events are being kept. Gate any work needed only to
    /// *build* an event (snapshots, note strings) behind this.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Record one event. No-op by default.
    #[inline]
    fn record(&mut self, event: ObsEvent) {
        let _ = event;
    }

    /// Finish recording and take the accumulated log, leaving the
    /// recorder empty. The no-op default returns an empty log. Exists so
    /// engines that cannot return their recorder by value (e.g. an
    /// orchestrator task replying over a channel) can still surface the
    /// log through a generic `R: Recorder`.
    fn take_log(&mut self) -> TraceLog {
        TraceLog::default()
    }
}

/// The zero-cost recorder: unit struct, all defaults.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// A bounded ring-buffer recorder. When full, the oldest events are
/// dropped (and counted) so long traced runs keep the most recent
/// window; [`RingRecorder::unbounded`] keeps everything.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    buf: VecDeque<ObsEvent>,
    cap: usize,
    dropped: u64,
}

impl RingRecorder {
    /// A recorder that keeps at most `cap` events (the newest win).
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be positive");
        RingRecorder {
            buf: VecDeque::new(),
            cap,
            dropped: 0,
        }
    }

    /// A recorder that keeps every event.
    pub fn unbounded() -> Self {
        RingRecorder {
            buf: VecDeque::new(),
            cap: usize::MAX,
            dropped: 0,
        }
    }

    /// Finish recording and take the accumulated log.
    pub fn into_log(self) -> TraceLog {
        TraceLog {
            events: self.buf.into(),
            dropped: self.dropped,
        }
    }
}

impl Recorder for RingRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: ObsEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    fn take_log(&mut self) -> TraceLog {
        TraceLog {
            events: std::mem::take(&mut self.buf).into(),
            dropped: std::mem::take(&mut self.dropped),
        }
    }
}

/// A finished recording: the retained events in emission order (which
/// for the simulators is virtual-time lineage order), plus how many
/// older events the ring dropped.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceLog {
    events: Vec<ObsEvent>,
    dropped: u64,
}

impl TraceLog {
    /// The retained events, oldest first.
    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events the bounded ring discarded to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Export as Chrome trace-event JSON (see [`chrome`]).
    pub fn to_chrome_json(&self) -> String {
        chrome::to_chrome_json(self.events())
    }

    /// Per-request latency waterfalls (see [`waterfall`]).
    pub fn waterfalls(&self) -> Vec<waterfall::Waterfall> {
        waterfall::waterfalls(self.events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(us: u64) -> ObsEvent {
        ObsEvent::Defer {
            at: TimePoint::from_micros(us),
            func: FunctionId(0),
            speculative: false,
        }
    }

    #[test]
    fn noop_recorder_is_disabled() {
        let mut rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.record(ev(1)); // must be a no-op, not a panic
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut rec = RingRecorder::with_capacity(2);
        assert!(rec.enabled());
        for us in 0..5 {
            rec.record(ev(us));
        }
        let log = rec.into_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let ats: Vec<u64> = log.events().iter().map(|e| e.at().as_micros()).collect();
        assert_eq!(ats, vec![3, 4]);
    }

    #[test]
    fn take_log_drains_the_ring() {
        let mut rec = RingRecorder::unbounded();
        rec.record(ev(7));
        let log = rec.take_log();
        assert_eq!(log.len(), 1);
        assert!(rec.take_log().is_empty(), "take_log leaves the ring empty");
        let mut noop = NoopRecorder;
        assert!(noop.take_log().is_empty());
    }

    #[test]
    fn unbounded_keeps_everything() {
        let mut rec = RingRecorder::unbounded();
        for us in 0..100 {
            rec.record(ev(us));
        }
        let log = rec.into_log();
        assert_eq!(log.len(), 100);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = RingRecorder::with_capacity(0);
    }
}
