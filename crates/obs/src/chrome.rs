//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! Layout: pid 0 is the orchestrator track (admission decisions,
//! deferrals, retry scheduling, worker crashes as instant events);
//! every worker `w` becomes pid `w + 1`, and every container becomes a
//! thread (tid = container id) under its worker, carrying complete
//! (`"ph":"X"`) spans for provisioning and request execution. Evictions
//! are instants on the container's own track.
//!
//! The writer is a single deterministic pass over the event stream:
//! spans are emitted when they close (at `ProvisionEnd` / `Finish`, or
//! at the crash that killed them), instants inline, and track metadata
//! at the end from sorted id sets. Two runs that record the same events
//! therefore export byte-identical JSON — the property the determinism
//! goldens and the CI double-run lane pin.

use std::collections::{BTreeMap, BTreeSet};

use faas_trace::{FunctionId, TimePoint};

use crate::{AdmitDecision, EvictReason, ObsEvent};

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON value: finite numbers via Rust's
/// shortest-roundtrip `Debug` (always a valid JSON number), non-finite
/// values as strings (JSON has no NaN/Infinity literals).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        format!("\"{v}\"")
    }
}

/// Formats an optional provenance note as a trailing args field.
fn note_field(note: &Option<String>) -> String {
    match note {
        Some(n) => format!(",\"note\":\"{}\"", escape(n)),
        None => String::new(),
    }
}

fn decision_label(d: &AdmitDecision) -> String {
    match d {
        AdmitDecision::ColdStart => "cold-start".into(),
        AdmitDecision::WaitWarm => "wait-warm".into(),
        AdmitDecision::Race => "race".into(),
        AdmitDecision::EnqueueOn(cid) => format!("enqueue-on c{cid}"),
    }
}

fn reason_label(r: EvictReason) -> &'static str {
    match r {
        EvictReason::Replace => "replace",
        EvictReason::Expire => "expire",
        EvictReason::Crash => "crash",
    }
}

/// An open execution span: where and when the request started.
struct OpenExec {
    start: TimePoint,
    cid: u64,
    func: FunctionId,
}

/// An open provisioning span.
struct OpenProv {
    begin: TimePoint,
    func: FunctionId,
    speculative: bool,
    attempt: u32,
}

/// State for the single export pass.
struct Writer {
    out: Vec<String>,
    /// Container -> worker placement, learned from `ProvisionBegin`.
    placement: BTreeMap<u64, u16>,
    open_exec: BTreeMap<u64, OpenExec>,
    open_prov: BTreeMap<u64, OpenProv>,
    /// Worker pids that appeared (for process metadata).
    workers: BTreeSet<u16>,
    /// (pid, tid) container tracks that appeared (for thread metadata).
    tracks: BTreeSet<(u64, u64)>,
    /// Latest timestamp seen; closes still-open spans at the end.
    max_ts: u64,
}

impl Writer {
    fn new() -> Self {
        Writer {
            out: Vec::new(),
            placement: BTreeMap::new(),
            open_exec: BTreeMap::new(),
            open_prov: BTreeMap::new(),
            workers: BTreeSet::new(),
            tracks: BTreeSet::new(),
            max_ts: 0,
        }
    }

    /// pid for a container's track; 0 (orchestrator) when the ring
    /// buffer dropped its `ProvisionBegin` and the placement is lost.
    fn pid_of(&mut self, cid: u64) -> u64 {
        match self.placement.get(&cid) {
            Some(&w) => {
                self.workers.insert(w);
                u64::from(w) + 1
            }
            None => 0,
        }
    }

    fn instant(&mut self, name: &str, ts: u64, pid: u64, tid: u64, args: String) {
        self.out.push(format!(
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\
             \"s\":\"t\",\"args\":{{{args}}}}}"
        ));
        self.tracks.insert((pid, tid));
    }

    fn span(&mut self, name: &str, cat: &str, ts: u64, dur: u64, track: (u64, u64), args: String) {
        let (pid, tid) = track;
        self.out.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
             \"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}"
        ));
        self.tracks.insert(track);
    }

    fn close_exec(&mut self, rid: u64, end: TimePoint, killed: bool) {
        let Some(open) = self.open_exec.remove(&rid) else {
            return;
        };
        let pid = self.pid_of(open.cid);
        let suffix = if killed { " (killed)" } else { "" };
        let name = format!("f{}{suffix}", open.func.0);
        let ts = open.start.as_micros();
        let dur = end.as_micros().saturating_sub(ts);
        let args = format!("\"rid\":{rid},\"cid\":{}", open.cid);
        self.span(&name, "exec", ts, dur, (pid, open.cid), args);
    }

    fn close_prov(&mut self, cid: u64, end: TimePoint, outcome: &str) {
        let Some(open) = self.open_prov.remove(&cid) else {
            return;
        };
        let pid = self.pid_of(cid);
        let name = format!("provision f{}", open.func.0);
        let ts = open.begin.as_micros();
        let dur = end.as_micros().saturating_sub(ts);
        let args = format!(
            "\"cid\":{cid},\"outcome\":\"{outcome}\",\"speculative\":{},\"attempt\":{}",
            open.speculative, open.attempt
        );
        self.span(&name, "provision", ts, dur, (pid, cid), args);
    }

    fn push(&mut self, ev: &ObsEvent) {
        let ts = ev.at().as_micros();
        self.max_ts = self.max_ts.max(ts);
        match ev {
            ObsEvent::Admit {
                rid,
                func,
                decision,
                note,
                ..
            } => {
                let args = format!(
                    "\"rid\":{rid},\"func\":{},\"decision\":\"{}\"{}",
                    func.0,
                    decision_label(decision),
                    note_field(note)
                );
                self.instant("admit", ts, 0, 0, args);
            }
            ObsEvent::Start {
                rid,
                cid,
                func,
                class,
                wait,
                ..
            } => {
                self.open_exec.insert(
                    *rid,
                    OpenExec {
                        start: ev.at(),
                        cid: *cid,
                        func: *func,
                    },
                );
                // The start itself is also an instant so class and
                // queue wait stay visible even if the span never
                // closes (crash) or the ring dropped the Finish.
                let pid = self.pid_of(*cid);
                let args = format!(
                    "\"rid\":{rid},\"class\":\"{}\",\"wait_us\":{}",
                    class.label(),
                    wait.as_micros()
                );
                self.instant("start", ts, pid, *cid, args);
            }
            ObsEvent::Finish { rid, .. } => self.close_exec(*rid, ev.at(), false),
            ObsEvent::ProvisionBegin {
                cid,
                func,
                worker,
                speculative,
                attempt,
                ..
            } => {
                self.placement.insert(*cid, *worker);
                self.open_prov.insert(
                    *cid,
                    OpenProv {
                        begin: ev.at(),
                        func: *func,
                        speculative: *speculative,
                        attempt: *attempt,
                    },
                );
            }
            ObsEvent::ProvisionEnd { cid, ok, .. } => {
                let outcome = if *ok { "ok" } else { "failed" };
                self.close_prov(*cid, ev.at(), outcome);
            }
            ObsEvent::RetryScheduled {
                func,
                attempt,
                backoff,
                speculative,
                ..
            } => {
                let args = format!(
                    "\"func\":{},\"attempt\":{attempt},\"backoff_us\":{},\"speculative\":{speculative}",
                    func.0,
                    backoff.as_micros()
                );
                self.instant("retry-scheduled", ts, 0, 0, args);
            }
            ObsEvent::EvictCandidates {
                worker,
                incoming,
                candidates,
                ..
            } => {
                self.workers.insert(*worker);
                let pid = u64::from(*worker) + 1;
                let list: Vec<String> = candidates
                    .iter()
                    .map(|(cid, prio)| format!("[{cid},{}]", json_f64(*prio)))
                    .collect();
                let args = format!(
                    "\"incoming\":{},\"candidates\":[{}]",
                    incoming.0,
                    list.join(",")
                );
                self.instant("replace-candidates", ts, pid, 0, args);
            }
            ObsEvent::Evict {
                cid,
                func,
                worker,
                reason,
                note,
                ..
            } => {
                if *reason == EvictReason::Crash {
                    // The crash voids whatever the container was doing:
                    // close its open spans as killed, oldest rid first.
                    let doomed: Vec<u64> = self
                        .open_exec
                        .iter()
                        .filter(|(_, o)| o.cid == *cid)
                        .map(|(&rid, _)| rid)
                        .collect();
                    for rid in doomed {
                        self.close_exec(rid, ev.at(), true);
                    }
                    self.close_prov(*cid, ev.at(), "killed");
                }
                self.workers.insert(*worker);
                let pid = u64::from(*worker) + 1;
                let name = format!("evict:{}", reason_label(*reason));
                let args = format!("\"func\":{}{}", func.0, note_field(note));
                self.instant(&name, ts, pid, *cid, args);
            }
            ObsEvent::Defer {
                func, speculative, ..
            } => {
                let args = format!("\"func\":{},\"speculative\":{speculative}", func.0);
                self.instant("defer", ts, 0, 0, args);
            }
            ObsEvent::WorkerDown { worker, .. } => {
                self.workers.insert(*worker);
                let args = format!("\"worker\":{worker}");
                self.instant("worker-down", ts, 0, 0, args);
            }
        }
    }

    fn finish(mut self) -> String {
        // Close anything still open (interrupted recordings) at the
        // last timestamp seen, marked so readers know the end is fake.
        let end = TimePoint::from_micros(self.max_ts);
        let rids: Vec<u64> = self.open_exec.keys().copied().collect();
        for rid in rids {
            self.close_exec(rid, end, false);
        }
        let cids: Vec<u64> = self.open_prov.keys().copied().collect();
        for cid in cids {
            self.close_prov(cid, end, "open");
        }

        // Track metadata from the sorted id sets: deterministic, and
        // emitted last so the single pass above never needs lookahead.
        self.out.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\
             \"args\":{\"name\":\"orchestrator\"}}"
                .to_string(),
        );
        for w in &self.workers {
            let pid = u64::from(*w) + 1;
            self.out.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\
                 \"args\":{{\"name\":\"worker w{w}\"}}}}"
            ));
        }
        for (pid, tid) in &self.tracks {
            let name = if *tid == 0 {
                "events".to_string()
            } else {
                format!("c{tid}")
            };
            self.out.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ));
        }

        let mut json = String::from("{\"traceEvents\":[\n");
        json.push_str(&self.out.join(",\n"));
        json.push_str("\n]}\n");
        json
    }
}

/// Exports an event stream as Chrome trace-event JSON.
pub fn to_chrome_json(events: &[ObsEvent]) -> String {
    let mut w = Writer::new();
    for ev in events {
        w.push(ev);
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use faas_trace::TimeDelta;

    use super::*;
    use crate::ObsClass;

    fn t(ms: u64) -> TimePoint {
        TimePoint::from_millis(ms)
    }

    fn sample_events() -> Vec<ObsEvent> {
        vec![
            ObsEvent::Admit {
                at: t(0),
                rid: 0,
                func: FunctionId(1),
                decision: AdmitDecision::ColdStart,
                note: Some("tail \"quote\"".into()),
            },
            ObsEvent::ProvisionBegin {
                at: t(0),
                cid: 7,
                func: FunctionId(1),
                worker: 2,
                speculative: false,
                attempt: 0,
            },
            ObsEvent::ProvisionEnd {
                at: t(40),
                cid: 7,
                ok: true,
            },
            ObsEvent::Start {
                at: t(40),
                rid: 0,
                cid: 7,
                func: FunctionId(1),
                class: ObsClass::Cold,
                wait: TimeDelta::from_millis(40),
            },
            ObsEvent::EvictCandidates {
                at: t(50),
                worker: 2,
                incoming: FunctionId(0),
                candidates: vec![(7, 1.5), (9, f64::INFINITY)],
            },
            ObsEvent::Finish {
                at: t(90),
                rid: 0,
                cid: 7,
            },
            ObsEvent::WorkerDown {
                at: t(95),
                worker: 2,
            },
            ObsEvent::Evict {
                at: t(95),
                cid: 7,
                func: FunctionId(1),
                worker: 2,
                reason: EvictReason::Crash,
                note: None,
            },
        ]
    }

    #[test]
    fn export_is_valid_json_with_expected_tracks() {
        let json = to_chrome_json(&sample_events());
        let doc = faas_testkit::json::Value::parse(&json).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents array");
        assert!(!events.is_empty());
        // Exactly one exec span, on worker 2's pid (3), thread c7.
        let execs: Vec<_> = events
            .iter()
            .filter(|e| e.get("cat").and_then(|v| v.as_str()) == Some("exec"))
            .collect();
        assert_eq!(execs.len(), 1);
        assert_eq!(execs[0].get("pid").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(execs[0].get("tid").and_then(|v| v.as_f64()), Some(7.0));
        assert_eq!(execs[0].get("ts").and_then(|v| v.as_f64()), Some(40_000.0));
        assert_eq!(execs[0].get("dur").and_then(|v| v.as_f64()), Some(50_000.0));
        // The non-finite candidate priority round-trips as a string.
        assert!(json.contains("\"inf\""));
        // Metadata names both processes.
        assert!(json.contains("orchestrator"));
        assert!(json.contains("worker w2"));
    }

    #[test]
    fn crash_closes_open_spans_as_killed() {
        let events = vec![
            ObsEvent::ProvisionBegin {
                at: t(0),
                cid: 3,
                func: FunctionId(0),
                worker: 0,
                speculative: true,
                attempt: 1,
            },
            ObsEvent::Evict {
                at: t(10),
                cid: 3,
                func: FunctionId(0),
                worker: 0,
                reason: EvictReason::Crash,
                note: None,
            },
        ];
        let json = to_chrome_json(&events);
        faas_testkit::json::Value::parse(&json).expect("valid JSON");
        assert!(json.contains("\"outcome\":\"killed\""));
    }

    #[test]
    fn export_is_deterministic() {
        let a = to_chrome_json(&sample_events());
        let b = to_chrome_json(&sample_events());
        assert_eq!(a, b);
    }
}
