//! Latency waterfall analysis: decomposes each request's end-to-end
//! latency into queue-wait / provisioning / retry-backoff / execution
//! segments, from the event stream alone.
//!
//! Attribution rules (all integer microseconds, so the decomposition
//! is exact and deterministic):
//!
//! * A request's *arrival* is `Start.at - Start.wait`; its serving
//!   start is the **last** `Start` record for its rid (earlier starts
//!   were voided by worker crashes and never finished).
//! * `exec` = `Finish.at - Start.at`.
//! * `provision` (cold starts only) = the overlap of the serving
//!   container's `[ProvisionBegin, ProvisionEnd]` span with the
//!   request's `[arrival, start]` wait window: time the request
//!   observably spent waiting on container bring-up.
//! * `retry` = the union of the function's retry-backoff windows
//!   (`[RetryScheduled.at, at + backoff]`) clipped to the wait window,
//!   minus any part already attributed to `provision`: time capacity
//!   for the function was stalled behind the fault-injection backoff.
//! * `queue` = whatever wait remains — time spent purely waiting for
//!   a warm container or scheduling, clamped at zero.
//!
//! Warm starts have zero wait, so every overhead segment is zero.

use std::collections::BTreeMap;

use faas_trace::{FunctionId, TimeDelta, TimePoint};

use crate::{ObsClass, ObsEvent};

/// One request's latency decomposition. `queue + provision + retry`
/// equals the request's queue wait; adding `exec` gives end-to-end
/// latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waterfall {
    /// Request id.
    pub rid: u64,
    /// Function of the request.
    pub func: FunctionId,
    /// How the request was served.
    pub class: ObsClass,
    /// Pure queue / scheduling wait.
    pub queue: TimeDelta,
    /// Wait attributed to container provisioning.
    pub provision: TimeDelta,
    /// Wait attributed to fault-retry backoff windows.
    pub retry: TimeDelta,
    /// Execution time.
    pub exec: TimeDelta,
}

impl Waterfall {
    /// End-to-end latency (wait + execution).
    pub fn total(&self) -> TimeDelta {
        self.queue + self.provision + self.retry + self.exec
    }

    /// The four segments in display order (ASCII charts, CSV rows).
    pub fn segments(&self) -> [TimeDelta; 4] {
        [self.queue, self.provision, self.retry, self.exec]
    }
}

/// Segment names matching [`Waterfall::segments`] order.
pub const SEGMENT_NAMES: [&str; 4] = ["queue", "provision", "retry", "exec"];

/// Overlap length of `[a1, a2)` and `[b1, b2)` in microseconds.
fn overlap(a1: u64, a2: u64, b1: u64, b2: u64) -> u64 {
    a2.min(b2).saturating_sub(a1.max(b1))
}

/// Builds per-request waterfalls from an event stream. Requests whose
/// `Start`/`Finish` pair is incomplete (crash-voided runs that never
/// restarted, or events lost to a bounded ring) are skipped. Output is
/// sorted by rid.
pub fn waterfalls(events: &[ObsEvent]) -> Vec<Waterfall> {
    struct Started {
        at: TimePoint,
        cid: u64,
        func: FunctionId,
        class: ObsClass,
        wait: TimeDelta,
    }
    // Last Start per rid still awaiting its Finish.
    let mut open: BTreeMap<u64, Started> = BTreeMap::new();
    // Completed (start, finish) pairs per rid.
    let mut done: BTreeMap<u64, (Started, TimePoint)> = BTreeMap::new();
    // Completed provisioning spans per container, in microseconds.
    let mut prov: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    let mut prov_open: BTreeMap<u64, u64> = BTreeMap::new();
    // Retry-backoff windows per function, in microseconds.
    let mut retries: BTreeMap<FunctionId, Vec<(u64, u64)>> = BTreeMap::new();

    for ev in events {
        match ev {
            ObsEvent::Start {
                at,
                rid,
                cid,
                func,
                class,
                wait,
            } => {
                open.insert(
                    *rid,
                    Started {
                        at: *at,
                        cid: *cid,
                        func: *func,
                        class: *class,
                        wait: *wait,
                    },
                );
            }
            ObsEvent::Finish { at, rid, .. } => {
                if let Some(s) = open.remove(rid) {
                    done.insert(*rid, (s, *at));
                }
            }
            ObsEvent::ProvisionBegin { at, cid, .. } => {
                prov_open.insert(*cid, at.as_micros());
            }
            ObsEvent::ProvisionEnd { at, cid, ok } => {
                if let Some(begin) = prov_open.remove(cid) {
                    if *ok {
                        prov.insert(*cid, (begin, at.as_micros()));
                    }
                }
            }
            ObsEvent::RetryScheduled {
                at, func, backoff, ..
            } => {
                let from = at.as_micros();
                retries
                    .entry(*func)
                    .or_default()
                    .push((from, from + backoff.as_micros()));
            }
            _ => {}
        }
    }

    done.into_iter()
        .map(|(rid, (s, fin))| {
            let start = s.at.as_micros();
            let arrival = start - s.wait.as_micros();
            let exec = fin.saturating_since(s.at);

            // Provisioning wait: only cold starts waited on bring-up.
            let pspan = if s.class == ObsClass::Cold {
                prov.get(&s.cid).copied()
            } else {
                None
            };
            let prov_us = pspan.map_or(0, |(b, e)| overlap(b, e, arrival, start));

            // Retry wait: merged backoff windows for the function,
            // clipped to the wait window, minus the provisioning part.
            let mut windows: Vec<(u64, u64)> = retries
                .get(&s.func)
                .map(|ws| {
                    ws.iter()
                        .filter_map(|&(b, e)| {
                            let (b, e) = (b.max(arrival), e.min(start));
                            (b < e).then_some((b, e))
                        })
                        .collect()
                })
                .unwrap_or_default();
            windows.sort_unstable();
            let mut retry_us = 0u64;
            let mut cursor = arrival;
            for (b, e) in windows {
                let b = b.max(cursor);
                if b < e {
                    retry_us += e - b;
                    if let Some((pb, pe)) = pspan {
                        retry_us -= overlap(b, e, pb.max(arrival), pe.min(start));
                    }
                    cursor = e;
                }
            }

            let queue_us = s
                .wait
                .as_micros()
                .saturating_sub(prov_us)
                .saturating_sub(retry_us);
            Waterfall {
                rid,
                func: s.func,
                class: s.class,
                queue: TimeDelta::from_micros(queue_us),
                provision: TimeDelta::from_micros(prov_us),
                retry: TimeDelta::from_micros(retry_us),
                exec,
            }
        })
        .collect()
}

/// Aggregate waterfall over one start class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassSummary {
    /// The start class.
    pub class: ObsClass,
    /// Requests in the class.
    pub count: u64,
    /// Summed queue wait.
    pub queue: TimeDelta,
    /// Summed provisioning wait.
    pub provision: TimeDelta,
    /// Summed retry wait.
    pub retry: TimeDelta,
    /// Summed execution time.
    pub exec: TimeDelta,
}

impl ClassSummary {
    /// Mean segments in milliseconds, [`SEGMENT_NAMES`] order; zeros
    /// when the class is empty.
    pub fn mean_ms(&self) -> [f64; 4] {
        if self.count == 0 {
            return [0.0; 4];
        }
        let n = self.count as f64;
        [
            self.queue.as_millis_f64() / n,
            self.provision.as_millis_f64() / n,
            self.retry.as_millis_f64() / n,
            self.exec.as_millis_f64() / n,
        ]
    }
}

/// Aggregates waterfalls per start class. Always returns all three
/// classes in [`ObsClass::ALL`] order (empty classes with zero counts)
/// so downstream tables have a fixed shape.
pub fn summarize_by_class(wfs: &[Waterfall]) -> [ClassSummary; 3] {
    let mut out = ObsClass::ALL.map(|class| ClassSummary {
        class,
        count: 0,
        queue: TimeDelta::ZERO,
        provision: TimeDelta::ZERO,
        retry: TimeDelta::ZERO,
        exec: TimeDelta::ZERO,
    });
    for wf in wfs {
        let slot = &mut out[wf.class as usize];
        slot.count += 1;
        slot.queue += wf.queue;
        slot.provision += wf.provision;
        slot.retry += wf.retry;
        slot.exec += wf.exec;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> TimePoint {
        TimePoint::from_millis(ms)
    }

    fn d(ms: u64) -> TimeDelta {
        TimeDelta::from_millis(ms)
    }

    #[test]
    fn cold_start_decomposes_into_all_segments() {
        // Arrival at 0; a provision fails at 10ms with 30ms backoff
        // (retry window [10,40]); the serving container provisions
        // over [40,100]; execution runs [100,150].
        let events = vec![
            ObsEvent::RetryScheduled {
                at: t(10),
                func: FunctionId(0),
                attempt: 1,
                backoff: d(30),
                speculative: false,
            },
            ObsEvent::ProvisionBegin {
                at: t(40),
                cid: 1,
                func: FunctionId(0),
                worker: 0,
                speculative: false,
                attempt: 1,
            },
            ObsEvent::ProvisionEnd {
                at: t(100),
                cid: 1,
                ok: true,
            },
            ObsEvent::Start {
                at: t(100),
                rid: 5,
                cid: 1,
                func: FunctionId(0),
                class: ObsClass::Cold,
                wait: d(100),
            },
            ObsEvent::Finish {
                at: t(150),
                rid: 5,
                cid: 1,
            },
        ];
        let wfs = waterfalls(&events);
        assert_eq!(wfs.len(), 1);
        let wf = wfs[0];
        assert_eq!(wf.rid, 5);
        assert_eq!(wf.class, ObsClass::Cold);
        assert_eq!(wf.provision, d(60));
        assert_eq!(wf.retry, d(30));
        assert_eq!(wf.queue, d(10));
        assert_eq!(wf.exec, d(50));
        assert_eq!(wf.total(), d(150));
    }

    #[test]
    fn warm_start_is_pure_exec() {
        let events = vec![
            ObsEvent::Start {
                at: t(7),
                rid: 0,
                cid: 2,
                func: FunctionId(1),
                class: ObsClass::Warm,
                wait: TimeDelta::ZERO,
            },
            ObsEvent::Finish {
                at: t(19),
                rid: 0,
                cid: 2,
            },
        ];
        let wfs = waterfalls(&events);
        assert_eq!(wfs.len(), 1);
        assert_eq!(
            wfs[0].segments(),
            [TimeDelta::ZERO, TimeDelta::ZERO, TimeDelta::ZERO, d(12)]
        );
    }

    #[test]
    fn crash_voided_start_uses_the_restart() {
        // rid 3 starts on c1, the worker crashes (no Finish), then it
        // restarts on c2 and completes: only the second run counts.
        let events = vec![
            ObsEvent::Start {
                at: t(10),
                rid: 3,
                cid: 1,
                func: FunctionId(0),
                class: ObsClass::Warm,
                wait: TimeDelta::ZERO,
            },
            ObsEvent::Start {
                at: t(50),
                rid: 3,
                cid: 2,
                func: FunctionId(0),
                class: ObsClass::DelayedWarm,
                wait: d(40),
            },
            ObsEvent::Finish {
                at: t(60),
                rid: 3,
                cid: 2,
            },
        ];
        let wfs = waterfalls(&events);
        assert_eq!(wfs.len(), 1);
        assert_eq!(wfs[0].class, ObsClass::DelayedWarm);
        assert_eq!(wfs[0].queue, d(40));
        assert_eq!(wfs[0].exec, d(10));
    }

    #[test]
    fn overlapping_retry_windows_merge() {
        // Two overlapping backoff windows [0,30] and [20,60] must
        // count 60ms once, not 90ms.
        let events = vec![
            ObsEvent::RetryScheduled {
                at: t(0),
                func: FunctionId(0),
                attempt: 1,
                backoff: d(30),
                speculative: false,
            },
            ObsEvent::RetryScheduled {
                at: t(20),
                func: FunctionId(0),
                attempt: 2,
                backoff: d(40),
                speculative: false,
            },
            ObsEvent::Start {
                at: t(100),
                rid: 0,
                cid: 1,
                func: FunctionId(0),
                class: ObsClass::DelayedWarm,
                wait: d(100),
            },
            ObsEvent::Finish {
                at: t(110),
                rid: 0,
                cid: 1,
            },
        ];
        let wfs = waterfalls(&events);
        assert_eq!(wfs[0].retry, d(60));
        assert_eq!(wfs[0].queue, d(40));
    }

    #[test]
    fn summary_has_fixed_shape() {
        let sums = summarize_by_class(&[]);
        assert_eq!(sums.len(), 3);
        assert_eq!(sums[0].class, ObsClass::Warm);
        assert_eq!(sums[2].class, ObsClass::Cold);
        assert_eq!(sums[1].count, 0);
        assert_eq!(sums[1].mean_ms(), [0.0; 4]);
    }
}
