//! Indexed pools for the scheduling/eviction hot paths.
//!
//! Every structure here replaces a linear scan in `faas-sim` /
//! `faas-live` and is written so the optimized pick is *provably*
//! identical to the reference scan it replaces:
//!
//! | structure          | replaces                                    | old | new |
//! |--------------------|---------------------------------------------|-----|-----|
//! | [`PendingQueue`]   | `iter().position(\|p\| !p.cold_only)`       | O(n) | O(1) |
//! | [`FreeThreadPool`] | `max_by_key` over `free_threads`            | O(n) | O(log n) |
//! | [`WorkerFreeList`] | `max_by_key` over all workers (`MaxFree`)   | O(n) | O(log n) |
//! | [`EvictionIndex`]  | recompute + full sort per pressure round    | O(n log n) | O(victims · log n) |
//! | [`RoundHeap`]      | full sort when priorities are not cacheable | O(n log n) | O(n + victims · log n) |

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap, VecDeque};
use std::hash::Hash;

/// A totally ordered `f64` for use as a heap/set key.
///
/// Construction panics on NaN with the same message the reference
/// sort used (`"priorities must not be NaN"`), so swapping a sort for
/// an indexed structure cannot silently change NaN handling.
///
/// Ordering and equality both go through [`f64::total_cmp`]
/// (cidre-lint rule F1): a total order with no unwrap, and — unlike a
/// derived `PartialEq` — consistent with itself on `-0.0` vs `0.0`.
#[derive(Debug, Clone, Copy)]
pub struct OrdF64(f64);

impl OrdF64 {
    /// Wrap a priority. Panics if `v` is NaN.
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "priorities must not be NaN");
        OrdF64(v)
    }

    /// The wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for OrdF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0).is_eq()
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// FIFO queue of pending requests where each entry is either
/// *cold-only* (must cold-start, cannot reuse a warm container) or
/// *flexible*.
///
/// Two operations, both O(1):
/// * [`PendingQueue::pop_any`] — the overall FIFO front;
/// * [`PendingQueue::pop_flexible`] — the earliest entry that is
///   **not** cold-only (the reference did
///   `iter().position(|p| !p.cold_only)` + `remove(idx)`).
///
/// Internally this is two deques (cold-only / flexible), each entry
/// stamped with a global arrival sequence number so the interleaved
/// FIFO order is recoverable exactly.
#[derive(Debug, Clone)]
pub struct PendingQueue<T> {
    cold_only: VecDeque<(u64, T)>,
    flexible: VecDeque<(u64, T)>,
    next_seq: u64,
}

impl<T> Default for PendingQueue<T> {
    fn default() -> Self {
        PendingQueue {
            cold_only: VecDeque::new(),
            flexible: VecDeque::new(),
            next_seq: 0,
        }
    }
}

impl<T> PendingQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an entry at the back of the FIFO.
    pub fn push(&mut self, item: T, cold_only: bool) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if cold_only {
            self.cold_only.push_back((seq, item));
        } else {
            self.flexible.push_back((seq, item));
        }
    }

    /// Pop the overall FIFO front; the flag says whether it was
    /// cold-only.
    pub fn pop_any(&mut self) -> Option<(T, bool)> {
        if self.front_is_cold_only()? {
            self.cold_only.pop_front().map(|(_, t)| (t, true))
        } else {
            self.flexible.pop_front().map(|(_, t)| (t, false))
        }
    }

    /// Pop the earliest entry that is not cold-only.
    pub fn pop_flexible(&mut self) -> Option<T> {
        self.flexible.pop_front().map(|(_, t)| t)
    }

    /// Peek the overall FIFO front.
    pub fn front_any(&self) -> Option<(&T, bool)> {
        if self.front_is_cold_only()? {
            self.cold_only.front().map(|(_, t)| (t, true))
        } else {
            self.flexible.front().map(|(_, t)| (t, false))
        }
    }

    fn front_is_cold_only(&self) -> Option<bool> {
        match (self.cold_only.front(), self.flexible.front()) {
            (None, None) => None,
            (Some(_), None) => Some(true),
            (None, Some(_)) => Some(false),
            (Some((cs, _)), Some((fs, _))) => Some(cs < fs),
        }
    }

    /// Total queued entries.
    pub fn len(&self) -> usize {
        self.cold_only.len() + self.flexible.len()
    }

    /// True when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.cold_only.is_empty() && self.flexible.is_empty()
    }

    /// Number of queued cold-only entries (the reference counted these
    /// with a filter scan during worker-failure repair).
    pub fn cold_only_len(&self) -> usize {
        self.cold_only.len()
    }

    /// Number of queued flexible entries.
    pub fn flexible_len(&self) -> usize {
        self.flexible.len()
    }

    /// Iterate all entries in FIFO order as `(entry, cold_only)`.
    pub fn iter(&self) -> impl Iterator<Item = (&T, bool)> {
        // Merge the two seq-sorted runs.
        let mut merged: Vec<(u64, &T, bool)> = Vec::with_capacity(self.len());
        merged.extend(self.cold_only.iter().map(|(s, t)| (*s, t, true)));
        merged.extend(self.flexible.iter().map(|(s, t)| (*s, t, false)));
        merged.sort_by_key(|(s, _, _)| *s);
        merged.into_iter().map(|(_, t, c)| (t, c))
    }

    /// Drain all entries in FIFO order as `(entry, cold_only)`.
    pub fn drain_fifo(&mut self) -> Vec<(T, bool)> {
        let mut merged: Vec<(u64, T, bool)> = Vec::with_capacity(self.len());
        merged.extend(self.cold_only.drain(..).map(|(s, t)| (s, t, true)));
        merged.extend(self.flexible.drain(..).map(|(s, t)| (s, t, false)));
        merged.sort_by_key(|(s, _, _)| *s);
        merged.into_iter().map(|(_, t, c)| (t, c)).collect()
    }
}

/// Per-function pool of containers that still have a free thread,
/// keyed so the scheduler's pick — "most-loaded non-saturated
/// container, oldest id on ties" — is the last element of a
/// `BTreeSet<(threads_in_use, Reverse<id>)>`.
///
/// The reference scan was
/// `free_threads.iter().max_by_key(|c| (threads_in_use(c), Reverse(c)))`.
#[derive(Debug, Clone)]
pub struct FreeThreadPool<C: Ord + Copy + Hash> {
    keys: HashMap<C, u32>,
    set: BTreeSet<(u32, Reverse<C>)>,
}

impl<C: Ord + Copy + Hash> Default for FreeThreadPool<C> {
    fn default() -> Self {
        FreeThreadPool {
            keys: HashMap::new(),
            set: BTreeSet::new(),
        }
    }
}

impl<C: Ord + Copy + Hash> FreeThreadPool<C> {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `c` or update its load key to `threads_in_use`.
    pub fn set(&mut self, c: C, threads_in_use: u32) {
        if let Some(old) = self.keys.insert(c, threads_in_use) {
            self.set.remove(&(old, Reverse(c)));
        }
        self.set.insert((threads_in_use, Reverse(c)));
    }

    /// Remove `c` from the pool (it saturated or was evicted).
    /// Returns true if it was present.
    pub fn remove(&mut self, c: C) -> bool {
        match self.keys.remove(&c) {
            Some(old) => self.set.remove(&(old, Reverse(c))),
            None => false,
        }
    }

    /// The most-loaded container, oldest id on ties. O(log n).
    pub fn pick(&self) -> Option<C> {
        self.set.last().map(|&(_, Reverse(c))| c)
    }

    /// Whether `c` is in the pool.
    pub fn contains(&self, c: C) -> bool {
        self.keys.contains_key(&c)
    }

    /// The stored load key for `c`, if pooled (for invariant checks).
    pub fn key_of(&self, c: C) -> Option<u32> {
        self.keys.get(&c).copied()
    }

    /// Number of pooled containers.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Workers ordered by free memory (and by reclaimable-if-evicting
/// memory), so the `MaxFree` placement pick — "most free memory,
/// lowest worker id on ties" — is the last element of an ordered set.
///
/// Only alive workers should be members; callers remove a worker on
/// failure. The reference did two linear `max_by_key` passes.
#[derive(Debug, Clone)]
pub struct WorkerFreeList<W: Ord + Copy + Hash> {
    keys: HashMap<W, (u64, u64)>,
    by_free: BTreeSet<(u64, Reverse<W>)>,
    by_reclaimable: BTreeSet<(u64, Reverse<W>)>,
}

impl<W: Ord + Copy + Hash> Default for WorkerFreeList<W> {
    fn default() -> Self {
        WorkerFreeList {
            keys: HashMap::new(),
            by_free: BTreeSet::new(),
            by_reclaimable: BTreeSet::new(),
        }
    }
}

impl<W: Ord + Copy + Hash> WorkerFreeList<W> {
    /// An empty free-list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `w` or update its keys. `reclaimable_mb` is free memory
    /// plus memory held by idle (evictable) containers.
    pub fn set(&mut self, w: W, free_mb: u64, reclaimable_mb: u64) {
        if let Some((of, or)) = self.keys.insert(w, (free_mb, reclaimable_mb)) {
            self.by_free.remove(&(of, Reverse(w)));
            self.by_reclaimable.remove(&(or, Reverse(w)));
        }
        self.by_free.insert((free_mb, Reverse(w)));
        self.by_reclaimable.insert((reclaimable_mb, Reverse(w)));
    }

    /// Remove `w` (worker died). Returns true if it was present.
    pub fn remove(&mut self, w: W) -> bool {
        match self.keys.remove(&w) {
            Some((of, or)) => {
                self.by_free.remove(&(of, Reverse(w)));
                self.by_reclaimable.remove(&(or, Reverse(w)));
                true
            }
            None => false,
        }
    }

    /// The worker with the most free memory (lowest id on ties) and
    /// that amount. O(log n).
    pub fn best_by_free(&self) -> Option<(u64, W)> {
        self.by_free.last().map(|&(f, Reverse(w))| (f, w))
    }

    /// The worker with the most reclaimable memory (lowest id on
    /// ties) and that amount. O(log n).
    pub fn best_by_reclaimable(&self) -> Option<(u64, W)> {
        self.by_reclaimable.last().map(|&(r, Reverse(w))| (r, w))
    }

    /// The stored `(free_mb, reclaimable_mb)` keys for `w`, if tracked
    /// (for invariant checks).
    pub fn key_of(&self, w: W) -> Option<(u64, u64)> {
        self.keys.get(&w).copied()
    }

    /// Number of tracked workers.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no workers are tracked.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Lazy-deletion min-heap of eviction candidates, grouped per worker.
///
/// Each idle container *enters* the index with a cached priority and a
/// fresh version number; leaving (reuse, eviction, crash) just bumps
/// the container out of the `live` map — stale heap entries are
/// discarded when popped. A memory-pressure round pops victims in
/// ascending `(priority, container-id)` order in
/// O(victims · log n) instead of recomputing and sorting every
/// candidate.
///
/// **Exactness contract:** the `fresh` closure passed to
/// [`EvictionIndex::pop_min`] must return priorities that never
/// *decrease* while a container stays in the index (cached ≤ fresh —
/// "monotone staleness"). Under that contract the pop order is
/// byte-identical to a full recompute-and-sort: a popped cached key is
/// a lower bound, so an entry is only returned once its fresh value is
/// itself the minimum. Policies whose priorities can drift downward
/// while idle must use a per-round [`RoundHeap`] instead.
#[derive(Debug, Clone)]
pub struct EvictionIndex<W, C>
where
    W: Copy + Eq + Hash,
    C: Ord + Copy + Eq + Hash,
{
    heaps: HashMap<W, MinHeap<C>>,
    live: HashMap<C, (W, u64)>,
    next_version: u64,
}

/// Min-heap of `(cached priority, container, version)` entries.
type MinHeap<C> = BinaryHeap<Reverse<(OrdF64, C, u64)>>;

impl<W, C> Default for EvictionIndex<W, C>
where
    W: Copy + Eq + Hash,
    C: Ord + Copy + Eq + Hash,
{
    fn default() -> Self {
        EvictionIndex {
            heaps: HashMap::new(),
            live: HashMap::new(),
            next_version: 0,
        }
    }
}

impl<W, C> EvictionIndex<W, C>
where
    W: Copy + Eq + Hash,
    C: Ord + Copy + Eq + Hash,
{
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Container `c` became an eviction candidate on worker `w` with
    /// the given cached priority. Re-entering supersedes any previous
    /// entry (its version goes stale).
    pub fn enter(&mut self, w: W, c: C, priority: f64) {
        let ver = self.next_version;
        self.next_version += 1;
        self.live.insert(c, (w, ver));
        self.heaps
            .entry(w)
            .or_default()
            .push(Reverse((OrdF64::new(priority), c, ver)));
    }

    /// Container `c` stopped being a candidate (reused, evicted,
    /// crashed). Its heap entry dies lazily. Returns true if it was
    /// tracked.
    pub fn leave(&mut self, c: C) -> bool {
        self.live.remove(&c).is_some()
    }

    /// Re-key a still-live candidate after a policy hook dirtied its
    /// priority. The old entry goes stale; a new one is pushed.
    pub fn refresh(&mut self, c: C, priority: f64) {
        if let Some(&(w, _)) = self.live.get(&c) {
            self.enter(w, c, priority);
        }
    }

    /// Whether `c` is currently tracked as a candidate.
    pub fn is_tracked(&self, c: C) -> bool {
        self.live.contains_key(&c)
    }

    /// Number of live candidates across all workers.
    pub fn len_live(&self) -> usize {
        self.live.len()
    }

    /// Drop all state for a failed worker.
    pub fn drop_worker(&mut self, w: W) {
        self.heaps.remove(&w);
        self.live.retain(|_, &mut (lw, _)| lw != w);
    }

    /// Pop the minimum-(priority, id) candidate on `w`, removing it
    /// from the index (callers evict every popped victim).
    ///
    /// `fresh` re-evaluates a candidate at pop time: `Some(p)` is the
    /// current priority (≥ the cached one, see the struct-level
    /// contract); `None` permanently drops the candidate (defensive —
    /// callers that keep `enter`/`leave` in sync never hit it).
    pub fn pop_min<F>(&mut self, w: W, mut fresh: F) -> Option<(f64, C)>
    where
        F: FnMut(C) -> Option<f64>,
    {
        let heap = self.heaps.get_mut(&w)?;
        loop {
            let Reverse((cached, c, ver)) = heap.pop()?;
            let valid = matches!(self.live.get(&c), Some(&(lw, lver)) if lw == w && lver == ver);
            if !valid {
                continue;
            }
            match fresh(c) {
                None => {
                    self.live.remove(&c);
                }
                Some(p) => {
                    let p = OrdF64::new(p);
                    if p == cached {
                        self.live.remove(&c);
                        return Some((p.get(), c));
                    }
                    // Stale-low entry: re-key at the fresh priority
                    // (same version stays valid) and keep popping.
                    heap.push(Reverse((p, c, ver)));
                }
            }
        }
    }
}

/// One-shot min-heap for policies whose priorities are not cacheable
/// (they depend on clock state or other containers and can move in
/// either direction mid-idle).
///
/// Built by O(n) heapify from the frozen per-round `(priority, id)`
/// snapshot; popping victims costs O(victims · log n), versus the
/// reference's unconditional O(n log n) full sort. Pop order —
/// ascending `(priority, id)` — is identical to the reference sort
/// because ids are unique (no stability concerns).
#[derive(Debug, Clone)]
pub struct RoundHeap<C: Ord + Copy> {
    heap: BinaryHeap<Reverse<(OrdF64, C)>>,
}

impl<C: Ord + Copy> RoundHeap<C> {
    /// Heapify a frozen snapshot of `(priority, id)` candidates.
    pub fn from_entries(entries: Vec<(f64, C)>) -> Self {
        let heap: BinaryHeap<_> = entries
            .into_iter()
            .map(|(p, c)| Reverse((OrdF64::new(p), c)))
            .collect();
        RoundHeap { heap }
    }

    /// Pop the minimum-(priority, id) candidate.
    pub fn pop(&mut self) -> Option<(f64, C)> {
        self.heap.pop().map(|Reverse((p, c))| (p.get(), c))
    }

    /// Remaining candidates.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no candidates remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// K-way merge of already-sorted streams into one globally sorted
/// stream — the primitive that lets a shard-partitioned index present
/// itself as the single sequential index it replaced (each shard
/// iterates its own key-ordered slice; the merge restores global key
/// order exactly).
///
/// `key` extracts the sort key; every input stream must already be
/// ascending by it. Ties break toward the lowest stream index, making
/// the output order fully deterministic even with duplicate keys.
/// Cost is O(k) per yielded item — for shard counts (single digits)
/// this beats a binary heap and keeps the pick branch-predictable.
pub fn kmerge_by_key<T, K, I, F>(streams: Vec<I>, key: F) -> impl Iterator<Item = T>
where
    I: Iterator<Item = T>,
    K: Ord,
    F: Fn(&T) -> K,
{
    let mut peeked: Vec<std::iter::Peekable<I>> =
        streams.into_iter().map(Iterator::peekable).collect();
    std::iter::from_fn(move || {
        let mut best: Option<(K, usize)> = None;
        for (i, it) in peeked.iter_mut().enumerate() {
            if let Some(item) = it.peek() {
                let k = key(item);
                if best.as_ref().is_none_or(|(bk, _)| k < *bk) {
                    best = Some((k, i));
                }
            }
        }
        let (_, i) = best?;
        peeked[i].next()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordf64_orders_like_total_cmp() {
        let mut v = vec![3.0, -1.0, 0.0, 2.5, -0.0];
        v.sort_by(f64::total_cmp);
        let mut w: Vec<OrdF64> = vec![3.0, -1.0, 0.0, 2.5, -0.0]
            .into_iter()
            .map(OrdF64::new)
            .collect();
        w.sort();
        assert_eq!(v, w.into_iter().map(OrdF64::get).collect::<Vec<_>>());
        // total_cmp distinguishes the zeros (-0.0 < 0.0) and Eq agrees
        // with Ord, unlike f64's PartialEq where -0.0 == 0.0.
        assert!(v[1].is_sign_negative() && v[2].is_sign_positive());
        assert_ne!(OrdF64::new(-0.0), OrdF64::new(0.0));
    }

    #[test]
    #[should_panic(expected = "priorities must not be NaN")]
    fn ordf64_rejects_nan() {
        let _ = OrdF64::new(f64::NAN);
    }

    /// Model: the reference representation is a single VecDeque of
    /// (item, cold_only); pop_any = pop_front, pop_flexible =
    /// position(|p| !cold_only) + remove.
    #[derive(Default)]
    struct ModelQueue(VecDeque<(u32, bool)>);

    impl ModelQueue {
        fn push(&mut self, item: u32, cold_only: bool) {
            self.0.push_back((item, cold_only));
        }
        fn pop_any(&mut self) -> Option<(u32, bool)> {
            self.0.pop_front()
        }
        fn pop_flexible(&mut self) -> Option<u32> {
            let idx = self.0.iter().position(|&(_, c)| !c)?;
            self.0.remove(idx).map(|(i, _)| i)
        }
    }

    #[test]
    fn pending_queue_interleaved_matches_reference_scan() {
        let mut q = PendingQueue::new();
        let mut m = ModelQueue::default();
        // Deterministic but adversarial op mix: pushes with varying
        // cold-only flags interleaved with both pop flavors.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for step in 0..2000 {
            match next() % 4 {
                0 | 1 => {
                    let cold = next() % 3 == 0;
                    q.push(step, cold);
                    m.push(step, cold);
                }
                2 => assert_eq!(q.pop_any(), m.pop_any()),
                _ => assert_eq!(q.pop_flexible(), m.pop_flexible()),
            }
            assert_eq!(q.len(), m.0.len());
            assert_eq!(q.cold_only_len(), m.0.iter().filter(|&&(_, c)| c).count());
            let got: Vec<(u32, bool)> = q.iter().map(|(&i, c)| (i, c)).collect();
            let want: Vec<(u32, bool)> = m.0.iter().copied().collect();
            assert_eq!(got, want, "FIFO iteration diverged at step {step}");
        }
    }

    #[test]
    fn pending_queue_drain_preserves_fifo() {
        let mut q = PendingQueue::new();
        q.push('a', false);
        q.push('b', true);
        q.push('c', false);
        q.push('d', true);
        assert_eq!(q.pop_flexible(), Some('a'));
        assert_eq!(q.drain_fifo(), vec![('b', true), ('c', false), ('d', true)]);
        assert!(q.is_empty());
    }

    #[test]
    fn free_thread_pool_picks_most_loaded_oldest_id() {
        let mut p: FreeThreadPool<u64> = FreeThreadPool::new();
        let mut model: HashMap<u64, u32> = HashMap::new();
        let mut seed = 42u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as u32
        };
        for _ in 0..2000 {
            let c = (next() % 20) as u64;
            match next() % 3 {
                0 => {
                    let t = next() % 4;
                    p.set(c, t);
                    model.insert(c, t);
                }
                1 => {
                    assert_eq!(p.remove(c), model.remove(&c).is_some());
                }
                _ => {}
            }
            let want = model
                .iter()
                .max_by_key(|(&cid, &t)| (t, Reverse(cid)))
                .map(|(&cid, _)| cid);
            assert_eq!(p.pick(), want);
            assert_eq!(p.len(), model.len());
        }
    }

    #[test]
    fn worker_free_list_matches_two_pass_scan() {
        let mut l: WorkerFreeList<usize> = WorkerFreeList::new();
        let mut model: HashMap<usize, (u64, u64)> = HashMap::new();
        let mut seed = 7u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as u64
        };
        for _ in 0..2000 {
            let w = (next() % 8) as usize;
            match next() % 4 {
                0 | 1 => {
                    let free = next() % 1000;
                    let rec = free + next() % 1000;
                    l.set(w, free, rec);
                    model.insert(w, (free, rec));
                }
                2 => {
                    assert_eq!(l.remove(w), model.remove(&w).is_some());
                }
                _ => {}
            }
            let want_free = model
                .iter()
                .max_by_key(|(&wid, &(f, _))| (f, Reverse(wid)))
                .map(|(&wid, &(f, _))| (f, wid));
            let want_rec = model
                .iter()
                .max_by_key(|(&wid, &(_, r))| (r, Reverse(wid)))
                .map(|(&wid, &(_, r))| (r, wid));
            assert_eq!(l.best_by_free(), want_free);
            assert_eq!(l.best_by_reclaimable(), want_rec);
        }
    }

    #[test]
    fn eviction_index_pops_in_reference_sort_order() {
        let mut idx: EvictionIndex<u8, u64> = EvictionIndex::new();
        let entries: Vec<(f64, u64)> = vec![(5.0, 3), (1.0, 9), (5.0, 1), (2.5, 4), (0.5, 7)];
        for &(p, c) in &entries {
            idx.enter(0, c, p);
        }
        let mut want = entries.clone();
        want.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut got = Vec::new();
        while let Some(v) = idx.pop_min(0, |_| None) {
            got.push(v);
        }
        // fresh == None drops entries, so replay with identity fresh.
        assert!(got.is_empty());
        for &(p, c) in &entries {
            idx.enter(0, c, p);
        }
        let fresh: HashMap<u64, f64> = entries.iter().map(|&(p, c)| (c, p)).collect();
        let mut got = Vec::new();
        while let Some(v) = idx.pop_min(0, |c| fresh.get(&c).copied()) {
            got.push(v);
        }
        assert_eq!(got, want);
    }

    #[test]
    fn eviction_index_lazy_deletion_and_versions() {
        let mut idx: EvictionIndex<u8, u64> = EvictionIndex::new();
        idx.enter(0, 1, 10.0);
        idx.enter(0, 2, 20.0);
        assert!(idx.leave(1));
        assert!(!idx.leave(1));
        // Re-enter 1 with a different priority: old heap entry stale.
        idx.enter(0, 1, 30.0);
        assert_eq!(idx.len_live(), 2);
        let fresh = |c: u64| Some(if c == 1 { 30.0 } else { 20.0 });
        assert_eq!(idx.pop_min(0, fresh), Some((20.0, 2)));
        assert_eq!(idx.pop_min(0, fresh), Some((30.0, 1)));
        assert_eq!(idx.pop_min(0, fresh), None);
        assert_eq!(idx.len_live(), 0);
    }

    #[test]
    fn eviction_index_monotone_refresh_matches_fresh_sort() {
        // Cached priorities are stale-low (e.g. LFU invocation counts
        // grew since idle-entry); pop order must follow the FRESH
        // values, exactly as the reference recompute-and-sort would.
        let mut idx: EvictionIndex<u8, u64> = EvictionIndex::new();
        let cached: Vec<(f64, u64)> = vec![(1.0, 1), (2.0, 2), (3.0, 3), (4.0, 4)];
        for &(p, c) in &cached {
            idx.enter(0, c, p);
        }
        // Fresh values invert the cached order while respecting
        // cached <= fresh.
        let fresh: HashMap<u64, f64> = [(1u64, 9.0), (2, 7.0), (3, 5.0), (4, 4.0)]
            .into_iter()
            .collect();
        let mut want: Vec<(f64, u64)> = fresh.iter().map(|(&c, &p)| (p, c)).collect();
        want.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut got = Vec::new();
        while let Some(v) = idx.pop_min(0, |c| fresh.get(&c).copied()) {
            got.push(v);
        }
        assert_eq!(got, want);
    }

    #[test]
    fn eviction_index_is_per_worker() {
        let mut idx: EvictionIndex<u8, u64> = EvictionIndex::new();
        idx.enter(0, 1, 1.0);
        idx.enter(1, 2, 2.0);
        assert_eq!(idx.pop_min(0, |_| Some(1.0)), Some((1.0, 1)));
        assert_eq!(idx.pop_min(0, |_| Some(0.0)), None);
        idx.drop_worker(1);
        assert_eq!(idx.pop_min(1, |_| Some(2.0)), None);
        assert_eq!(idx.len_live(), 0);
    }

    #[test]
    fn kmerge_restores_global_order_from_sorted_shards() {
        // Partition 0..100 round-robin into 3 "shards" (each ascending),
        // as the sharded cluster partitions function ids.
        let shards: Vec<Vec<u32>> = (0..3)
            .map(|s| (0..100u32).filter(|v| v % 3 == s).collect())
            .collect();
        let merged: Vec<u32> =
            kmerge_by_key(shards.into_iter().map(Vec::into_iter).collect(), |&v| v).collect();
        assert_eq!(merged, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn kmerge_breaks_ties_toward_lowest_stream() {
        let a = vec![(1u32, 'a'), (3, 'a')];
        let b = vec![(1u32, 'b'), (2, 'b'), (3, 'b')];
        let merged: Vec<(u32, char)> =
            kmerge_by_key(vec![a.into_iter(), b.into_iter()], |&(k, _)| k).collect();
        assert_eq!(
            merged,
            vec![(1, 'a'), (1, 'b'), (2, 'b'), (3, 'a'), (3, 'b')]
        );
    }

    #[test]
    fn kmerge_handles_empty_and_singleton_streams() {
        let streams: Vec<std::vec::IntoIter<u8>> = vec![
            vec![].into_iter(),
            vec![5].into_iter(),
            vec![].into_iter(),
            vec![1, 9].into_iter(),
        ];
        let merged: Vec<u8> = kmerge_by_key(streams, |&v| v).collect();
        assert_eq!(merged, vec![1, 5, 9]);
        let none: Vec<std::vec::IntoIter<u8>> = Vec::new();
        assert_eq!(kmerge_by_key(none, |&v| v).count(), 0);
    }

    #[test]
    fn round_heap_matches_reference_sort() {
        let entries: Vec<(f64, u64)> = vec![(3.0, 2), (3.0, 1), (-1.0, 5), (0.0, 0), (2.0, 4)];
        let mut want = entries.clone();
        want.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut heap = RoundHeap::from_entries(entries);
        let mut got = Vec::new();
        while let Some(v) = heap.pop() {
            got.push(v);
        }
        assert_eq!(got, want);
    }
}
