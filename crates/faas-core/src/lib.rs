//! Indexed pool data structures shared by the FaaS simulator and the live
//! orchestrator.
//!
//! This crate holds the hot-path structures that replace the naive linear
//! scans in `faas-sim` and `faas-live`:
//!
//! * [`pool::PendingQueue`] — a FIFO of pending requests that supports an
//!   O(1) "pop the first request that is not cold-only" alongside plain
//!   FIFO pops.
//! * [`pool::FreeThreadPool`] — per-function set of containers with free
//!   threads, ordered so the "most-loaded non-saturated container, oldest
//!   id wins ties" pick is O(log n).
//! * [`pool::WorkerFreeList`] — workers ordered by free (and reclaimable)
//!   memory for O(log n) `MaxFree` placement.
//! * [`pool::EvictionIndex`] — a lazy-deletion binary min-heap of eviction
//!   candidates with per-entry versions, so a memory-pressure round is
//!   O(victims · log n) instead of a full recompute-and-sort.
//! * [`pool::OrdF64`] — a total order over non-NaN `f64` priorities.
//!
//! The structures are generic over the id types so both substrates (the
//! discrete-event simulator and the wall-clock live runtime) share one
//! implementation and can be differentially tested against the retained
//! reference scans.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;

pub use pool::{
    kmerge_by_key, EvictionIndex, FreeThreadPool, OrdF64, PendingQueue, RoundHeap, WorkerFreeList,
};
