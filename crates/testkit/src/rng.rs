//! Deterministic, seedable PRNG: xoshiro256++ state, SplitMix64 seeding.
//!
//! Not cryptographic — a fast, well-distributed generator whose entire
//! behaviour is a pure function of the seed, which is exactly what
//! reproducible workload generation and property testing need. The
//! distribution helpers (normal, exponential, lognormal, log-uniform,
//! Pareto, Zipf, weighted choice) cover everything the synthetic
//! Azure/FC trace generators draw.

/// One SplitMix64 step: advances `state` and returns the next output.
/// Public so seeding schemes (per-case, per-scenario) can derive
/// independent sub-seeds without constructing a full generator.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ PRNG, deterministically seeded from a `u64`.
///
/// # Examples
///
/// ```
/// use faas_testkit::Rng;
/// let mut a = Rng::seed_from_u64(7);
/// let mut b = Rng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!((0.0..1.0).contains(&a.f64()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derives an independent generator (for per-worker / per-scenario
    /// streams) without correlating with this generator's future output.
    pub fn split(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64() ^ 0x1234_5678_9ABC_DEF0)
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `(0, 1)` — safe to feed into `ln`.
    pub fn open01(&mut self) -> f64 {
        self.f64().max(f64::EPSILON)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "u64_below(0)");
        // Lemire's multiply-shift; the slight modulo bias of the plain
        // fallback would be fine for tests, but this is just as cheap.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the half-open range `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.u64_below(hi - lo)
    }

    /// Uniform integer in the closed range `[lo, hi]`.
    pub fn range_u64_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.u64_below(hi - lo + 1)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + self.f64() * (hi - lo)
    }

    /// Bernoulli draw with success probability `p` (clamped to [0, 1]).
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal variate via Box–Muller (no caching, so draws per
    /// call are constant and streams stay reproducible).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.open01();
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Exponential variate with the given rate (events per time unit).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        -self.open01().ln() / rate
    }

    /// Lognormal variate whose median is `median` and whose log-space
    /// standard deviation is `sigma`.
    pub fn lognormal_median(&mut self, median: f64, sigma: f64) -> f64 {
        median * (sigma * self.normal()).exp()
    }

    /// Log-uniform variate on `[lo, hi]`.
    pub fn log_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo > 0.0 && hi >= lo);
        (lo.ln() + self.f64() * (hi.ln() - lo.ln())).exp()
    }

    /// Integer Pareto variate clipped to `[min, max]` via inverse CDF.
    pub fn pareto_int(&mut self, alpha: f64, min: usize, max: usize) -> usize {
        let u = self.open01();
        let x = min as f64 / u.powf(1.0 / alpha);
        if !x.is_finite() {
            return max;
        }
        (x as usize).clamp(min, max)
    }

    /// Zipf-distributed rank in `[0, n)` with exponent `s`: rank `r` is
    /// drawn with probability proportional to `1 / (r+1)^s`. Linear-time
    /// inverse-CDF walk — fine for the modest `n` tests use.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf over empty support");
        let total: f64 = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).sum();
        let mut x = self.f64() * total;
        for r in 1..=n {
            let w = 1.0 / (r as f64).powf(s);
            if x < w {
                return r - 1;
            }
            x -= w;
        }
        n - 1
    }

    /// Weighted categorical choice over `(value, weight)` pairs.
    /// Panics on an empty slice.
    pub fn weighted<T: Copy>(&mut self, choices: &[(T, f64)]) -> T {
        let total: f64 = choices.iter().map(|&(_, w)| w).sum();
        let mut x = self.f64() * total;
        for &(v, w) in choices {
            if x < w {
                return v;
            }
            x -= w;
        }
        choices.last().expect("non-empty choices").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_xoshiro_vector() {
        // Reference: xoshiro256++ from the canonical seed [1, 2, 3, 4].
        let mut rng = Rng { s: [1, 2, 3, 4] };
        assert_eq!(rng.next_u64(), 41943041);
        assert_eq!(rng.next_u64(), 58720359);
        assert_eq!(rng.next_u64(), 3588806011781223);
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = Rng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let w = rng.range_u64_inclusive(0, 3);
            assert!(w <= 3);
            let f = rng.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.open01();
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn u64_below_covers_support() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.u64_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(4);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = Rng::seed_from_u64(5);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn lognormal_median_is_the_median() {
        let mut rng = Rng::seed_from_u64(6);
        let n = 20_001;
        let mut samples: Vec<f64> = (0..n).map(|_| rng.lognormal_median(100.0, 0.25)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[n / 2];
        assert!((median - 100.0).abs() / 100.0 < 0.05, "median {median}");
    }

    #[test]
    fn log_uniform_and_pareto_stay_in_range() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..5_000 {
            let lu = rng.log_uniform(1.0, 10.0);
            assert!((1.0..=10.0).contains(&lu));
            let p = rng.pareto_int(1.5, 2, 100);
            assert!((2..=100).contains(&p));
        }
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let mut rng = Rng::seed_from_u64(8);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.zipf(10, 1.2)] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "{counts:?}");
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn weighted_respects_support_and_skew() {
        let mut rng = Rng::seed_from_u64(9);
        let choices = [(1u32, 0.9), (2, 0.1)];
        let mut ones = 0;
        for _ in 0..1_000 {
            match rng.weighted(&choices) {
                1 => ones += 1,
                2 => {}
                other => panic!("impossible value {other}"),
            }
        }
        assert!(ones > 800, "ones {ones}");
    }

    #[test]
    fn split_streams_are_independent() {
        let mut a = Rng::seed_from_u64(10);
        let mut b = a.split();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }
}
