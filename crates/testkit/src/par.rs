//! Ordered fork-join parallelism over `std::thread::scope`.
//!
//! [`par_map`] runs a function over a slice on a bounded worker pool and
//! returns the results **in input order**, so a parallel sweep
//! aggregates byte-identically to its sequential counterpart — workers
//! race for *work*, never for *output slots*. With `jobs <= 1` the map
//! degenerates to a plain sequential loop, which is the reference
//! behaviour determinism tests compare against.
//!
//! [`par_map_mut`] is the exclusive-access flavor: each element is
//! visited by exactly one worker through `&mut`, which is what the
//! simulator's shard pool needs (every shard owns mutable state for one
//! phase and the caller rejoins with all results in input order).
//!
//! Both propagate a worker panic to the caller with the **original**
//! payload: remaining workers stop picking up new work, the scope joins,
//! and the first captured payload is re-raised via `resume_unwind`, so
//! `#[should_panic(expected = ...)]` tests and real assertion messages
//! survive the pool boundary instead of degenerating into "a scoped
//! thread panicked".

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Shared panic state for one worker pool: a stop flag workers poll
/// between items and the first captured payload, re-raised after join.
#[derive(Default)]
struct PanicGate {
    stop: AtomicBool,
    payload: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

impl PanicGate {
    /// Runs `body`, capturing a panic into the gate. Returns `false` if
    /// the caller should stop draining work (this or another worker
    /// panicked).
    fn run(&self, body: impl FnOnce()) -> bool {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
            if let Ok(mut slot) = self.payload.lock() {
                slot.get_or_insert(payload);
            }
            self.stop.store(true, Ordering::Release);
            return false;
        }
        !self.stop.load(Ordering::Acquire)
    }

    /// Re-raises the captured worker panic, if any.
    fn rethrow(self) {
        if let Some(payload) = self.payload.into_inner().ok().flatten() {
            resume_unwind(payload);
        }
    }
}

/// A sensible default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every element of `items` using up to `jobs` worker
/// threads and returns the results in input order. `f` receives the
/// element index, so callers can derive deterministic per-scenario
/// seeds from it. Panics in `f` propagate to the caller.
///
/// # Examples
///
/// ```
/// use faas_testkit::par_map;
/// let squares = par_map(&[1u64, 2, 3, 4], 2, |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, U, F>(items: &[T], jobs: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let gate = PanicGate::default();
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let keep_going = gate.run(|| {
                    let result = f(i, &items[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                });
                if !keep_going {
                    break;
                }
            });
        }
    });
    gate.rethrow();
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// The exclusive-access flavor of [`par_map`]: applies `f` to every
/// element through `&mut` and returns the results in input order. Work
/// is split into at most `jobs` contiguous chunks, one worker per
/// chunk, so each element is visited exactly once with exclusive
/// access — the access pattern a simulation shard pool needs, where
/// every element owns mutable per-shard state for the duration of one
/// phase.
///
/// With `jobs <= 1` (or a single element) this degenerates to a plain
/// sequential loop. A panic in `f` propagates to the caller with its
/// original payload, like [`par_map`].
///
/// # Examples
///
/// ```
/// use faas_testkit::par_map_mut;
/// let mut counters = vec![1u64, 2, 3];
/// let before = par_map_mut(&mut counters, 2, |i, c| {
///     *c += 10;
///     i
/// });
/// assert_eq!(counters, vec![11, 12, 13]);
/// assert_eq!(before, vec![0, 1, 2]);
/// ```
pub fn par_map_mut<T, U, F>(items: &mut [T], jobs: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut T) -> U + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let len = items.len();
    let chunk = len.div_ceil(jobs);
    let gate = PanicGate::default();
    let mut out: Vec<Vec<U>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, part)| {
                let gate = &gate;
                let f = &f;
                scope.spawn(move || {
                    let mut results = Vec::with_capacity(part.len());
                    for (off, t) in part.iter_mut().enumerate() {
                        let i = ci * chunk + off;
                        if !gate.run(|| results.push(f(i, t))) {
                            break;
                        }
                    }
                    results
                })
            })
            .collect();
        out = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect();
    });
    gate.rethrow();
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_regardless_of_jobs() {
        let items: Vec<u64> = (0..257).collect();
        let seq = par_map(&items, 1, |i, &x| (i as u64, x * 3));
        for jobs in [2, 4, 16, 1000] {
            let par = par_map(&items, jobs, |i, &x| (i as u64, x * 3));
            assert_eq!(par, seq, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map(&[] as &[u8], 8, |_, _| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn index_matches_element() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, 7, |i, &x| {
            assert_eq!(i, x);
            i
        });
        assert_eq!(out, items);
    }

    #[test]
    fn uneven_work_still_completes() {
        let items: Vec<u64> = (0..32).collect();
        let out = par_map(&items, 4, |_, &x| {
            // Simulate skew: later items cost more.
            let mut acc = 0u64;
            for i in 0..(x * 1_000) {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    // Regression: a panicking worker used to abandon its result slot and
    // the pool died with the generic "a scoped thread panicked" /
    // "worker filled every slot" messages instead of the original
    // payload. The pool must re-raise the *first* payload verbatim.
    #[test]
    #[should_panic(expected = "item 3 exploded")]
    fn par_map_propagates_original_panic_payload() {
        let items: Vec<u64> = (0..8).collect();
        par_map(&items, 4, |i, &x| {
            if i == 3 {
                panic!("item 3 exploded");
            }
            x
        });
    }

    #[test]
    #[should_panic(expected = "mut item 2 exploded")]
    fn par_map_mut_propagates_original_panic_payload() {
        let mut items: Vec<u64> = (0..8).collect();
        par_map_mut(&mut items, 4, |i, x| {
            if i == 2 {
                panic!("mut item 2 exploded");
            }
            *x += 1;
        });
    }

    #[test]
    fn panic_stops_remaining_work() {
        use std::sync::atomic::AtomicUsize;
        let started = AtomicUsize::new(0);
        let items: Vec<u64> = (0..1024).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_map(&items, 2, |i, &x| {
                started.fetch_add(1, Ordering::Relaxed);
                if i == 0 {
                    panic!("early abort");
                }
                // Give the panic time to land so the stop flag is
                // observable; without it this test would race.
                std::thread::sleep(std::time::Duration::from_millis(1));
                x
            })
        }));
        assert!(result.is_err(), "panic must propagate");
        assert!(
            started.load(Ordering::Relaxed) < items.len(),
            "workers kept draining the queue after a panic"
        );
    }

    #[test]
    fn par_map_mut_mutates_every_element_in_order() {
        let mut items: Vec<u64> = (0..257).collect();
        let idx = par_map_mut(&mut items, 4, |i, x| {
            *x *= 2;
            i
        });
        assert_eq!(idx, (0..257).collect::<Vec<_>>());
        assert_eq!(items, (0..257).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn par_map_mut_sequential_fallback_matches() {
        let mut a: Vec<u64> = (0..37).collect();
        let mut b = a.clone();
        let ra = par_map_mut(&mut a, 1, |i, x| i as u64 + *x);
        let rb = par_map_mut(&mut b, 8, |i, x| i as u64 + *x);
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }
}
