//! Ordered fork-join parallelism over `std::thread::scope`.
//!
//! [`par_map`] runs a function over a slice on a bounded worker pool and
//! returns the results **in input order**, so a parallel sweep
//! aggregates byte-identically to its sequential counterpart — workers
//! race for *work*, never for *output slots*. With `jobs <= 1` the map
//! degenerates to a plain sequential loop, which is the reference
//! behaviour determinism tests compare against.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A sensible default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every element of `items` using up to `jobs` worker
/// threads and returns the results in input order. `f` receives the
/// element index, so callers can derive deterministic per-scenario
/// seeds from it. Panics in `f` propagate to the caller.
///
/// # Examples
///
/// ```
/// use faas_testkit::par_map;
/// let squares = par_map(&[1u64, 2, 3, 4], 2, |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, U, F>(items: &[T], jobs: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_regardless_of_jobs() {
        let items: Vec<u64> = (0..257).collect();
        let seq = par_map(&items, 1, |i, &x| (i as u64, x * 3));
        for jobs in [2, 4, 16, 1000] {
            let par = par_map(&items, jobs, |i, &x| (i as u64, x * 3));
            assert_eq!(par, seq, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map(&[] as &[u8], 8, |_, _| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn index_matches_element() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, 7, |i, &x| {
            assert_eq!(i, x);
            i
        });
        assert_eq!(out, items);
    }

    #[test]
    fn uneven_work_still_completes() {
        let items: Vec<u64> = (0..32).collect();
        let out = par_map(&items, 4, |_, &x| {
            // Simulate skew: later items cost more.
            let mut acc = 0u64;
            for i in 0..(x * 1_000) {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
