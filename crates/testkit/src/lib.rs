//! # faas-testkit — hermetic test and measurement kit
//!
//! Everything the workspace needs to verify and measure itself without
//! reaching crates.io: the whole crate is plain `std`, so
//! `cargo build --offline` / `cargo test --offline` work on a machine
//! that has never seen a registry.
//!
//! Five subsystems:
//!
//! * [`rng`] — a deterministic, seedable PRNG (xoshiro256++ seeded via
//!   SplitMix64) with the uniform / normal / exponential / Pareto /
//!   Zipf helpers the synthetic trace generators need. Replaces `rand`.
//! * [`prop`] — a minimal property-testing runner: composable random
//!   inputs drawn from a recorded choice stream, configurable case
//!   counts, input shrinking by simplifying that stream, and
//!   failing-seed persistence to a `*.testkit-regressions` file.
//!   Replaces `proptest`.
//! * [`bench`] — a wall-clock micro-benchmark harness (warmup, fixed
//!   iteration budget, median/p95/throughput) that appends
//!   machine-readable results to `BENCH_results.json`. Replaces
//!   `criterion`.
//! * [`par`] — an ordered, deterministic fork-join map over
//!   `std::thread::scope`, used to parallelize experiment sweeps while
//!   keeping result aggregation byte-identical to a sequential run.
//! * [`arrivals`] — seeded open-loop arrival schedules (Poisson or
//!   uniform pacing) for load generators; the same seed always yields
//!   the byte-identical schedule.
//!
//! [`json`] is the tiny JSON reader/writer the bench harness uses to
//! merge results across bench binaries; it is public because tests and
//! tooling may want to consume `BENCH_results.json` without serde.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod bench;
pub mod json;
pub mod par;
pub mod prop;
pub mod rng;

pub use arrivals::Arrivals;
pub use bench::{atomic_write, BenchStats, Harness};
pub use par::{default_jobs, par_map, par_map_mut};
pub use prop::{Checker, Gen};
pub use rng::Rng;
