//! Minimal JSON reader/writer — just enough for the bench harness to
//! merge `BENCH_results.json` across bench binaries without serde.
//!
//! Objects preserve insertion order so emitted files are deterministic.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Inserts or replaces a key in an object. Panics on non-objects.
    pub fn set(&mut self, key: &str, value: Value) {
        let Value::Obj(fields) = self else {
            panic!("set on non-object JSON value");
        };
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => fields.push((key.to_string(), value)),
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Pretty-prints with two-space indentation (stable across runs).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => out.push_str(&fmt_num(*n)),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) if items.is_empty() => out.push_str("[]"),
            Value::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str("  ");
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Value::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Value::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str("  ");
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.pretty().trim_end())
    }
}

/// Formats a number the way JSON expects: integers without a fraction,
/// everything else via the shortest round-trippable `f64` formatting.
fn fmt_num(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no Infinity/NaN; null is the least-bad encoding.
        return "null".to_string();
    }
    if n == n.trunc() && n.abs() < 9e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Value::Obj(vec![
            ("schema".into(), Value::Num(1.0)),
            (
                "targets".into(),
                Value::Obj(vec![(
                    "sim".into(),
                    Value::Arr(vec![Value::Obj(vec![
                        ("name".into(), Value::Str("replay \"cidre\"".into())),
                        ("median_ns".into(), Value::Num(1234.5)),
                        ("ok".into(), Value::Bool(true)),
                        ("note".into(), Value::Null),
                    ])]),
                )]),
            ),
        ]);
        let text = doc.pretty();
        let back = Value::parse(&text).expect("parses");
        assert_eq!(doc, back);
    }

    #[test]
    fn parses_hand_written_json() {
        let v = Value::parse(r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": null}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("hello").is_err());
        assert!(Value::parse("{} trailing").is_err());
    }

    #[test]
    fn set_replaces_and_appends() {
        let mut v = Value::Obj(vec![]);
        v.set("k", Value::Num(1.0));
        v.set("k", Value::Num(2.0));
        v.set("j", Value::Bool(false));
        assert_eq!(v.get("k").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("j"), Some(&Value::Bool(false)));
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(fmt_num(5.0), "5");
        assert_eq!(fmt_num(5.25), "5.25");
        assert_eq!(fmt_num(f64::NAN), "null");
    }

    #[test]
    fn unicode_survives() {
        let v = Value::Str("ns/iter — médiane ✓".into());
        assert_eq!(Value::parse(&v.pretty()).unwrap(), v);
    }
}
