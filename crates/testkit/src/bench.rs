//! Wall-clock micro-benchmark harness.
//!
//! A bench target is a plain binary (`harness = false`) that builds a
//! [`Harness`], registers closures with [`Harness::bench`], and calls
//! [`Harness::finish`]. Each benchmark is calibrated during warmup so a
//! sample takes a measurable slice of wall time, then timed over a fixed
//! iteration budget; the harness reports median / p95 / mean per
//! iteration and optional element throughput, and merges the results of
//! every bench binary into one machine-readable `BENCH_results.json` at
//! the workspace root.
//!
//! Environment knobs:
//!
//! * `BENCH_SMOKE=1` — CI smoke mode: minimal warmup and samples, so the
//!   whole suite finishes in seconds while still exercising every path.
//! * `BENCH_OUT=path.json` — override the results file location.
//!
//! # Examples
//!
//! ```no_run
//! use faas_testkit::Harness;
//! let mut h = Harness::new("my_target");
//! h.bench("hot_loop", || {
//!     std::hint::black_box(2u64 + 2);
//! });
//! h.finish();
//! ```

use std::path::PathBuf;
use std::time::{Duration, Instant};

use crate::json::Value;

/// Measured statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Benchmark name (unique within the target).
    pub name: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per timed sample (calibrated during warmup).
    pub iters_per_sample: u64,
    /// Median ns/iteration across samples.
    pub median_ns: f64,
    /// 95th-percentile ns/iteration across samples.
    pub p95_ns: f64,
    /// Mean ns/iteration across samples.
    pub mean_ns: f64,
    /// Fastest sample's ns/iteration.
    pub min_ns: f64,
    /// Slowest sample's ns/iteration.
    pub max_ns: f64,
    /// Elements processed per iteration (for throughput), if declared.
    pub elems_per_iter: Option<u64>,
}

impl BenchStats {
    /// Elements per second at the median sample, if throughput applies.
    pub fn throughput_elems_per_sec(&self) -> Option<f64> {
        self.elems_per_iter
            .map(|e| e as f64 * 1e9 / self.median_ns.max(1e-9))
    }

    fn to_json(&self) -> Value {
        let mut obj = Value::Obj(vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("samples".into(), Value::Num(self.samples as f64)),
            (
                "iters_per_sample".into(),
                Value::Num(self.iters_per_sample as f64),
            ),
            ("median_ns".into(), Value::Num(round2(self.median_ns))),
            ("p95_ns".into(), Value::Num(round2(self.p95_ns))),
            ("mean_ns".into(), Value::Num(round2(self.mean_ns))),
            ("min_ns".into(), Value::Num(round2(self.min_ns))),
            ("max_ns".into(), Value::Num(round2(self.max_ns))),
        ]);
        if let Some(tput) = self.throughput_elems_per_sec() {
            obj.set("throughput_elems_per_sec", Value::Num(round2(tput)));
        }
        obj
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// The per-target bench harness. See the [module docs](self).
#[derive(Debug)]
pub struct Harness {
    target: String,
    results: Vec<BenchStats>,
    filter: Option<String>,
    smoke: bool,
    samples: usize,
    min_sample_time: Duration,
    next_elems: Option<u64>,
}

impl Harness {
    /// Creates the harness for a bench target (the `[[bench]]` name).
    /// Reads CLI args so `cargo bench <substring>` filters benchmarks,
    /// and honors `BENCH_SMOKE`.
    pub fn new(target: &str) -> Self {
        let smoke = std::env::var("BENCH_SMOKE")
            .map(|v| v != "0")
            .unwrap_or(false);
        // cargo passes `--bench` (and test-harness flags); the first
        // non-flag argument is a name filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self {
            target: target.to_string(),
            results: Vec::new(),
            filter,
            smoke,
            samples: if smoke { 5 } else { 30 },
            min_sample_time: if smoke {
                Duration::from_millis(2)
            } else {
                Duration::from_millis(25)
            },
            next_elems: None,
        }
    }

    /// Overrides the number of timed samples for subsequent benchmarks
    /// (smoke mode keeps its own smaller floor).
    pub fn samples(&mut self, n: usize) -> &mut Self {
        if !self.smoke {
            self.samples = n.max(3);
        }
        self
    }

    /// Declares that each iteration of the *next* benchmark processes
    /// `n` elements, enabling throughput reporting.
    pub fn throughput_elems(&mut self, n: u64) -> &mut Self {
        self.next_elems = Some(n);
        self
    }

    /// Runs one benchmark. Results are printed immediately and recorded
    /// for [`finish`](Self::finish).
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) {
        let elems = self.next_elems.take();
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warmup + calibration: run until the clock has accumulated
        // enough time to estimate the per-iteration cost.
        let warmup_budget = if self.smoke {
            Duration::from_millis(5)
        } else {
            Duration::from_millis(150)
        };
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < warmup_budget || warmup_iters < 1 {
            f();
            warmup_iters += 1;
        }
        let est_ns = (warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64).max(1.0);
        let iters_per_sample =
            ((self.min_sample_time.as_nanos() as f64 / est_ns).ceil() as u64).max(1);

        let mut per_iter_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                f();
            }
            per_iter_ns.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter_ns.sort_by(f64::total_cmp);
        let pct = |p: f64| {
            let idx = ((per_iter_ns.len() - 1) as f64 * p).round() as usize;
            per_iter_ns[idx]
        };
        let stats = BenchStats {
            name: name.to_string(),
            samples: per_iter_ns.len(),
            iters_per_sample,
            median_ns: pct(0.50),
            p95_ns: pct(0.95),
            mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
            min_ns: per_iter_ns[0],
            max_ns: *per_iter_ns.last().expect("non-empty"),
            elems_per_iter: elems,
        };
        let tput = match stats.throughput_elems_per_sec() {
            Some(t) => format!("  ({} elems/s)", human(t)),
            None => String::new(),
        };
        println!(
            "{}/{name:<40} median {:>12}  p95 {:>12}{tput}",
            self.target,
            human_ns(stats.median_ns),
            human_ns(stats.p95_ns),
        );
        self.results.push(stats);
    }

    /// Records externally measured statistics under this target, as if
    /// they came from a [`bench`](Self::bench) run. The closure-based
    /// harness times short repeatable iterations; some measurements —
    /// an open-loop load run with per-request latency percentiles —
    /// are one long experiment whose statistics are computed by the
    /// experiment itself. Such callers build a [`BenchStats`] and hand
    /// it in here, and it merges into `BENCH_results.json` alongside
    /// everything else (and obeys the CLI name filter).
    pub fn record(&mut self, stats: BenchStats) {
        if let Some(filter) = &self.filter {
            if !stats.name.contains(filter.as_str()) {
                return;
            }
        }
        let tput = match stats.throughput_elems_per_sec() {
            Some(t) => format!("  ({} elems/s)", human(t)),
            None => String::new(),
        };
        println!(
            "{}/{:<40} median {:>12}  p95 {:>12}{tput}",
            self.target,
            stats.name,
            human_ns(stats.median_ns),
            human_ns(stats.p95_ns),
        );
        self.results.push(stats);
    }

    /// Whether the harness is in CI smoke mode (`BENCH_SMOKE=1`):
    /// externally measured experiments should shrink accordingly.
    pub fn smoke(&self) -> bool {
        self.smoke
    }

    /// Prints a summary and merges this target's results into
    /// `BENCH_results.json`. Call exactly once, at the end of `main`.
    pub fn finish(self) {
        if self.results.is_empty() {
            println!("{}: no benchmarks matched the filter", self.target);
            return;
        }
        let path = results_path();
        let mut doc = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| Value::parse(&text).ok())
            .filter(|v| matches!(v, Value::Obj(_)))
            .unwrap_or_else(|| {
                Value::Obj(vec![
                    ("schema".into(), Value::Num(1.0)),
                    ("targets".into(), Value::Obj(vec![])),
                ])
            });
        if doc.get("targets").is_none() {
            doc.set("targets", Value::Obj(vec![]));
        }
        let benches = Value::Arr(self.results.iter().map(BenchStats::to_json).collect());
        let entry = Value::Obj(vec![
            ("smoke".into(), Value::Bool(self.smoke)),
            ("benches".into(), benches),
        ]);
        // Re-fetch mutably: replace this target inside "targets".
        if let Value::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "targets" {
                    v.set(&self.target, entry);
                    // Keep target order stable (sorted) so reruns in any
                    // order produce identical files.
                    if let Value::Obj(targets) = v {
                        targets.sort_by(|a, b| a.0.cmp(&b.0));
                    }
                    break;
                }
            }
        }
        match atomic_write(&path, &doc.pretty()) {
            Ok(()) => println!("{}: results merged into {}", self.target, path.display()),
            Err(e) => eprintln!("{}: cannot write {}: {e}", self.target, path.display()),
        }
    }
}

/// Writes `contents` to `path` atomically: the data goes to a unique
/// temporary file in the same directory (same filesystem, so the rename
/// cannot cross devices) which is then renamed over the target. Readers
/// and concurrent/interrupted writers therefore always observe either
/// the old complete file or the new complete file, never a torn mix —
/// the `BENCH_results.json` merge is a read-modify-write cycle per bench
/// target, and a plain `fs::write` could be interrupted mid-stream.
pub fn atomic_write(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
    })?;
    let tmp_name = format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => PathBuf::from(&tmp_name),
    };
    let write_and_rename = (|| {
        std::fs::write(&tmp, contents)?;
        std::fs::rename(&tmp, path)
    })();
    if write_and_rename.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    write_and_rename
}

/// Where `BENCH_results.json` lives: `BENCH_OUT` if set, else the
/// enclosing cargo workspace root (bench binaries run with the package
/// directory as cwd), else the current directory.
fn results_path() -> PathBuf {
    if let Ok(p) = std::env::var("BENCH_OUT") {
        return PathBuf::from(p);
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir.join("BENCH_results.json");
            }
        }
        if !dir.pop() {
            return PathBuf::from("BENCH_results.json");
        }
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn human(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_harness(target: &str, out: &std::path::Path) -> Harness {
        // Constructed directly so tests don't depend on process env.
        let _ = out;
        Harness {
            target: target.to_string(),
            results: Vec::new(),
            filter: None,
            smoke: true,
            samples: 4,
            min_sample_time: Duration::from_micros(200),
            next_elems: None,
        }
    }

    #[test]
    fn measures_and_merges_two_targets() {
        let dir = std::env::temp_dir().join(format!("testkit-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_results.json");
        let _ = std::fs::remove_file(&out);
        // The results path is env-driven; set it for this test. Tests in
        // this module are the only users of BENCH_OUT in-process.
        std::env::set_var("BENCH_OUT", &out);

        let mut h1 = smoke_harness("alpha", &out);
        h1.throughput_elems(100);
        h1.bench("tiny_add", || {
            std::hint::black_box(1u64.wrapping_add(2));
        });
        h1.finish();

        let mut h2 = smoke_harness("beta", &out);
        h2.bench("tiny_mul", || {
            std::hint::black_box(3u64.wrapping_mul(4));
        });
        h2.finish();

        let doc = Value::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
        let targets = doc.get("targets").expect("targets");
        for t in ["alpha", "beta"] {
            let benches = targets.get(t).unwrap().get("benches").unwrap();
            let b = &benches.as_arr().unwrap()[0];
            let median = b.get("median_ns").unwrap().as_f64().unwrap();
            let p95 = b.get("p95_ns").unwrap().as_f64().unwrap();
            assert!(
                median > 0.0 && p95 >= median,
                "{t}: median {median} p95 {p95}"
            );
        }
        assert!(targets
            .get("alpha")
            .unwrap()
            .get("benches")
            .unwrap()
            .as_arr()
            .unwrap()[0]
            .get("throughput_elems_per_sec")
            .is_some());

        // Re-running a target replaces, not duplicates.
        let mut h3 = smoke_harness("alpha", &out);
        h3.bench("tiny_add", || {
            std::hint::black_box(5u64.wrapping_add(6));
        });
        h3.finish();
        let doc = Value::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
        let alpha = doc.get("targets").unwrap().get("alpha").unwrap();
        assert_eq!(alpha.get("benches").unwrap().as_arr().unwrap().len(), 1);

        std::env::remove_var("BENCH_OUT");
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn stats_ordering_holds() {
        let out = std::env::temp_dir().join("unused-bench.json");
        let mut h = smoke_harness("gamma", &out);
        h.bench("spin", || {
            let mut x = 0u64;
            for i in 0..50 {
                x = x.wrapping_add(std::hint::black_box(i));
            }
            std::hint::black_box(x);
        });
        let s = &h.results[0];
        assert!(s.min_ns <= s.median_ns);
        assert!(s.median_ns <= s.p95_ns);
        assert!(s.p95_ns <= s.max_ns);
        assert!(s.iters_per_sample >= 1);
    }

    #[test]
    fn atomic_write_replaces_contents_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("testkit-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("results.json");
        atomic_write(&out, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&out).unwrap(), "first");
        atomic_write(&out, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&out).unwrap(), "second");
        // No temp-file droppings left next to the target.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_rejects_directoryless_target() {
        let err = atomic_write(std::path::Path::new("/"), "x");
        assert!(err.is_err());
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human_ns(12.34), "12.3 ns");
        assert_eq!(human_ns(12_340.0), "12.34 µs");
        assert_eq!(human(2_500_000.0), "2.50M");
    }
}
