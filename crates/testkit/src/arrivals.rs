//! Seeded open-loop arrival schedules.
//!
//! An open-loop load generator injects requests at pre-decided instants
//! regardless of how the system under test responds — the only way to
//! observe queueing collapse honestly (a closed loop self-throttles).
//! This module produces those instants as an infinite, deterministic
//! iterator of microsecond timestamps: the same seed and rate always
//! yield the byte-identical schedule, so a live measurement can be
//! replayed exactly against the simulator.

use crate::rng::Rng;

/// How successive inter-arrival gaps are drawn.
#[derive(Debug, Clone)]
enum Gap {
    /// Fixed spacing in microseconds (a deterministic pacer).
    Uniform(f64),
    /// Exponential gaps (a Poisson process) at `mean_us` microseconds.
    Poisson { rng: Rng, mean_us: f64 },
}

/// An infinite, monotone, deterministic stream of arrival timestamps
/// in microseconds, starting at the first gap after time zero.
///
/// # Examples
///
/// ```
/// use faas_testkit::Arrivals;
///
/// // Two generators with the same seed agree byte-for-byte.
/// let a: Vec<u64> = Arrivals::poisson(7, 1000.0).take(100).collect();
/// let b: Vec<u64> = Arrivals::poisson(7, 1000.0).take(100).collect();
/// assert_eq!(a, b);
///
/// // A uniform pacer at 10 requests/sec ticks every 100 ms.
/// let u: Vec<u64> = Arrivals::uniform(10.0).take(3).collect();
/// assert_eq!(u, vec![100_000, 200_000, 300_000]);
/// ```
#[derive(Debug, Clone)]
pub struct Arrivals {
    /// Running clock in fractional microseconds; kept as `f64` so tiny
    /// gaps at high rates accumulate instead of rounding to zero.
    now_us: f64,
    gap: Gap,
}

impl Arrivals {
    /// A Poisson arrival process at `rate_per_sec`, seeded so the whole
    /// schedule is a pure function of `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not strictly positive and finite.
    pub fn poisson(seed: u64, rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive and finite, got {rate_per_sec}"
        );
        Self {
            now_us: 0.0,
            gap: Gap::Poisson {
                rng: Rng::seed_from_u64(seed),
                mean_us: 1e6 / rate_per_sec,
            },
        }
    }

    /// A deterministic pacer: arrivals exactly `1 / rate_per_sec`
    /// seconds apart.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not strictly positive and finite.
    pub fn uniform(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive and finite, got {rate_per_sec}"
        );
        Self {
            now_us: 0.0,
            gap: Gap::Uniform(1e6 / rate_per_sec),
        }
    }
}

impl Iterator for Arrivals {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let gap = match &mut self.gap {
            Gap::Uniform(us) => *us,
            Gap::Poisson { rng, mean_us } => rng.exponential(1.0 / *mean_us),
        };
        self.now_us += gap;
        Some(self.now_us as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_schedule_is_seed_deterministic_and_monotone() {
        let a: Vec<u64> = Arrivals::poisson(42, 5_000.0).take(10_000).collect();
        let b: Vec<u64> = Arrivals::poisson(42, 5_000.0).take(10_000).collect();
        assert_eq!(a, b, "same seed must give the identical schedule");
        let c: Vec<u64> = Arrivals::poisson(43, 5_000.0).take(10_000).collect();
        assert_ne!(a, c, "different seeds must diverge");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "monotone timestamps");
    }

    #[test]
    fn poisson_mean_gap_matches_the_rate() {
        // 5000 req/s => 200 us mean gap; over 100k arrivals the sample
        // mean of an exponential is within a few percent.
        let n = 100_000usize;
        let last = Arrivals::poisson(1, 5_000.0)
            .take(n)
            .last()
            .expect("non-empty");
        let mean_gap = last as f64 / n as f64;
        assert!(
            (mean_gap - 200.0).abs() < 10.0,
            "mean gap {mean_gap} us vs expected 200 us"
        );
    }

    #[test]
    fn uniform_pacer_does_not_drift_at_odd_rates() {
        // 3 req/s has a non-integral microsecond period (333333.3 us);
        // the f64 clock must not lose the fraction: after 3000 ticks
        // the schedule sits at ~1000 s, not 999 s.
        let last = Arrivals::uniform(3.0).take(3_000).last().expect("some");
        let expected = 3_000.0 * 1e6 / 3.0;
        assert!(
            (last as f64 - expected).abs() < 10.0,
            "tick 3000 at {last} us vs expected {expected} us"
        );
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn rejects_zero_rate() {
        let _ = Arrivals::poisson(0, 0.0);
    }
}
