//! Minimal property-testing runner.
//!
//! A property is a closure over a [`Gen`], which hands out random values
//! drawn from an underlying stream of raw `u64` *choices*. Recording
//! that stream buys the two features that make property testing usable:
//!
//! * **Shrinking** — on failure, the runner re-executes the property
//!   against simplified copies of the recorded choice stream
//!   (truncated, zeroed, halved). Because every `Gen` accessor maps the
//!   raw choice monotonically onto its range (choice 0 ⇒ range minimum,
//!   missing choices ⇒ 0), simplifying choices simplifies inputs — the
//!   same idea as Hypothesis-style choice-sequence shrinking.
//! * **Failing-seed persistence** — the per-case seed of a (shrunk)
//!   failure is appended to a `*.testkit-regressions` file which is
//!   re-run first on every subsequent run, mirroring the
//!   `proptest-regressions` workflow this replaces.
//!
//! Environment overrides: `TESTKIT_SEED` pins the base seed (printed on
//! every failure), `TESTKIT_CASES` overrides the case count (useful for
//! CI smoke runs).
//!
//! # Examples
//!
//! ```
//! use faas_testkit::Checker;
//!
//! Checker::new("addition_commutes").cases(50).run(|g| {
//!     let a = g.u64(0..1_000);
//!     let b = g.u64(0..1_000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use crate::rng::{splitmix64, Rng};

/// Random-input source handed to properties: draws values from a raw
/// choice stream that is recorded for shrinking and replay.
#[derive(Debug)]
pub struct Gen {
    rng: Rng,
    replay: Option<Vec<u64>>,
    pos: usize,
    record: Vec<u64>,
}

impl Gen {
    fn fresh(seed: u64) -> Self {
        Self {
            rng: Rng::seed_from_u64(seed),
            replay: None,
            pos: 0,
            record: Vec::new(),
        }
    }

    fn replaying(choices: Vec<u64>) -> Self {
        Self {
            rng: Rng::seed_from_u64(0),
            replay: Some(choices),
            pos: 0,
            record: Vec::new(),
        }
    }

    /// The next raw choice. In replay mode, choices past the end of the
    /// recorded stream read as 0 (the minimal value), which is what
    /// makes truncation a valid shrinking move.
    fn draw(&mut self) -> u64 {
        let v = match &self.replay {
            Some(r) => r.get(self.pos).copied().unwrap_or(0),
            None => self.rng.next_u64(),
        };
        self.pos += 1;
        self.record.push(v);
        v
    }

    /// Uniform integer in the half-open range. Choice 0 maps to `lo`.
    pub fn u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.draw() % (range.end - range.start)
    }

    /// Uniform `u32` in the half-open range.
    pub fn u32(&mut self, range: std::ops::Range<u32>) -> u32 {
        self.u64(range.start as u64..range.end as u64) as u32
    }

    /// Uniform `usize` in the half-open range.
    pub fn usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.u64(range.start as u64..range.end as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`. Choice 0 maps to `lo`.
    pub fn f64(&mut self, range: std::ops::Range<f64>) -> f64 {
        let u = (self.draw() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + u * (range.end - range.start)
    }

    /// Bernoulli draw; choice 0 maps to `false` (for any `p < 1`), so
    /// shrinking turns feature flags off.
    pub fn bool(&mut self, p: f64) -> bool {
        ((self.draw() >> 11) as f64 / (1u64 << 53) as f64) >= 1.0 - p
    }

    /// A vector whose length is drawn from `len`, elements from `f`.
    pub fn vec<T>(
        &mut self,
        len: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// One element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize(0..items.len())]
    }
}

/// Property-test configuration and runner. See the [module docs](self).
#[derive(Debug)]
pub struct Checker {
    name: String,
    cases: u32,
    base_seed: u64,
    shrink_budget: u32,
    regressions: Option<PathBuf>,
}

impl Checker {
    /// Creates a checker named `name` (used in failure diagnostics and
    /// regression-file entries) with 64 cases.
    pub fn new(name: &str) -> Self {
        let base_seed = std::env::var("TESTKIT_SEED")
            .ok()
            .and_then(|s| parse_seed(&s))
            .unwrap_or(0x001D_EA5E_ED0F_00D5_u64);
        let cases = std::env::var("TESTKIT_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        Self {
            name: name.to_string(),
            cases,
            base_seed,
            shrink_budget: 512,
            regressions: None,
        }
    }

    /// Sets the number of random cases (`TESTKIT_CASES` still wins).
    pub fn cases(mut self, n: u32) -> Self {
        if std::env::var("TESTKIT_CASES").is_err() {
            self.cases = n;
        }
        self
    }

    /// Sets the regression file: failing case seeds are appended here
    /// and re-run first on every subsequent run. Use a path anchored at
    /// `CARGO_MANIFEST_DIR` so it works from any working directory.
    pub fn regressions_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.regressions = Some(path.into());
        self
    }

    /// Caps the number of shrink attempts after a failure.
    pub fn shrink_budget(mut self, n: u32) -> Self {
        self.shrink_budget = n;
        self
    }

    /// Runs the property: persisted regression seeds first, then
    /// `cases` fresh random cases. On failure the input is shrunk, the
    /// case seed persisted, diagnostics printed, and the original panic
    /// re-raised so the test harness reports it.
    pub fn run<F: Fn(&mut Gen)>(self, prop: F) {
        for seed in self.load_regression_seeds() {
            self.run_case(&prop, seed, true);
        }
        let mut sm = self.base_seed ^ fxhash(self.name.as_bytes());
        for _ in 0..self.cases {
            let case_seed = splitmix64(&mut sm);
            self.run_case(&prop, case_seed, false);
        }
    }

    fn run_case<F: Fn(&mut Gen)>(&self, prop: &F, case_seed: u64, from_regression: bool) {
        let mut gen = Gen::fresh(case_seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| prop(&mut gen)));
        let Err(payload) = outcome else { return };
        let choices = gen.record.clone();
        let shrunk = self.shrink(prop, choices);
        if !from_regression {
            self.persist_regression_seed(case_seed);
        }
        eprintln!(
            "testkit: property '{}' failed (case seed {case_seed:#018x}, {} choices after \
             shrinking{}). Re-run deterministically with TESTKIT_SEED={:#x}.",
            self.name,
            shrunk.len(),
            if from_regression {
                ", replayed from regression file"
            } else {
                ""
            },
            self.base_seed,
        );
        // Re-raise the panic from the most-shrunk failing input so the
        // assertion message matches the minimal counterexample.
        match catch_unwind(AssertUnwindSafe(|| {
            prop(&mut Gen::replaying(shrunk.clone()))
        })) {
            Err(p) => resume_unwind(p),
            Ok(()) => resume_unwind(payload),
        }
    }

    /// Greedy choice-stream shrinking: truncation, chunk zeroing, and
    /// per-value halving, repeated until the budget runs out or no pass
    /// makes progress. Returns the simplest still-failing stream.
    fn shrink<F: Fn(&mut Gen)>(&self, prop: &F, mut best: Vec<u64>) -> Vec<u64> {
        let fails = |choices: &[u64]| {
            catch_unwind(AssertUnwindSafe(|| {
                prop(&mut Gen::replaying(choices.to_vec()))
            }))
            .is_err()
        };
        let mut attempts = 0u32;
        let mut progressed = true;
        while progressed && attempts < self.shrink_budget {
            progressed = false;
            // Pass 1: cut the tail in half, then quarters.
            for denom in [2usize, 4, 8] {
                let keep = best.len() - best.len() / denom;
                if keep < best.len() {
                    let cand = best[..keep].to_vec();
                    attempts += 1;
                    if fails(&cand) {
                        best = cand;
                        progressed = true;
                    }
                }
                if attempts >= self.shrink_budget {
                    return best;
                }
            }
            // Pass 2: zero chunks of shrinking size.
            for chunk in [8usize, 4, 2, 1] {
                let mut i = 0;
                while i < best.len() && attempts < self.shrink_budget {
                    let end = (i + chunk).min(best.len());
                    if best[i..end].iter().any(|&v| v != 0) {
                        let mut cand = best.clone();
                        cand[i..end].iter_mut().for_each(|v| *v = 0);
                        attempts += 1;
                        if fails(&cand) {
                            best = cand;
                            progressed = true;
                        }
                    }
                    i = end;
                }
            }
            // Pass 3: halve individual values.
            for i in 0..best.len() {
                if attempts >= self.shrink_budget {
                    return best;
                }
                if best[i] > 0 {
                    let mut cand = best.clone();
                    cand[i] /= 2;
                    attempts += 1;
                    if fails(&cand) {
                        best = cand;
                        progressed = true;
                    }
                }
            }
        }
        best
    }

    fn load_regression_seeds(&self) -> Vec<u64> {
        let Some(path) = &self.regressions else {
            return Vec::new();
        };
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        let tag = format!("cc {} ", self.name);
        text.lines()
            .filter_map(|line| line.strip_prefix(&tag))
            .filter_map(|rest| parse_seed(rest.split_whitespace().next().unwrap_or("")))
            .collect()
    }

    fn persist_regression_seed(&self, seed: u64) {
        let Some(path) = &self.regressions else {
            return;
        };
        if self.load_regression_seeds().contains(&seed) {
            return;
        }
        let mut text = std::fs::read_to_string(path).unwrap_or_else(|_| {
            "# Failing property-test case seeds persisted by faas-testkit.\n\
             # Each line is `cc <property-name> <case-seed>`; these cases\n\
             # re-run before any new random cases. Check this file in.\n"
                .to_string()
        });
        text.push_str(&format!("cc {} {seed:#018x}\n", self.name));
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("testkit: cannot persist regression seed to {path:?}: {e}");
        }
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Tiny FNV-style hash so differently named properties in one process
/// explore different streams even under a pinned `TESTKIT_SEED`.
fn fxhash(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = AtomicU32::new(0);
        Checker::new("counts_cases").cases(17).run(|g| {
            counter.fetch_add(1, Ordering::Relaxed);
            let v = g.u64(5..10);
            assert!((5..10).contains(&v));
        });
        // TESTKIT_CASES may override the count in exotic CI setups; it
        // must still run at least once.
        assert!(counter.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn failing_property_panics_and_shrinks() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Checker::new("must_fail").cases(50).run(|g| {
                let v = g.u64(0..1_000_000);
                assert!(v < 10, "found {v}");
            });
        }));
        assert!(result.is_err(), "property should have failed");
    }

    #[test]
    fn shrinking_finds_small_counterexamples() {
        // The minimal failing input for `v >= 100` under shrinking is
        // v == 100 exactly: zeroing pushes toward 0, halving toward the
        // boundary. Capture the last failing value via a cell.
        let last = std::sync::Mutex::new(0u64);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            Checker::new("shrinks_to_boundary").cases(200).run(|g| {
                let v = g.u64(0..1 << 40);
                if v >= 100 {
                    *last.lock().unwrap() = v;
                    panic!("too big: {v}");
                }
            });
        }));
        let v = *last.lock().unwrap();
        assert!(v >= 100, "shrunk input must still fail");
        assert!(
            v < 1 << 20,
            "shrinking should simplify far below 2^40, got {v}"
        );
    }

    #[test]
    fn vec_and_choose_compose() {
        Checker::new("vec_compose").cases(20).run(|g| {
            let xs = g.vec(1..10, |g| g.u32(0..100));
            assert!(!xs.is_empty() && xs.len() < 10);
            let item = *g.choose(&xs);
            assert!(xs.contains(&item));
        });
    }

    #[test]
    fn replay_past_end_yields_minimum() {
        let mut g = Gen::replaying(vec![]);
        assert_eq!(g.u64(7..100), 7);
        assert_eq!(g.f64(0.5..2.0), 0.5);
        assert!(!g.bool(0.99));
    }

    #[test]
    fn regression_file_round_trip() {
        let dir = std::env::temp_dir().join("testkit-prop-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("rt-{}.testkit-regressions", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let checker = Checker::new("rt_prop").regressions_file(&path);
        checker.persist_regression_seed(0xABCD);
        let checker = Checker::new("rt_prop").regressions_file(&path);
        assert_eq!(checker.load_regression_seeds(), vec![0xABCD]);
        // Idempotent.
        checker.persist_regression_seed(0xABCD);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("0x000000000000abcd").count(), 1);
        // Other properties don't see it.
        let other = Checker::new("other_prop").regressions_file(&path);
        assert!(other.load_regression_seeds().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn seed_parsing_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("0x10"), Some(16));
        assert_eq!(parse_seed(" 42 "), Some(42));
        assert_eq!(parse_seed("nope"), None);
    }
}
