//! Integer-microsecond time types shared by traces and the simulator.
//!
//! All simulation time is kept in integer microseconds to make runs
//! deterministic and hashable; conversion to `f64` milliseconds happens
//! only at the measurement boundary.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An absolute instant on the simulated timeline, in microseconds since
/// the start of the trace.
///
/// # Examples
///
/// ```
/// use faas_trace::{TimeDelta, TimePoint};
///
/// let t = TimePoint::from_millis(5) + TimeDelta::from_millis(3);
/// assert_eq!(t.as_micros(), 8_000);
/// assert_eq!(t - TimePoint::ZERO, TimeDelta::from_millis(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimePoint(u64);

/// A span of simulated time, in microseconds.
///
/// # Examples
///
/// ```
/// use faas_trace::TimeDelta;
///
/// let d = TimeDelta::from_secs(2);
/// assert_eq!(d.as_millis_f64(), 2000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(u64);

impl TimePoint {
    /// The trace origin.
    pub const ZERO: TimePoint = TimePoint(0);

    /// Creates a time point from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us)
    }

    /// Creates a time point from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000)
    }

    /// Creates a time point from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000)
    }

    /// Raw microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the origin as a float (measurement boundary).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since the origin as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The delta from `earlier` to `self`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: TimePoint) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(earlier.0))
    }
}

impl TimeDelta {
    /// The empty span.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Creates a delta from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us)
    }

    /// Creates a delta from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000)
    }

    /// Creates a delta from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000)
    }

    /// Creates a delta from whole minutes.
    pub const fn from_minutes(m: u64) -> Self {
        Self(m * 60_000_000)
    }

    /// Creates a delta from float milliseconds, rounding to microseconds
    /// and saturating negative values to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self((ms.max(0.0) * 1_000.0).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the span by a non-negative factor, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn scale(self, factor: f64) -> Self {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        Self((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<TimeDelta> for TimePoint {
    type Output = TimePoint;
    fn add(self, rhs: TimeDelta) -> TimePoint {
        TimePoint(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for TimePoint {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<TimeDelta> for TimePoint {
    type Output = TimePoint;
    fn sub(self, rhs: TimeDelta) -> TimePoint {
        TimePoint(self.0.checked_sub(rhs.0).expect("TimePoint underflow"))
    }
}

impl Sub for TimePoint {
    type Output = TimeDelta;
    fn sub(self, rhs: TimePoint) -> TimeDelta {
        TimeDelta(self.0.checked_sub(rhs.0).expect("TimePoint underflow"))
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl AddAssign for TimeDelta {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.checked_sub(rhs.0).expect("TimeDelta underflow"))
    }
}

impl SubAssign for TimeDelta {
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 = self.0.checked_sub(rhs.0).expect("TimeDelta underflow");
    }
}

impl fmt::Display for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(TimePoint::from_millis(1).as_micros(), 1000);
        assert_eq!(TimePoint::from_secs(1).as_millis_f64(), 1000.0);
        assert_eq!(TimeDelta::from_minutes(2).as_secs_f64(), 120.0);
    }

    #[test]
    fn arithmetic() {
        let a = TimePoint::from_micros(100);
        let b = a + TimeDelta::from_micros(50);
        assert_eq!(b - a, TimeDelta::from_micros(50));
        assert_eq!(b - TimeDelta::from_micros(150), TimePoint::ZERO);
    }

    #[test]
    fn saturating_since() {
        let early = TimePoint::from_micros(10);
        let late = TimePoint::from_micros(30);
        assert_eq!(late.saturating_since(early), TimeDelta::from_micros(20));
        assert_eq!(early.saturating_since(late), TimeDelta::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn point_sub_underflow_panics() {
        let _ = TimePoint::from_micros(1) - TimePoint::from_micros(2);
    }

    #[test]
    fn scale_rounds() {
        assert_eq!(
            TimeDelta::from_micros(3).scale(0.5),
            TimeDelta::from_micros(2)
        );
        assert_eq!(
            TimeDelta::from_micros(100).scale(1.5),
            TimeDelta::from_micros(150)
        );
        assert_eq!(TimeDelta::from_micros(7).scale(0.0), TimeDelta::ZERO);
    }

    #[test]
    fn from_millis_f64_saturates_negative() {
        assert_eq!(TimeDelta::from_millis_f64(-1.0), TimeDelta::ZERO);
        assert_eq!(
            TimeDelta::from_millis_f64(1.5),
            TimeDelta::from_micros(1500)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(TimePoint::from_millis(5).to_string(), "5.000ms");
        assert_eq!(TimeDelta::from_micros(1500).to_string(), "1.500ms");
    }

    #[test]
    fn ordering() {
        assert!(TimePoint::from_micros(1) < TimePoint::from_micros(2));
        assert!(TimeDelta::from_millis(1) > TimeDelta::from_micros(1));
    }
}
