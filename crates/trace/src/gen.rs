//! Seeded synthetic workload generators standing in for the production
//! Azure Functions and Alibaba Cloud FC traces (Table 1).
//!
//! The real traces are not redistributable, so the generators reproduce
//! the published marginals that keep-alive and scaling policies are
//! sensitive to:
//!
//! * **Popularity skew** — per-function request rates follow a Zipf law,
//!   giving the few-hot / many-cold split production FaaS exhibits.
//! * **Concurrency bursts** (Fig. 3) — a configurable fraction of each
//!   function's requests arrive in near-simultaneous bursts whose sizes
//!   are Pareto-distributed; the FC preset has a much heavier burst tail
//!   ({90th, 99th} per-minute concurrency of {120, 4482} in the paper).
//! * **Execution times** — per-function medians are log-uniform across a
//!   preset range; per-invocation times are lognormal around the median
//!   with a coefficient of variation of ≈25% (§2.6).
//! * **Cold starts** (§2.2) — proportional to the memory footprint at a
//!   configurable ms/MB factor (the paper uses 1–3 ms/MB for Azure),
//!   with per-function jitter.
//!
//! All generation is deterministic in the seed.

use faas_testkit::Rng;

use crate::{FunctionId, FunctionProfile, Invocation, TimeDelta, TimePoint, Trace};

/// Azure-like memory footprints in MB with selection weights: most
/// functions small, a modest 1 GB+ tail (Shahrad et al. report a median
/// allocated memory of ~170 MB).
const AZURE_MEM_MB: &[(u32, f64)] = &[
    (128, 0.32),
    (192, 0.18),
    (256, 0.18),
    (384, 0.11),
    (512, 0.10),
    (768, 0.05),
    (1024, 0.04),
    (1536, 0.02),
];

/// Alibaba-FC-like memory footprints: FC instances default much larger
/// (up to 3 GB), which is what drives the Table 1 GBps figures and the
/// 80–160 GB cache pressure of Fig. 12(c)/(d).
const FC_MEM_MB: &[(u32, f64)] = &[
    (256, 0.28),
    (384, 0.17),
    (512, 0.25),
    (768, 0.14),
    (1024, 0.10),
    (1536, 0.06),
];

/// Builder for a synthetic FaaS workload trace.
///
/// Use the [`azure`] / [`fc`] presets for the paper's two workloads, or
/// start from [`SyntheticWorkload::new`] and configure everything.
///
/// # Examples
///
/// ```
/// use faas_trace::gen;
///
/// let small = gen::fc(7).functions(10).minutes(1).build();
/// assert!(!small.is_empty());
/// // Same seed, same trace:
/// assert_eq!(small, gen::fc(7).functions(10).minutes(1).build());
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    seed: u64,
    name: &'static str,
    functions: usize,
    duration: TimeDelta,
    zipf_exponent: f64,
    rate_per_function_rps: f64,
    burst_fraction: f64,
    burst_pareto_alpha: f64,
    burst_max: usize,
    burst_window: TimeDelta,
    exec_median_range_ms: (f64, f64),
    exec_sigma: f64,
    cold_ms_per_mb: f64,
    cold_jitter: f64,
    diurnal_amplitude: f64,
    mem_choices: &'static [(u32, f64)],
    hot_functions_fast: bool,
}

impl SyntheticWorkload {
    /// Creates a neutral workload builder (moderate burstiness, 1 rps per
    /// function, 50–500 ms executions, 1.5 ms/MB cold starts).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            name: "synthetic",
            functions: 50,
            duration: TimeDelta::from_minutes(5),
            zipf_exponent: 1.0,
            rate_per_function_rps: 1.0,
            burst_fraction: 0.3,
            burst_pareto_alpha: 1.5,
            burst_max: 200,
            burst_window: TimeDelta::from_millis(500),
            exec_median_range_ms: (50.0, 500.0),
            exec_sigma: 0.25,
            cold_ms_per_mb: 1.5,
            cold_jitter: 0.2,
            diurnal_amplitude: 0.0,
            mem_choices: AZURE_MEM_MB,
            hot_functions_fast: false,
        }
    }

    /// Sets the number of deployed functions.
    pub fn functions(mut self, n: usize) -> Self {
        self.functions = n;
        self
    }

    /// Sets the trace duration in minutes.
    pub fn minutes(mut self, m: u64) -> Self {
        self.duration = TimeDelta::from_minutes(m);
        self
    }

    /// Sets the trace duration exactly.
    pub fn duration(mut self, d: TimeDelta) -> Self {
        self.duration = d;
        self
    }

    /// Sets the average request rate per function in requests/second.
    /// Total trace rate is roughly `functions * rate`.
    pub fn rate_per_function(mut self, rps: f64) -> Self {
        self.rate_per_function_rps = rps;
        self
    }

    /// Sets the Zipf popularity exponent (0 = uniform popularity).
    pub fn zipf_exponent(mut self, s: f64) -> Self {
        self.zipf_exponent = s;
        self
    }

    /// Sets the fraction of requests that arrive inside concurrency bursts.
    pub fn burst_fraction(mut self, f: f64) -> Self {
        self.burst_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Sets the Pareto tail exponent and cap for burst sizes. Smaller
    /// `alpha` means heavier concurrency tails.
    pub fn burst_tail(mut self, alpha: f64, max: usize) -> Self {
        self.burst_pareto_alpha = alpha;
        self.burst_max = max.max(2);
        self
    }

    /// Sets the window over which one burst's requests are spread.
    pub fn burst_window(mut self, w: TimeDelta) -> Self {
        self.burst_window = w;
        self
    }

    /// Sets the range of per-function median execution times (log-uniform)
    /// in milliseconds.
    pub fn exec_median_range_ms(mut self, lo: f64, hi: f64) -> Self {
        self.exec_median_range_ms = (lo, hi);
        self
    }

    /// Sets the lognormal sigma of per-invocation execution time around
    /// the function median (0.25 ≈ the paper's 25% variance).
    pub fn exec_sigma(mut self, sigma: f64) -> Self {
        self.exec_sigma = sigma;
        self
    }

    /// Sets the cold-start cost factor in milliseconds per MB of function
    /// memory (the paper's Azure methodology uses 1–3 ms/MB).
    pub fn cold_ms_per_mb(mut self, f: f64) -> Self {
        self.cold_ms_per_mb = f;
        self
    }

    /// Correlates popularity with speed: the most-invoked functions get
    /// the shortest execution-time medians. Production FC exhibits this —
    /// the hottest functions are lightweight event handlers — and it is
    /// why FC's request-weighted queueing delays (Fig. 6) are tiny even
    /// though its function-weighted cold/exec ratios (Fig. 2) are not.
    pub fn hot_functions_fast(mut self, yes: bool) -> Self {
        self.hot_functions_fast = yes;
        self
    }

    /// Sets the diurnal modulation amplitude in `[0, 1)`: the arrival
    /// rate follows `1 + a*sin(2*pi*t/24h)` over the trace, modelling the
    /// day/night cycle visible in multi-hour production traces. Zero
    /// (default) disables modulation; short traces are barely affected
    /// because they cover a sliver of the period.
    pub fn diurnal_amplitude(mut self, a: f64) -> Self {
        self.diurnal_amplitude = a.clamp(0.0, 0.99);
        self
    }

    /// The diurnal intensity multiplier at trace offset `t_us`.
    fn diurnal_factor(&self, t_us: f64) -> f64 {
        if self.diurnal_amplitude == 0.0 {
            return 1.0;
        }
        let day_us = 24.0 * 3_600.0 * 1e6;
        1.0 + self.diurnal_amplitude * (2.0 * std::f64::consts::PI * t_us / day_us).sin()
    }

    /// Thins an arrival at `t_us` so the accepted stream follows the
    /// diurnal intensity (generation runs at peak rate `1 + a`).
    fn diurnal_keep(&self, rng: &mut Rng, t_us: f64) -> bool {
        if self.diurnal_amplitude == 0.0 {
            return true;
        }
        let peak = 1.0 + self.diurnal_amplitude;
        rng.f64() < self.diurnal_factor(t_us) / peak
    }

    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if the builder was configured with zero functions.
    pub fn build(&self) -> Trace {
        assert!(self.functions > 0, "workload needs at least one function");
        let mut rng = Rng::seed_from_u64(self.seed);

        let profiles = self.build_profiles(&mut rng);
        // Per-function execution-time medians, log-uniform across range.
        let (lo, hi) = self.exec_median_range_ms;
        let mut medians_ms: Vec<f64> = (0..self.functions)
            .map(|_| rng.log_uniform(lo, hi))
            .collect();
        if self.hot_functions_fast {
            // Function 0 is the most popular (Zipf rank 1): give it the
            // shortest execution median, and so on down the ranking.
            medians_ms.sort_by(f64::total_cmp);
        }

        // Zipf rates normalised so the mean per-function rate is as asked.
        let weights: Vec<f64> = (1..=self.functions)
            .map(|rank| 1.0 / (rank as f64).powf(self.zipf_exponent))
            .collect();
        let wsum: f64 = weights.iter().sum();
        let total_rate = self.rate_per_function_rps * self.functions as f64;

        let duration_s = self.duration.as_secs_f64();
        let mut invocations = Vec::new();
        for (i, profile) in profiles.iter().enumerate() {
            let rate = total_rate * weights[i] / wsum;
            let expected = rate * duration_s;
            let steady = expected * (1.0 - self.burst_fraction);
            let bursty = expected * self.burst_fraction;
            self.gen_steady(
                &mut rng,
                profile.id,
                steady,
                medians_ms[i],
                &mut invocations,
            );
            self.gen_bursts(
                &mut rng,
                profile.id,
                bursty,
                medians_ms[i],
                &mut invocations,
            );
        }

        Trace::new(profiles, invocations).expect("generator emits consistent traces")
    }

    fn build_profiles(&self, rng: &mut Rng) -> Vec<FunctionProfile> {
        (0..self.functions)
            .map(|i| {
                let mem_mb = rng.weighted(self.mem_choices);
                let jitter = 1.0 + (rng.f64() * 2.0 - 1.0) * self.cold_jitter;
                let cold_ms = (f64::from(mem_mb) * self.cold_ms_per_mb * jitter).max(1.0);
                FunctionProfile::new(
                    FunctionId(i as u32),
                    format!("{}-{}", self.name, i),
                    mem_mb,
                    TimeDelta::from_millis_f64(cold_ms),
                )
            })
            .collect()
    }

    /// Poisson-process arrivals with exponential inter-arrival gaps.
    fn gen_steady(
        &self,
        rng: &mut Rng,
        func: FunctionId,
        expected: f64,
        median_ms: f64,
        out: &mut Vec<Invocation>,
    ) {
        if expected <= 0.0 {
            return;
        }
        let peak = 1.0 + self.diurnal_amplitude;
        // lint:allow(C1): micro durations stay below 2^53 — exact in f64
        let dur_us = self.duration.as_micros() as f64;
        let rate_per_us = expected * peak / dur_us;
        let mut t = 0.0f64;
        loop {
            t += rng.exponential(rate_per_us);
            if t >= dur_us {
                break;
            }
            if self.diurnal_keep(rng, t) {
                // lint:allow(C1): quantizing a non-negative f64 instant to whole µs
                let at = TimePoint::from_micros(t as u64);
                out.push(self.invocation(rng, func, at, median_ms));
            }
        }
    }

    /// Burst arrivals: Pareto-sized rate surges. Each burst places `size`
    /// requests uniformly over a span drawn log-uniformly between the
    /// burst window and 25x the window — production "concurrency" is
    /// mostly a sustained elevated rate over seconds (Fig. 3 measures
    /// requests *per minute*), with the shortest spans degenerating into
    /// near-simultaneous clumps. Larger bursts bias toward longer spans
    /// so the surge *rate* stays bounded rather than its duration.
    fn gen_bursts(
        &self,
        rng: &mut Rng,
        func: FunctionId,
        expected: f64,
        median_ms: f64,
        out: &mut Vec<Invocation>,
    ) {
        let mut remaining = expected.round() as i64;
        let dur_us = self.duration.as_micros();
        // lint:allow(C1): micro windows stay below 2^53 — exact in f64
        let w = self.burst_window.as_micros().max(1) as f64;
        while remaining > 0 {
            let size = rng
                .pareto_int(self.burst_pareto_alpha, 2, self.burst_max)
                .min(remaining.max(2) as usize);
            let floor = w * (1.0 + (size as f64).sqrt());
            let span = rng.log_uniform(floor, floor * 25.0) as u64;
            let mut start = rng.range_u64(0, dur_us.max(1));
            // Bias burst placement toward diurnal peaks.
            for _ in 0..8 {
                if self.diurnal_keep(rng, start as f64) {
                    break;
                }
                start = rng.range_u64(0, dur_us.max(1));
            }
            for _ in 0..size {
                let offset = rng.range_u64_inclusive(0, span);
                let at = TimePoint::from_micros((start + offset).min(dur_us));
                out.push(self.invocation(rng, func, at, median_ms));
            }
            remaining -= size as i64;
        }
    }

    fn invocation(
        &self,
        rng: &mut Rng,
        func: FunctionId,
        arrival: TimePoint,
        median_ms: f64,
    ) -> Invocation {
        let exec_ms = rng.lognormal_median(median_ms, self.exec_sigma).max(0.1);
        Invocation {
            func,
            arrival,
            exec: TimeDelta::from_millis_f64(exec_ms),
        }
    }
}

/// Preset modeling the sampled 30-minute Azure Functions workload
/// (Table 1: 330 functions, ≈598k requests): moderate burstiness, broad
/// execution times (tens of ms to seconds), 1.5 ms/MB cold starts.
///
/// Under this mix, cold starts and queueing delays overlap, producing the
/// Fig. 5 crossover where ≈70% of queueing delays beat a cold start.
pub fn azure(seed: u64) -> SyntheticWorkload {
    let mut w = SyntheticWorkload::new(seed);
    w.name = "azure";
    w.functions = 330;
    w.duration = TimeDelta::from_minutes(30);
    w.zipf_exponent = 0.5;
    w.rate_per_function_rps = 1.0;
    w.burst_fraction = 0.50;
    w.burst_pareto_alpha = 1.7;
    w.burst_max = 100;
    w.burst_window = TimeDelta::from_millis(800);
    w.exec_median_range_ms = (25.0, 700.0);
    w.exec_sigma = 0.25;
    w.cold_ms_per_mb = 1.5;
    w
}

/// Preset modeling the sampled 30-minute Alibaba Cloud FC workload
/// (Table 1: 220 functions, ≈410k requests): a much heavier concurrency
/// tail and short executions relative to cold starts, so queueing on a
/// busy container essentially always beats a cold start (Fig. 6).
pub fn fc(seed: u64) -> SyntheticWorkload {
    let mut w = SyntheticWorkload::new(seed);
    w.name = "fc";
    w.functions = 220;
    w.duration = TimeDelta::from_minutes(30);
    w.zipf_exponent = 1.1;
    w.rate_per_function_rps = 1.05;
    w.burst_fraction = 0.50;
    w.burst_pareto_alpha = 1.2;
    w.burst_max = 1_500;
    w.burst_window = TimeDelta::from_millis(400);
    w.exec_median_range_ms = (2.0, 800.0);
    w.exec_sigma = 0.25;
    w.cold_ms_per_mb = 1.2;
    w.mem_choices = FC_MEM_MB;
    w.hot_functions_fast = true;
    w
}

/// Preset modeling the 24-hour Azure Functions day-1 sample the paper's
/// motivation study uses (750 functions, ≈14.7M requests at full scale).
/// Generate with fewer minutes for tractable experiment runtimes.
pub fn azure_daily(seed: u64) -> SyntheticWorkload {
    let mut w = azure(seed);
    w.name = "azure24h";
    w.functions = 750;
    w.duration = TimeDelta::from_minutes(24 * 60);
    w.rate_per_function_rps = 0.23; // ≈170 rps aggregate, per Table 1.
    w.diurnal_amplitude = 0.45; // day/night swing of the daily trace
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_metrics::Summary;

    #[test]
    fn deterministic_for_same_seed() {
        let a = azure(1).functions(10).minutes(1).build();
        let b = azure(1).functions(10).minutes(1).build();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = azure(1).functions(10).minutes(1).build();
        let b = azure(2).functions(10).minutes(1).build();
        assert_ne!(a, b);
    }

    #[test]
    fn request_volume_close_to_target() {
        let w = SyntheticWorkload::new(3)
            .functions(50)
            .minutes(5)
            .rate_per_function(1.0);
        let trace = w.build();
        let expected = 50.0 * 300.0;
        let actual = trace.len() as f64;
        assert!(
            (actual - expected).abs() / expected < 0.25,
            "expected ≈{expected} invocations, got {actual}"
        );
    }

    #[test]
    fn arrivals_within_duration() {
        let trace = fc(5).functions(20).minutes(2).build();
        let dur = TimeDelta::from_minutes(2);
        for inv in trace.invocations() {
            assert!(inv.arrival.saturating_since(TimePoint::ZERO) <= dur);
        }
    }

    #[test]
    fn exec_variance_matches_sigma() {
        // One function so all invocations share a median; CV should be
        // near the lognormal CV for sigma=0.25 (≈0.253).
        let trace = SyntheticWorkload::new(11)
            .functions(1)
            .minutes(10)
            .rate_per_function(5.0)
            .exec_sigma(0.25)
            .build();
        let s: Summary = trace
            .invocations()
            .iter()
            .map(|i| i.exec.as_millis_f64())
            .collect();
        assert!(s.count() > 1_000);
        let cv = s.coefficient_of_variation();
        assert!((0.15..0.40).contains(&cv), "CV {cv} not near 0.25");
    }

    #[test]
    fn cold_start_scales_with_memory() {
        let trace = azure(9).functions(100).minutes(1).build();
        for f in trace.functions() {
            let per_mb = f.cold_start.as_millis_f64() / f64::from(f.mem_mb);
            // 1.5 ms/MB with ±20% jitter.
            assert!((1.1..=1.9).contains(&per_mb), "cold factor {per_mb}");
        }
    }

    #[test]
    fn fc_has_heavier_burst_tail_than_azure() {
        let az = azure(21).functions(60).minutes(4).build();
        let fc_t = fc(21).functions(60).minutes(4).build();
        let peak = |t: &Trace| {
            crate::stats::per_function_peak_rpm(t)
                .into_iter()
                .fold(0.0f64, f64::max)
        };
        assert!(
            peak(&fc_t) > peak(&az),
            "FC peak {} should exceed Azure peak {}",
            peak(&fc_t),
            peak(&az)
        );
    }

    #[test]
    fn zipf_concentrates_load() {
        let trace = SyntheticWorkload::new(4)
            .functions(20)
            .minutes(3)
            .zipf_exponent(1.2)
            .build();
        let counts = trace.invocation_counts();
        let hot = counts.get(&FunctionId(0)).copied().unwrap_or(0);
        let cold = counts.get(&FunctionId(19)).copied().unwrap_or(0);
        assert!(hot > cold * 3, "hot {hot} vs cold {cold}");
    }

    #[test]
    #[should_panic(expected = "at least one function")]
    fn zero_functions_panics() {
        let _ = SyntheticWorkload::new(0).functions(0).build();
    }

    #[test]
    fn distribution_helpers_in_range() {
        let mut rng = Rng::seed_from_u64(0);
        for _ in 0..1000 {
            let p = rng.pareto_int(1.5, 2, 100);
            assert!((2..=100).contains(&p));
            let lu = rng.log_uniform(1.0, 10.0);
            assert!((1.0..=10.0).contains(&lu));
            let e = rng.exponential(0.5);
            assert!(e > 0.0);
        }
    }

    #[test]
    fn weighted_choice_respects_support() {
        let mut rng = Rng::seed_from_u64(1);
        let choices = [(1u32, 0.5), (2, 0.5)];
        for _ in 0..100 {
            let c = rng.weighted(&choices);
            assert!(c == 1 || c == 2);
        }
    }
}

#[cfg(test)]
mod diurnal_tests {
    use super::*;
    use crate::TimeDelta;

    #[test]
    fn diurnal_rate_swings_across_the_day() {
        // 24-hour single-function trace with strong modulation: the
        // busiest 6-hour window must see substantially more arrivals
        // than the quietest.
        let trace = SyntheticWorkload::new(5)
            .functions(1)
            .duration(TimeDelta::from_minutes(24 * 60))
            .rate_per_function(0.05)
            .burst_fraction(0.0)
            .diurnal_amplitude(0.8)
            .build();
        let mut quarters = [0u64; 4];
        for inv in trace.invocations() {
            let q = (inv.arrival.as_secs_f64() / (6.0 * 3600.0)) as usize;
            quarters[q.min(3)] += 1;
        }
        // sin peaks in the first quarter (0-6h) and troughs in the third.
        assert!(
            quarters[0] as f64 > quarters[2] as f64 * 1.5,
            "expected diurnal swing, got {quarters:?}"
        );
    }

    #[test]
    fn zero_amplitude_is_uniform_ish() {
        let trace = SyntheticWorkload::new(5)
            .functions(1)
            .duration(TimeDelta::from_minutes(24 * 60))
            .rate_per_function(0.05)
            .burst_fraction(0.0)
            .build();
        let mut halves = [0u64; 2];
        for inv in trace.invocations() {
            let h = (inv.arrival.as_secs_f64() / (12.0 * 3600.0)) as usize;
            halves[h.min(1)] += 1;
        }
        let ratio = halves[0] as f64 / halves[1].max(1) as f64;
        assert!((0.8..1.25).contains(&ratio), "halves {halves:?}");
    }

    #[test]
    fn amplitude_is_clamped() {
        let w = SyntheticWorkload::new(0).diurnal_amplitude(5.0);
        // Building must not panic and thinning probabilities stay valid.
        let _ = w.functions(1).minutes(1).build();
    }
}
