//! Trace statistics reproducing Table 1 and Figures 2–3 of the paper.

use std::collections::BTreeMap;

use faas_metrics::{Cdf, Summary};

use crate::{FunctionId, Trace};

/// Aggregate workload statistics as reported in Table 1 of the paper:
/// request counts, requests-per-second, and aggregate request memory in
/// GB-per-second, each with average/min/max over one-second buckets.
///
/// # Examples
///
/// ```
/// use faas_trace::{gen, stats::TraceStats};
///
/// let trace = gen::azure(1).functions(20).minutes(2).build();
/// let s = TraceStats::compute(&trace);
/// assert_eq!(s.invocations as usize, trace.len());
/// assert!(s.rps_max >= s.rps_avg && s.rps_avg >= s.rps_min);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total number of invocation requests.
    pub invocations: u64,
    /// Number of distinct functions with at least one profile.
    pub functions: usize,
    /// Trace duration in seconds (last arrival).
    pub duration_secs: f64,
    /// Mean requests per second over one-second buckets.
    pub rps_avg: f64,
    /// Minimum requests per second over one-second buckets.
    pub rps_min: f64,
    /// Maximum requests per second over one-second buckets.
    pub rps_max: f64,
    /// Mean aggregate request memory per second, in GB.
    pub gbps_avg: f64,
    /// Minimum aggregate request memory per second, in GB.
    pub gbps_min: f64,
    /// Maximum aggregate request memory per second, in GB.
    pub gbps_max: f64,
}

impl TraceStats {
    /// Computes the Table 1 statistics for a trace.
    ///
    /// Buckets are one second wide, matching the paper's Rps/GBps rows.
    /// An empty trace yields all-zero statistics.
    pub fn compute(trace: &Trace) -> Self {
        let invocations = trace.len() as u64;
        let functions = trace.functions().len();
        if trace.is_empty() {
            return Self {
                invocations,
                functions,
                duration_secs: 0.0,
                rps_avg: 0.0,
                rps_min: 0.0,
                rps_max: 0.0,
                gbps_avg: 0.0,
                gbps_min: 0.0,
                gbps_max: 0.0,
            };
        }
        let duration_secs = trace.duration().as_secs_f64().max(1.0);
        // Bucket boundaries are computed in integer microseconds: the
        // float path (`as_secs_f64() as usize`) truncates through an
        // f64 and was flagged by cidre-lint (C1).
        let buckets = usize::try_from(trace.duration().as_micros().div_ceil(1_000_000).max(1))
            .expect("trace duration in seconds fits usize");
        let mut reqs = vec![0u64; buckets];
        let mut gbs = vec![0f64; buckets];
        for inv in trace.invocations() {
            let b = usize::try_from(inv.arrival.as_micros() / 1_000_000)
                .expect("arrival second fits usize")
                .min(buckets - 1);
            reqs[b] += 1;
            let mem_mb = trace
                .function(inv.func)
                .expect("trace invariant: profile exists")
                .mem_mb;
            gbs[b] += f64::from(mem_mb) / 1024.0;
        }
        let rps: Summary = reqs.iter().map(|&r| r as f64).collect();
        let gbps: Summary = gbs.iter().copied().collect();
        Self {
            invocations,
            functions,
            duration_secs,
            rps_avg: rps.mean(),
            rps_min: rps.min().unwrap_or(0.0),
            rps_max: rps.max().unwrap_or(0.0),
            gbps_avg: gbps.mean(),
            gbps_min: gbps.min().unwrap_or(0.0),
            gbps_max: gbps.max().unwrap_or(0.0),
        }
    }
}

/// CDF of per-invocation cold-start-latency to execution-time ratios
/// (Fig. 2). `cold_scale` multiplies each function's profiled cold start,
/// which is how the paper applies its 1/2/3 ms-per-MB estimates to the
/// Azure trace.
///
/// Invocations with zero execution time are skipped.
pub fn cold_exec_ratio_cdf(trace: &Trace, cold_scale: f64) -> Cdf {
    trace
        .invocations()
        .iter()
        .filter_map(|inv| {
            let exec = inv.exec.as_millis_f64();
            if exec <= 0.0 {
                return None;
            }
            let cold = trace
                .function(inv.func)
                .expect("trace invariant: profile exists")
                .cold_start
                .as_millis_f64()
                * cold_scale;
            Some(cold / exec)
        })
        .collect()
}

/// Per-function *peak* requests-per-minute over the trace, the concurrency
/// measure plotted in Fig. 3 ("each point in the curve: reqs/min of a
/// function"). Peak (rather than mean) captures the burst level a
/// keep-alive policy must absorb; functions with no invocations are
/// omitted.
///
/// The returned vector is ordered by ascending [`FunctionId`]. The
/// previous implementation iterated `HashMap`s, so two identical traces
/// could yield differently ordered vectors — harmless once inside a
/// sorted [`Cdf`], but a nondeterminism hazard for any direct consumer
/// (cidre-lint rule O1). `BTreeMap` pins the order end to end.
pub fn per_function_peak_rpm(trace: &Trace) -> Vec<f64> {
    let mut per_minute: BTreeMap<(FunctionId, u64), u64> = BTreeMap::new();
    for inv in trace.invocations() {
        let minute = inv.arrival.as_micros() / 60_000_000;
        *per_minute.entry((inv.func, minute)).or_insert(0) += 1;
    }
    let mut peaks: BTreeMap<FunctionId, u64> = BTreeMap::new();
    for ((f, _), count) in per_minute {
        let peak = peaks.entry(f).or_insert(0);
        *peak = (*peak).max(count);
    }
    peaks.into_values().map(|v| v as f64).collect()
}

/// CDF over [`per_function_peak_rpm`] (Fig. 3).
pub fn concurrency_cdf(trace: &Trace) -> Cdf {
    Cdf::from_samples(per_function_peak_rpm(trace))
}

/// Fraction of functions whose execution-time coefficient of variation is
/// at least `threshold` (the paper reports 68% of Azure and 59% of FC
/// functions at or above 25%, §2.6). Functions with fewer than two
/// invocations are skipped.
pub fn fraction_high_variance(trace: &Trace, threshold: f64) -> f64 {
    let mut per_fn: BTreeMap<FunctionId, Summary> = BTreeMap::new();
    for inv in trace.invocations() {
        per_fn
            .entry(inv.func)
            .or_default()
            .record(inv.exec.as_millis_f64());
    }
    let eligible: Vec<&Summary> = per_fn.values().filter(|s| s.count() >= 2).collect();
    if eligible.is_empty() {
        return 0.0;
    }
    let high = eligible
        .iter()
        .filter(|s| s.coefficient_of_variation() >= threshold)
        .count();
    high as f64 / eligible.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionProfile, Invocation, TimeDelta, TimePoint};

    fn trace_with(invs: Vec<(u32, u64, u64)>) -> Trace {
        // (func, arrival_ms, exec_ms); two functions with distinct memory.
        let fs = vec![
            FunctionProfile::new(FunctionId(0), "a", 1024, TimeDelta::from_millis(200)),
            FunctionProfile::new(FunctionId(1), "b", 512, TimeDelta::from_millis(100)),
        ];
        let invs = invs
            .into_iter()
            .map(|(f, at, ex)| Invocation {
                func: FunctionId(f),
                arrival: TimePoint::from_millis(at),
                exec: TimeDelta::from_millis(ex),
            })
            .collect();
        Trace::new(fs, invs).expect("valid")
    }

    #[test]
    fn table1_stats_hand_computed() {
        // Two requests in second 0, one in second 2 (duration 2s -> 2 buckets...
        // duration = 2000ms => buckets = 2, but arrival at 2000ms lands in last bucket).
        let t = trace_with(vec![(0, 0, 10), (1, 500, 10), (0, 2000, 10)]);
        let s = TraceStats::compute(&t);
        assert_eq!(s.invocations, 3);
        assert_eq!(s.functions, 2);
        assert_eq!(s.duration_secs, 2.0);
        // Buckets: [2, 1] -> avg 1.5, min 1, max 2.
        assert_eq!(s.rps_avg, 1.5);
        assert_eq!(s.rps_min, 1.0);
        assert_eq!(s.rps_max, 2.0);
        // GB: bucket0 = 1.0 + 0.5, bucket1 = 1.0.
        assert!((s.gbps_max - 1.5).abs() < 1e-12);
        assert!((s.gbps_min - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_stats_are_zero() {
        let s = TraceStats::compute(&Trace::default());
        assert_eq!(s.invocations, 0);
        assert_eq!(s.rps_max, 0.0);
    }

    #[test]
    fn cold_exec_ratio_scales() {
        let t = trace_with(vec![(0, 0, 100)]); // cold 200ms, exec 100ms
        let cdf1 = cold_exec_ratio_cdf(&t, 1.0);
        assert_eq!(cdf1.samples(), &[2.0]);
        let cdf2 = cold_exec_ratio_cdf(&t, 0.5);
        assert_eq!(cdf2.samples(), &[1.0]);
    }

    #[test]
    fn peak_rpm_takes_max_minute() {
        // fn0: 3 reqs in minute 0, 1 req in minute 1 -> peak 3.
        let t = trace_with(vec![(0, 0, 1), (0, 1, 1), (0, 2, 1), (0, 61_000, 1)]);
        let peaks = per_function_peak_rpm(&t);
        assert_eq!(peaks, vec![3.0]);
    }

    #[test]
    fn concurrency_cdf_counts_functions() {
        let t = trace_with(vec![(0, 0, 1), (1, 0, 1), (1, 10, 1)]);
        let cdf = concurrency_cdf(&t);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.max(), Some(2.0));
    }

    #[test]
    fn variance_fraction() {
        // fn0 constant exec => CV 0; fn1 highly variable.
        let t = trace_with(vec![(0, 0, 10), (0, 1, 10), (1, 0, 1), (1, 1, 100)]);
        assert_eq!(fraction_high_variance(&t, 0.25), 0.5);
        assert_eq!(fraction_high_variance(&Trace::default(), 0.25), 0.0);
    }
}
