//! Plain-text (CSV) trace serialisation.
//!
//! Format: a single file with two sections. Function profiles come first,
//! one `F,<id>,<name>,<mem_mb>,<cold_start_us>` line each; invocations
//! follow, one `I,<func_id>,<arrival_us>,<exec_us>` line each. Lines
//! starting with `#` and blank lines are ignored. Names must not contain
//! commas or newlines.

use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use crate::{FunctionId, FunctionProfile, Invocation, TimeDelta, TimePoint, Trace, TraceError};

/// Error raised while reading or writing a trace file.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A line did not match the expected format (line number, message).
    Parse(usize, String),
    /// The parsed records do not form a consistent trace.
    Inconsistent(TraceError),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::Parse(line, msg) => write!(f, "trace parse error at line {line}: {msg}"),
            TraceIoError::Inconsistent(e) => write!(f, "inconsistent trace: {e}"),
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Parse(..) => None,
            TraceIoError::Inconsistent(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Serialises a trace to the CSV format described in the module docs.
pub fn to_string(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str(
        "# CIDRE trace: F,<id>,<name>,<mem_mb>,<cold_us> / I,<fn>,<arrival_us>,<exec_us>\n",
    );
    for f in trace.functions() {
        out.push_str(&format!(
            "F,{},{},{},{}\n",
            f.id.0,
            f.name,
            f.mem_mb,
            f.cold_start.as_micros()
        ));
    }
    for i in trace.invocations() {
        out.push_str(&format!(
            "I,{},{},{}\n",
            i.func.0,
            i.arrival.as_micros(),
            i.exec.as_micros()
        ));
    }
    out
}

/// Parses a trace from the CSV format described in the module docs.
///
/// # Errors
///
/// Returns [`TraceIoError::Parse`] on malformed lines and
/// [`TraceIoError::Inconsistent`] if records don't form a valid trace.
pub fn from_str(text: &str) -> Result<Trace, TraceIoError> {
    let mut functions = Vec::new();
    let mut invocations = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        let parse_u64 = |s: &str, what: &str| {
            s.parse::<u64>()
                .map_err(|_| TraceIoError::Parse(lineno, format!("bad {what}: {s:?}")))
        };
        match fields.first().copied() {
            Some("F") if fields.len() == 5 => {
                let id = parse_u64(fields[1], "function id")? as u32;
                let mem = parse_u64(fields[3], "memory")? as u32;
                let cold = parse_u64(fields[4], "cold start")?;
                functions.push(FunctionProfile::new(
                    FunctionId(id),
                    fields[2],
                    mem,
                    TimeDelta::from_micros(cold),
                ));
            }
            Some("I") if fields.len() == 4 => {
                let id = parse_u64(fields[1], "function id")? as u32;
                let arrival = parse_u64(fields[2], "arrival")?;
                let exec = parse_u64(fields[3], "exec")?;
                invocations.push(Invocation {
                    func: FunctionId(id),
                    arrival: TimePoint::from_micros(arrival),
                    exec: TimeDelta::from_micros(exec),
                });
            }
            _ => {
                return Err(TraceIoError::Parse(
                    lineno,
                    format!("expected 'F' (5 fields) or 'I' (4 fields) record, got {line:?}"),
                ))
            }
        }
    }
    Trace::new(functions, invocations).map_err(TraceIoError::Inconsistent)
}

/// Writes a trace to a file.
///
/// # Errors
///
/// Returns any filesystem error encountered.
pub fn write_file(trace: &Trace, path: impl AsRef<Path>) -> Result<(), TraceIoError> {
    let mut f = fs::File::create(path)?;
    f.write_all(to_string(trace).as_bytes())?;
    Ok(())
}

/// Reads a trace from a file.
///
/// # Errors
///
/// Returns filesystem, parse, or consistency errors.
pub fn read_file(path: impl AsRef<Path>) -> Result<Trace, TraceIoError> {
    from_str(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn round_trip_preserves_trace() {
        let t = gen::azure(3).functions(5).minutes(1).build();
        let text = to_string(&t);
        let back = from_str(&text).expect("parses");
        assert_eq!(t, back);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let t = from_str("# hi\n\nF,0,f,128,1000\nI,0,5,10\n").expect("parses");
        assert_eq!(t.len(), 1);
        assert_eq!(t.functions().len(), 1);
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = from_str("F,0,f,128,1000\nGARBAGE\n").expect_err("must fail");
        match err {
            TraceIoError::Parse(line, _) => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bad_number_is_parse_error() {
        let err = from_str("F,x,f,128,1000\n").expect_err("must fail");
        assert!(err.to_string().contains("function id"));
    }

    #[test]
    fn unknown_function_is_inconsistent() {
        let err = from_str("I,7,0,10\n").expect_err("must fail");
        assert!(matches!(err, TraceIoError::Inconsistent(_)));
    }

    #[test]
    fn file_round_trip() {
        let t = gen::fc(9).functions(3).minutes(1).build();
        let dir = std::env::temp_dir().join("cidre-trace-io-test");
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("t.csv");
        write_file(&t, &path).expect("write");
        let back = read_file(&path).expect("read");
        assert_eq!(t, back);
        let _ = fs::remove_file(&path);
    }
}
