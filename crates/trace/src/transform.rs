//! Trace transforms used by the paper's sensitivity studies.

use std::collections::BTreeSet;

use crate::{FunctionId, Invocation, TimePoint, Trace};

#[cfg(test)]
use crate::TimeDelta;

/// Scales all inter-arrival times by `factor` (Fig. 19).
///
/// A factor of 2.0 doubles every gap (halving the load); 0.5 compresses
/// the trace (doubling the load). Implemented as scaling each arrival's
/// offset from the trace origin, which scales every inter-arrival gap by
/// the same factor. Execution times are unchanged.
///
/// # Panics
///
/// Panics if `factor` is negative or NaN.
pub fn scale_iat(trace: &Trace, factor: f64) -> Trace {
    assert!(factor >= 0.0, "IAT factor must be non-negative");
    let (functions, invocations) = trace.clone().into_parts();
    let invocations = invocations
        .into_iter()
        .map(|inv| {
            // lint:allow(C1): micros stay below 2^53 — the scaled product rounds exactly
            let us = (inv.arrival.as_micros() as f64 * factor).round() as u64;
            Invocation {
                arrival: TimePoint::from_micros(us),
                ..inv
            }
        })
        .collect();
    Trace::new(functions, invocations).expect("transform preserves consistency")
}

/// Scales every invocation's execution time by `factor` (Figs. 10 and 20,
/// Table 2). Arrivals are unchanged.
///
/// # Panics
///
/// Panics if `factor` is negative or NaN.
pub fn scale_exec(trace: &Trace, factor: f64) -> Trace {
    let (functions, invocations) = trace.clone().into_parts();
    let invocations = invocations
        .into_iter()
        .map(|inv| Invocation {
            exec: inv.exec.scale(factor),
            ..inv
        })
        .collect();
    Trace::new(functions, invocations).expect("transform preserves consistency")
}

/// Scales every function's cold-start latency by `factor` (Fig. 9).
///
/// # Panics
///
/// Panics if `factor` is negative or NaN.
pub fn scale_cold_start(trace: &Trace, factor: f64) -> Trace {
    let (mut functions, invocations) = trace.clone().into_parts();
    for f in &mut functions {
        f.cold_start = f.cold_start.scale(factor);
    }
    Trace::new(functions, invocations).expect("transform preserves consistency")
}

/// Keeps only invocations of the given functions (and their profiles),
/// the way the paper samples 330/220 functions from the full traces.
pub fn sample_functions(trace: &Trace, keep: &[FunctionId]) -> Trace {
    // BTreeSet rather than HashSet: only membership is queried today,
    // but a deterministic container keeps any future iteration over the
    // kept set ordered for free (cidre-lint rule O1).
    let keep: BTreeSet<FunctionId> = keep.iter().copied().collect();
    let (functions, invocations) = trace.clone().into_parts();
    let functions = functions
        .into_iter()
        .filter(|f| keep.contains(&f.id))
        .collect();
    let invocations = invocations
        .into_iter()
        .filter(|i| keep.contains(&i.func))
        .collect();
    Trace::new(functions, invocations).expect("transform preserves consistency")
}

/// Keeps only invocations arriving in `[start, end)`, re-basing arrivals
/// so the slice starts at time zero. All profiles are retained.
pub fn slice_time(trace: &Trace, start: TimePoint, end: TimePoint) -> Trace {
    let (functions, invocations) = trace.clone().into_parts();
    let invocations = invocations
        .into_iter()
        .filter(|i| i.arrival >= start && i.arrival < end)
        .map(|i| Invocation {
            arrival: TimePoint::ZERO + (i.arrival - start),
            ..i
        })
        .collect();
    Trace::new(functions, invocations).expect("transform preserves consistency")
}

/// Merges two traces into one workload, remapping the second trace's
/// function ids past the first's so they never collide. Used to model
/// multi-tenant clusters (§5.2's production pool is "shared with other
/// FC FaaS tenants"): the foreground workload plus a background-tenant
/// trace compete for the same container cache.
pub fn merge(a: &Trace, b: &Trace) -> Trace {
    let offset = a.functions().iter().map(|f| f.id.0 + 1).max().unwrap_or(0);
    let (mut functions, mut invocations) = a.clone().into_parts();
    let (b_functions, b_invocations) = b.clone().into_parts();
    functions.extend(b_functions.into_iter().map(|mut f| {
        f.id = FunctionId(f.id.0 + offset);
        f
    }));
    invocations.extend(b_invocations.into_iter().map(|mut i| {
        i.func = FunctionId(i.func.0 + offset);
        i
    }));
    Trace::new(functions, invocations).expect("disjoint ids preserve consistency")
}

/// Truncates the trace to at most `n` earliest invocations (profiles
/// retained), handy for `--quick` experiment modes.
pub fn take_first(trace: &Trace, n: usize) -> Trace {
    let (functions, mut invocations) = trace.clone().into_parts();
    invocations.truncate(n);
    Trace::new(functions, invocations).expect("transform preserves consistency")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FunctionProfile;

    fn base() -> Trace {
        let fs = vec![
            FunctionProfile::new(FunctionId(0), "a", 128, TimeDelta::from_millis(100)),
            FunctionProfile::new(FunctionId(1), "b", 256, TimeDelta::from_millis(300)),
        ];
        let invs = vec![
            Invocation {
                func: FunctionId(0),
                arrival: TimePoint::from_millis(10),
                exec: TimeDelta::from_millis(4),
            },
            Invocation {
                func: FunctionId(1),
                arrival: TimePoint::from_millis(30),
                exec: TimeDelta::from_millis(8),
            },
        ];
        Trace::new(fs, invs).expect("valid")
    }

    #[test]
    fn iat_scaling_scales_gaps() {
        let t = scale_iat(&base(), 2.0);
        let a: Vec<u64> = t
            .invocations()
            .iter()
            .map(|i| i.arrival.as_micros())
            .collect();
        assert_eq!(a, vec![20_000, 60_000]);
        // Exec unchanged.
        assert_eq!(t.invocations()[0].exec, TimeDelta::from_millis(4));
    }

    #[test]
    fn iat_scale_half_compresses() {
        let t = scale_iat(&base(), 0.5);
        assert_eq!(t.invocations()[0].arrival, TimePoint::from_millis(5));
    }

    #[test]
    fn exec_scaling_leaves_arrivals() {
        let t = scale_exec(&base(), 1.5);
        assert_eq!(t.invocations()[0].exec, TimeDelta::from_millis(6));
        assert_eq!(t.invocations()[0].arrival, TimePoint::from_millis(10));
    }

    #[test]
    fn cold_scaling_changes_profiles_only() {
        let t = scale_cold_start(&base(), 0.25);
        assert_eq!(
            t.function(FunctionId(1)).expect("present").cold_start,
            TimeDelta::from_millis(75)
        );
        assert_eq!(t.invocations(), base().invocations());
    }

    #[test]
    fn sampling_drops_other_functions() {
        let t = sample_functions(&base(), &[FunctionId(1)]);
        assert_eq!(t.functions().len(), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.invocations()[0].func, FunctionId(1));
    }

    #[test]
    fn slicing_rebases_time() {
        let t = slice_time(
            &base(),
            TimePoint::from_millis(20),
            TimePoint::from_millis(40),
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.invocations()[0].arrival, TimePoint::from_millis(10));
    }

    #[test]
    fn slice_excludes_end() {
        let t = slice_time(
            &base(),
            TimePoint::from_millis(10),
            TimePoint::from_millis(30),
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.invocations()[0].func, FunctionId(0));
    }

    #[test]
    fn take_first_truncates() {
        let t = take_first(&base(), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.functions().len(), 2);
        assert_eq!(take_first(&base(), 10).len(), 2);
    }

    #[test]
    fn merge_remaps_and_preserves_everything() {
        let merged = merge(&base(), &base());
        assert_eq!(merged.functions().len(), 4);
        assert_eq!(merged.len(), 4);
        // The second copy's ids are shifted past the first's.
        assert!(merged.function(FunctionId(2)).is_some());
        assert!(merged.function(FunctionId(3)).is_some());
        // Same arrival stream, duplicated.
        let at_10ms = merged
            .invocations()
            .iter()
            .filter(|i| i.arrival == TimePoint::from_millis(10))
            .count();
        assert_eq!(at_10ms, 2);
    }

    #[test]
    fn merge_with_empty_is_identity_modulo_profiles() {
        let merged = merge(&base(), &Trace::default());
        assert_eq!(merged.len(), base().len());
        assert_eq!(merged.functions().len(), 2);
    }

    #[test]
    fn zero_iat_factor_collapses_arrivals() {
        let t = scale_iat(&base(), 0.0);
        assert!(t.invocations().iter().all(|i| i.arrival == TimePoint::ZERO));
    }
}
