//! FaaS workload traces for the CIDRE reproduction.
//!
//! The paper evaluates CIDRE on two production traces (Azure Functions and
//! Alibaba Cloud Function Compute, Table 1) that are not publicly
//! redistributable at the fidelity the experiments need. This crate
//! provides:
//!
//! * a trace **model** ([`Trace`], [`FunctionProfile`], [`Invocation`])
//!   shared with the simulator,
//! * seeded **synthetic generators** ([`gen::azure`], [`gen::fc`],
//!   [`gen::SyntheticWorkload`]) that reproduce the published marginals the
//!   policies are sensitive to — Zipf function popularity, bursty
//!   concurrency (Fig. 3), lognormal execution times with ≈25% variance
//!   (§2.6), memory-proportional cold-start latency (§2.2),
//! * **transforms** used by the sensitivity studies ([`transform`]):
//!   inter-arrival-time scaling (Fig. 19), execution-time scaling
//!   (Figs. 10, 20), cold-start scaling (Fig. 9), sampling and slicing,
//! * **statistics** ([`stats`]) reproducing Table 1 and Figs. 2–3, and
//! * plain-text **serialisation** ([`io`]).
//!
//! # Examples
//!
//! ```
//! use faas_trace::gen;
//!
//! let trace = gen::azure(42).functions(20).minutes(2).build();
//! assert!(trace.invocations().len() > 100);
//! let stats = faas_trace::stats::TraceStats::compute(&trace);
//! assert!(stats.rps_avg > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod io;
mod model;
pub mod stats;
mod time;
pub mod transform;

pub use model::{FunctionId, FunctionProfile, Invocation, Trace, TraceError};
pub use time::{TimeDelta, TimePoint};
