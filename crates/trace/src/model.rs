//! The trace data model: functions, invocations, and whole traces.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::{TimeDelta, TimePoint};

/// Identifier of a deployed serverless function within one trace.
///
/// # Examples
///
/// ```
/// use faas_trace::FunctionId;
/// let f = FunctionId(7);
/// assert_eq!(f.to_string(), "fn7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FunctionId(pub u32);

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// Static properties of a deployed function: memory footprint and
/// cold-start provisioning latency.
///
/// The cold start covers image download, runtime initialisation, and code
/// loading (§2.2); per the paper's methodology it scales with the memory
/// footprint at roughly 1–3 ms/MB.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionProfile {
    /// Trace-unique identifier.
    pub id: FunctionId,
    /// Human-readable label (e.g. the benchmark app the function models).
    pub name: String,
    /// Container memory footprint in MB; also the request's memory demand.
    pub mem_mb: u32,
    /// Latency to provision a fresh container for this function.
    pub cold_start: TimeDelta,
}

impl FunctionProfile {
    /// Convenience constructor.
    pub fn new(
        id: FunctionId,
        name: impl Into<String>,
        mem_mb: u32,
        cold_start: TimeDelta,
    ) -> Self {
        Self {
            id,
            name: name.into(),
            mem_mb,
            cold_start,
        }
    }
}

/// One invocation request in a trace: which function, when it arrives, and
/// how long it executes once it has a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invocation {
    /// The invoked function.
    pub func: FunctionId,
    /// Arrival time of the request.
    pub arrival: TimePoint,
    /// Pure execution time once running (excludes all queueing and
    /// provisioning overhead, which the policies determine).
    pub exec: TimeDelta,
}

/// Error produced when assembling an inconsistent [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// An invocation references a function with no profile.
    UnknownFunction(FunctionId),
    /// Two profiles share the same [`FunctionId`].
    DuplicateFunction(FunctionId),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnknownFunction(id) => {
                write!(f, "invocation references unknown function {id}")
            }
            TraceError::DuplicateFunction(id) => write!(f, "duplicate function profile {id}"),
        }
    }
}

impl Error for TraceError {}

/// A complete workload trace: a set of function profiles plus a stream of
/// invocations sorted by arrival time.
///
/// # Examples
///
/// ```
/// use faas_trace::{FunctionId, FunctionProfile, Invocation, Trace, TimeDelta, TimePoint};
///
/// let f = FunctionProfile::new(FunctionId(0), "hello", 128, TimeDelta::from_millis(250));
/// let inv = Invocation {
///     func: FunctionId(0),
///     arrival: TimePoint::ZERO,
///     exec: TimeDelta::from_millis(10),
/// };
/// let trace = Trace::new(vec![f], vec![inv])?;
/// assert_eq!(trace.invocations().len(), 1);
/// # Ok::<(), faas_trace::TraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    functions: Vec<FunctionProfile>,
    invocations: Vec<Invocation>,
    index: HashMap<FunctionId, usize>,
}

impl Trace {
    /// Assembles a trace, sorting invocations by `(arrival, func)`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::DuplicateFunction`] if two profiles share an
    /// id, or [`TraceError::UnknownFunction`] if an invocation references
    /// a function that has no profile.
    pub fn new(
        functions: Vec<FunctionProfile>,
        mut invocations: Vec<Invocation>,
    ) -> Result<Self, TraceError> {
        let mut index = HashMap::with_capacity(functions.len());
        for (i, f) in functions.iter().enumerate() {
            if index.insert(f.id, i).is_some() {
                return Err(TraceError::DuplicateFunction(f.id));
            }
        }
        for inv in &invocations {
            if !index.contains_key(&inv.func) {
                return Err(TraceError::UnknownFunction(inv.func));
            }
        }
        invocations.sort_by_key(|inv| (inv.arrival, inv.func));
        Ok(Self {
            functions,
            invocations,
            index,
        })
    }

    /// All function profiles.
    pub fn functions(&self) -> &[FunctionProfile] {
        &self.functions
    }

    /// All invocations, sorted by arrival time.
    pub fn invocations(&self) -> &[Invocation] {
        &self.invocations
    }

    /// Looks up a function profile by id.
    pub fn function(&self, id: FunctionId) -> Option<&FunctionProfile> {
        self.index.get(&id).map(|&i| &self.functions[i])
    }

    /// The arrival time of the last invocation (the trace makespan), or
    /// zero for an empty trace.
    pub fn duration(&self) -> TimeDelta {
        self.invocations
            .last()
            .map(|inv| inv.arrival.saturating_since(TimePoint::ZERO))
            .unwrap_or(TimeDelta::ZERO)
    }

    /// Total number of invocations.
    pub fn len(&self) -> usize {
        self.invocations.len()
    }

    /// Whether the trace has no invocations.
    pub fn is_empty(&self) -> bool {
        self.invocations.is_empty()
    }

    /// Decomposes the trace into its parts (profiles, invocations).
    pub fn into_parts(self) -> (Vec<FunctionProfile>, Vec<Invocation>) {
        (self.functions, self.invocations)
    }

    /// Per-function invocation counts.
    pub fn invocation_counts(&self) -> HashMap<FunctionId, u64> {
        let mut counts = HashMap::new();
        for inv in &self.invocations {
            *counts.entry(inv.func).or_insert(0) += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prof(id: u32) -> FunctionProfile {
        FunctionProfile::new(
            FunctionId(id),
            format!("f{id}"),
            128,
            TimeDelta::from_millis(100),
        )
    }

    fn inv(id: u32, at_ms: u64) -> Invocation {
        Invocation {
            func: FunctionId(id),
            arrival: TimePoint::from_millis(at_ms),
            exec: TimeDelta::from_millis(5),
        }
    }

    #[test]
    fn sorts_invocations() {
        let t = Trace::new(vec![prof(0)], vec![inv(0, 30), inv(0, 10), inv(0, 20)]).expect("valid");
        let arrivals: Vec<u64> = t
            .invocations()
            .iter()
            .map(|i| i.arrival.as_micros())
            .collect();
        assert_eq!(arrivals, vec![10_000, 20_000, 30_000]);
    }

    #[test]
    fn rejects_unknown_function() {
        let err = Trace::new(vec![prof(0)], vec![inv(1, 0)]).expect_err("invalid");
        assert_eq!(err, TraceError::UnknownFunction(FunctionId(1)));
        assert!(err.to_string().contains("fn1"));
    }

    #[test]
    fn rejects_duplicate_profiles() {
        let err = Trace::new(vec![prof(0), prof(0)], vec![]).expect_err("invalid");
        assert_eq!(err, TraceError::DuplicateFunction(FunctionId(0)));
    }

    #[test]
    fn lookup_and_duration() {
        let t = Trace::new(vec![prof(0), prof(1)], vec![inv(1, 500)]).expect("valid");
        assert_eq!(t.function(FunctionId(1)).expect("present").name, "f1");
        assert_eq!(t.function(FunctionId(9)), None);
        assert_eq!(t.duration(), TimeDelta::from_millis(500));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.duration(), TimeDelta::ZERO);
    }

    #[test]
    fn counts_per_function() {
        let t = Trace::new(
            vec![prof(0), prof(1)],
            vec![inv(0, 0), inv(0, 1), inv(1, 2)],
        )
        .expect("valid");
        let counts = t.invocation_counts();
        assert_eq!(counts[&FunctionId(0)], 2);
        assert_eq!(counts[&FunctionId(1)], 1);
    }
}
