//! Property tests for the synthetic workload generators and transforms.

use faas_trace::{gen, io, stats, transform, TimeDelta, TimePoint};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generation_is_deterministic(seed in 0u64..1_000, funcs in 1usize..30) {
        let a = gen::SyntheticWorkload::new(seed).functions(funcs).minutes(1).build();
        let b = gen::SyntheticWorkload::new(seed).functions(funcs).minutes(1).build();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn arrivals_stay_within_duration(seed in 0u64..1_000, minutes in 1u64..4) {
        let trace = gen::fc(seed).functions(8).minutes(minutes).build();
        let dur = TimeDelta::from_minutes(minutes);
        for inv in trace.invocations() {
            prop_assert!(inv.arrival.saturating_since(TimePoint::ZERO) <= dur);
            prop_assert!(inv.exec > TimeDelta::ZERO);
        }
    }

    #[test]
    fn profiles_are_consistent(seed in 0u64..1_000) {
        let trace = gen::azure(seed).functions(15).minutes(1).build();
        prop_assert_eq!(trace.functions().len(), 15);
        for f in trace.functions() {
            prop_assert!(f.mem_mb >= 128 && f.mem_mb <= 1536);
            prop_assert!(f.cold_start > TimeDelta::ZERO);
        }
        // Every invocation resolves to a profile.
        for inv in trace.invocations() {
            prop_assert!(trace.function(inv.func).is_some());
        }
    }

    #[test]
    fn io_round_trip(seed in 0u64..500) {
        let trace = gen::fc(seed).functions(5).minutes(1).build();
        let text = io::to_string(&trace);
        let back = io::from_str(&text).expect("round trip parses");
        prop_assert_eq!(trace, back);
    }

    #[test]
    fn iat_scaling_scales_duration(seed in 0u64..500, factor in 0.25f64..3.0) {
        let trace = gen::azure(seed).functions(6).minutes(1).build();
        prop_assume!(!trace.is_empty());
        let scaled = transform::scale_iat(&trace, factor);
        let expected = trace.duration().as_micros() as f64 * factor;
        let got = scaled.duration().as_micros() as f64;
        prop_assert!((got - expected).abs() <= 1.0, "expected {expected}, got {got}");
    }

    #[test]
    fn table1_stats_are_internally_consistent(seed in 0u64..500) {
        let trace = gen::fc(seed).functions(10).minutes(2).build();
        let s = stats::TraceStats::compute(&trace);
        prop_assert_eq!(s.invocations as usize, trace.len());
        prop_assert!(s.rps_min <= s.rps_avg + 1e-9);
        prop_assert!(s.rps_avg <= s.rps_max + 1e-9);
        prop_assert!(s.gbps_min <= s.gbps_avg + 1e-9);
        prop_assert!(s.gbps_avg <= s.gbps_max + 1e-9);
        // Average rate times duration recovers the request count.
        let recovered = s.rps_avg * s.duration_secs.ceil();
        prop_assert!((recovered - s.invocations as f64).abs() < 1.0);
    }

    #[test]
    fn concurrency_cdf_counts_every_active_function(seed in 0u64..500) {
        let trace = gen::azure(seed).functions(12).minutes(1).build();
        let active = trace.invocation_counts().len();
        prop_assert_eq!(stats::concurrency_cdf(&trace).len(), active);
    }
}
