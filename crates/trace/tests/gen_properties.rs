//! Property tests for the synthetic workload generators and transforms,
//! on the hermetic `faas-testkit` runner.

use faas_testkit::Checker;
use faas_trace::{gen, io, stats, transform, TimeDelta, TimePoint};

/// 24-case checker persisting failing seeds next to this file.
fn checker(name: &str) -> Checker {
    Checker::new(name).cases(24).regressions_file(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/gen_properties.testkit-regressions"
    ))
}

#[test]
fn generation_is_deterministic() {
    checker("generation_is_deterministic").run(|g| {
        let seed = g.u64(0..1_000);
        let funcs = g.usize(1..30);
        let a = gen::SyntheticWorkload::new(seed)
            .functions(funcs)
            .minutes(1)
            .build();
        let b = gen::SyntheticWorkload::new(seed)
            .functions(funcs)
            .minutes(1)
            .build();
        assert_eq!(a, b);
    });
}

#[test]
fn arrivals_stay_within_duration() {
    checker("arrivals_stay_within_duration").run(|g| {
        let seed = g.u64(0..1_000);
        let minutes = g.u64(1..4);
        let trace = gen::fc(seed).functions(8).minutes(minutes).build();
        let dur = TimeDelta::from_minutes(minutes);
        for inv in trace.invocations() {
            assert!(inv.arrival.saturating_since(TimePoint::ZERO) <= dur);
            assert!(inv.exec > TimeDelta::ZERO);
        }
    });
}

#[test]
fn profiles_are_consistent() {
    checker("profiles_are_consistent").run(|g| {
        let seed = g.u64(0..1_000);
        let trace = gen::azure(seed).functions(15).minutes(1).build();
        assert_eq!(trace.functions().len(), 15);
        for f in trace.functions() {
            assert!(f.mem_mb >= 128 && f.mem_mb <= 1536);
            assert!(f.cold_start > TimeDelta::ZERO);
        }
        // Every invocation resolves to a profile.
        for inv in trace.invocations() {
            assert!(trace.function(inv.func).is_some());
        }
    });
}

#[test]
fn io_round_trip() {
    checker("io_round_trip").run(|g| {
        let seed = g.u64(0..500);
        let trace = gen::fc(seed).functions(5).minutes(1).build();
        let text = io::to_string(&trace);
        let back = io::from_str(&text).expect("round trip parses");
        assert_eq!(trace, back);
    });
}

#[test]
fn iat_scaling_scales_duration() {
    checker("iat_scaling_scales_duration").run(|g| {
        let seed = g.u64(0..500);
        let factor = g.f64(0.25..3.0);
        let trace = gen::azure(seed).functions(6).minutes(1).build();
        if trace.is_empty() {
            return;
        }
        let scaled = transform::scale_iat(&trace, factor);
        let expected = trace.duration().as_micros() as f64 * factor;
        let got = scaled.duration().as_micros() as f64;
        assert!(
            (got - expected).abs() <= 1.0,
            "expected {expected}, got {got}"
        );
    });
}

#[test]
fn table1_stats_are_internally_consistent() {
    checker("table1_stats_are_internally_consistent").run(|g| {
        let seed = g.u64(0..500);
        let trace = gen::fc(seed).functions(10).minutes(2).build();
        let s = stats::TraceStats::compute(&trace);
        assert_eq!(s.invocations as usize, trace.len());
        assert!(s.rps_min <= s.rps_avg + 1e-9);
        assert!(s.rps_avg <= s.rps_max + 1e-9);
        assert!(s.gbps_min <= s.gbps_avg + 1e-9);
        assert!(s.gbps_avg <= s.gbps_max + 1e-9);
        // Average rate times duration recovers the request count.
        let recovered = s.rps_avg * s.duration_secs.ceil();
        assert!((recovered - s.invocations as f64).abs() < 1.0);
    });
}

#[test]
fn concurrency_cdf_counts_every_active_function() {
    checker("concurrency_cdf_counts_every_active_function").run(|g| {
        let seed = g.u64(0..500);
        let trace = gen::azure(seed).functions(12).minutes(1).build();
        let active = trace.invocation_counts().len();
        assert_eq!(stats::concurrency_cdf(&trace).len(), active);
    });
}
