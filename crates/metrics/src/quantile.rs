//! Streaming quantile estimation (the P² algorithm).

/// A constant-memory streaming estimator of a single quantile, using the
/// P² algorithm (Jain & Chlamtac, 1985).
///
/// Large simulator runs produce tens of millions of latency samples;
/// storing them all to compute one p99 is wasteful. `P2Quantile` keeps
/// five markers and adjusts them with parabolic interpolation as samples
/// stream in, giving an estimate typically within a fraction of a percent
/// of the exact quantile for smooth distributions.
///
/// For small sample counts (below five) the estimator falls back to the
/// exact order statistic.
///
/// # Examples
///
/// ```
/// use faas_metrics::P2Quantile;
///
/// let mut p90 = P2Quantile::new(0.9);
/// for i in 1..=1_000 {
///     p90.record(i as f64);
/// }
/// let est = p90.estimate().expect("has samples");
/// assert!((est - 900.0).abs() < 20.0, "estimate {est}");
/// ```
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (the five tracked order statistics).
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not strictly between 0 and 1.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile {q} must be in (0, 1)");
        Self {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The configured quantile.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN sample");
        if self.count < 5 {
            self.heights[self.count as usize] = value;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;

        // Find the cell k such that heights[k] <= value < heights[k+1],
        // extending extremes when needed.
        let k = if value < self.heights[0] {
            self.heights[0] = value;
            0
        } else if value >= self.heights[4] {
            self.heights[4] = value;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.heights[i] <= value && value < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust the three middle markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d_sign = d.signum();
                let candidate = self.parabolic(i, d_sign);
                let new_height =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d_sign)
                    };
                self.heights[i] = new_height;
                self.positions[i] += d_sign;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (n_prev, n, n_next) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        let (h_prev, h, h_next) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        h + d / (n_next - n_prev)
            * ((n - n_prev + d) * (h_next - h) / (n_next - n)
                + (n_next - n - d) * (h - h_prev) / (n - n_prev))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current quantile estimate, or `None` before any sample.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n if n < 5 => {
                // Exact order statistic on the partial buffer.
                let mut buf: Vec<f64> = self.heights[..n as usize].to_vec();
                buf.sort_by(f64::total_cmp);
                Some(crate::percentile(&buf, self.q * 100.0))
            }
            _ => Some(self.heights[2]),
        }
    }
}

impl Extend<f64> for P2Quantile {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_estimate() {
        assert_eq!(P2Quantile::new(0.5).estimate(), None);
    }

    #[test]
    fn small_counts_are_exact() {
        let mut p50 = P2Quantile::new(0.5);
        p50.record(10.0);
        assert_eq!(p50.estimate(), Some(10.0));
        p50.record(20.0);
        assert_eq!(p50.estimate(), Some(15.0));
        p50.record(30.0);
        assert_eq!(p50.estimate(), Some(20.0));
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut p50 = P2Quantile::new(0.5);
        for i in 0..10_000 {
            // Scramble order deterministically.
            let v = ((i * 7919) % 10_000) as f64;
            p50.record(v);
        }
        let est = p50.estimate().expect("has samples");
        assert!((est - 5_000.0).abs() < 250.0, "median estimate {est}");
    }

    #[test]
    fn p99_of_heavy_tail() {
        // Exponential-ish tail via deterministic inverse CDF sampling.
        let mut p99 = P2Quantile::new(0.99);
        let n: u64 = 50_000;
        for i in 0..n {
            let u = ((i * 104_729) % n) as f64 / n as f64;
            let v = -(1.0 - u).max(1e-12).ln(); // Exp(1)
            p99.record(v);
        }
        let est = p99.estimate().expect("has samples");
        let exact = -(0.01f64).ln(); // ≈ 4.605
        assert!(
            (est - exact).abs() / exact < 0.15,
            "p99 estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn tracks_min_and_max_markers() {
        let mut p50 = P2Quantile::new(0.5);
        for v in [5.0, 5.0, 5.0, 5.0, 5.0, 1.0, 9.0] {
            p50.record(v);
        }
        assert_eq!(p50.count(), 7);
        let est = p50.estimate().expect("has samples");
        assert!((1.0..=9.0).contains(&est));
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1)")]
    fn rejects_out_of_range_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        P2Quantile::new(0.5).record(f64::NAN);
    }

    #[test]
    fn extend_records_all() {
        let mut p = P2Quantile::new(0.5);
        p.extend((0..100).map(f64::from));
        assert_eq!(p.count(), 100);
    }
}
