//! Pareto-frontier marking for latency-vs-cost trade-off sweeps.
//!
//! The `experiments pareto` sweep plots every policy configuration as a
//! point with a latency objective (average overhead ratio) and a cost
//! objective (GB-seconds per served request), both minimized. A point
//! is on the frontier iff no other point is at least as good on both
//! axes and strictly better on one. Ties are handled conservatively:
//! duplicate points dominate each other, so co-located points are all
//! kept on the frontier.

/// One candidate configuration in a latency-vs-cost sweep.
///
/// Both objectives are minimized. `label` identifies the configuration
/// in the emitted CSV and is not used for dominance.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Configuration label (e.g. a policy-stack name).
    pub label: String,
    /// Latency objective, minimized (e.g. average overhead ratio).
    pub latency: f64,
    /// Cost objective, minimized (e.g. GB-seconds per request).
    pub cost: f64,
}

impl ParetoPoint {
    /// Whether `self` strictly dominates `other`: at least as good on
    /// both minimized axes and strictly better on one. NaN objectives
    /// never dominate and are never dominated (all comparisons fail),
    /// so malformed points fall out as trivial frontier members rather
    /// than silently deleting their neighbours.
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        self.latency <= other.latency
            && self.cost <= other.cost
            && (self.latency < other.latency || self.cost < other.cost)
    }
}

/// Marks each point's frontier membership: `true` iff no other point in
/// `points` strictly dominates it. Returns flags in input order, so
/// callers can zip them against their rows without re-sorting — the
/// output order (and therefore the emitted CSV) never depends on the
/// comparison results. O(n²), which is fine for policy-grid sizes.
pub fn pareto_frontier(points: &[ParetoPoint]) -> Vec<bool> {
    points
        .iter()
        .map(|p| !points.iter().any(|q| q.dominates(p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(label: &str, latency: f64, cost: f64) -> ParetoPoint {
        ParetoPoint {
            label: label.into(),
            latency,
            cost,
        }
    }

    #[test]
    fn dominance_requires_strict_improvement_somewhere() {
        let a = pt("a", 1.0, 1.0);
        let b = pt("b", 1.0, 1.0);
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(pt("c", 1.0, 0.5).dominates(&a));
        assert!(pt("d", 0.5, 1.0).dominates(&a));
        assert!(!pt("e", 0.5, 2.0).dominates(&a));
    }

    #[test]
    fn frontier_keeps_non_dominated_points() {
        // Classic staircase: (1,4) (2,2) (4,1) on the frontier,
        // (3,3) dominated by (2,2), (5,5) dominated by everyone.
        let pts = vec![
            pt("a", 1.0, 4.0),
            pt("b", 3.0, 3.0),
            pt("c", 2.0, 2.0),
            pt("d", 5.0, 5.0),
            pt("e", 4.0, 1.0),
        ];
        assert_eq!(pareto_frontier(&pts), vec![true, false, true, false, true]);
    }

    #[test]
    fn duplicates_survive_together() {
        let pts = vec![pt("a", 1.0, 1.0), pt("b", 1.0, 1.0), pt("c", 2.0, 2.0)];
        assert_eq!(pareto_frontier(&pts), vec![true, true, false]);
    }

    #[test]
    fn nan_points_neither_dominate_nor_die() {
        let pts = vec![pt("a", f64::NAN, 1.0), pt("b", 1.0, 1.0)];
        assert_eq!(pareto_frontier(&pts), vec![true, true]);
    }

    #[test]
    fn single_point_is_frontier() {
        assert_eq!(pareto_frontier(&[pt("a", 9.0, 9.0)]), vec![true]);
        assert!(pareto_frontier(&[]).is_empty());
    }
}
