//! Online (streaming) summary statistics.

use std::fmt;

/// Streaming summary of a sequence of observations: count, mean, variance
/// (Welford's algorithm), min, and max. Constant memory, single pass.
///
/// # Examples
///
/// ```
/// use faas_metrics::Summary;
///
/// let mut s = Summary::new();
/// for v in [2.0, 4.0, 6.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.min(), Some(2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a summary from an iterator of observations.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut s = Self::new();
        s.extend(samples);
        s
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` when no observations were recorded.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }

    /// Population variance; `0.0` with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (`std_dev / mean`); `0.0` if the mean is 0.
    ///
    /// §2.6 of the paper reports most functions having execution-time
    /// variance around 25% — this is the statistic it refers to.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean.abs()
        }
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one, as if all of its observations
    /// had been recorded here.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self::from_samples(iter)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean,
            self.std_dev(),
            self.min().unwrap_or(f64::NAN),
            self.max().unwrap_or(f64::NAN),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn welford_matches_naive() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::from_samples(data);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let data = [1.0, 5.0, 2.0, 8.0, 3.0, 3.0];
        let (a_data, b_data) = data.split_at(2);
        let mut a = Summary::from_samples(a_data.iter().copied());
        let b = Summary::from_samples(b_data.iter().copied());
        a.merge(&b);
        let all = Summary::from_samples(data);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-12);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::from_samples([1.0, 2.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);

        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn cv_of_constant_is_zero() {
        let s = Summary::from_samples([3.0, 3.0, 3.0]);
        assert_eq!(s.coefficient_of_variation(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Summary::from_samples([1.0])).is_empty());
    }
}
