//! Terminal-friendly line charts for CDFs and series.

use std::fmt;

use crate::Cdf;

/// A minimal ASCII line chart used by the experiment harness to sketch
/// the paper's CDF figures directly in the terminal.
///
/// Each named series is a list of `(x, y)` points; the chart scales all
/// series into a shared frame and draws one glyph per series.
///
/// # Examples
///
/// ```
/// use faas_metrics::AsciiChart;
///
/// let mut chart = AsciiChart::new(40, 10);
/// chart.series("linear", (0..10).map(|i| (i as f64, i as f64)).collect());
/// let drawing = chart.to_string();
/// assert!(drawing.contains("linear"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

const GLYPHS: [char; 8] = ['*', '+', 'o', 'x', '#', '@', '%', '&'];

impl AsciiChart {
    /// Creates an empty chart with the given plot-area size in characters.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "chart dimensions must be positive");
        Self {
            width,
            height,
            series: Vec::new(),
        }
    }

    /// Adds a named series of `(x, y)` points.
    pub fn series(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) -> &mut Self {
        self.series.push((name.into(), points));
        self
    }

    /// Convenience: adds a CDF as a series of `n` plot points.
    pub fn cdf(&mut self, name: impl Into<String>, cdf: &Cdf, n: usize) -> &mut Self {
        self.series(name, cdf.plot_points(n))
    }

    fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let mut it = self.series.iter().flat_map(|(_, pts)| pts.iter().copied());
        let first = it.next()?;
        let mut b = (first.0, first.0, first.1, first.1);
        for (x, y) in it {
            b.0 = b.0.min(x);
            b.1 = b.1.max(x);
            b.2 = b.2.min(y);
            b.3 = b.3.max(y);
        }
        Some(b)
    }
}

impl fmt::Display for AsciiChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let Some((xmin, xmax, ymin, ymax)) = self.bounds() else {
            return writeln!(f, "(empty chart)");
        };
        let xspan = if xmax > xmin { xmax - xmin } else { 1.0 };
        let yspan = if ymax > ymin { ymax - ymin } else { 1.0 };
        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, (_, pts)) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(x, y) in pts {
                let cx = (((x - xmin) / xspan) * (self.width - 1) as f64).round() as usize;
                let cy = (((y - ymin) / yspan) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy.min(self.height - 1);
                grid[row][cx.min(self.width - 1)] = glyph;
            }
        }
        writeln!(f, "{ymax:>10.3} +")?;
        for row in &grid {
            let line: String = row.iter().collect();
            writeln!(f, "{:>10} |{line}", "")?;
        }
        writeln!(f, "{ymin:>10.3} +{}", "-".repeat(self.width))?;
        writeln!(
            f,
            "{:>11}{xmin:<12.3}{:>w$}{xmax:.3}",
            "",
            "",
            w = self.width.saturating_sub(24)
        )?;
        for (si, (name, _)) in self.series.iter().enumerate() {
            writeln!(f, "{:>12} {} = {}", "", GLYPHS[si % GLYPHS.len()], name)?;
        }
        Ok(())
    }
}

/// A horizontal stacked-bar chart for latency waterfalls: each row is a
/// labeled bar whose segments (queue, provisioning, retry, execution…)
/// are drawn with distinct glyphs, scaled into a shared frame so rows
/// are comparable at a glance.
///
/// # Examples
///
/// ```
/// use faas_metrics::AsciiWaterfall;
///
/// let mut wf = AsciiWaterfall::new(40, vec!["queue".into(), "exec".into()]);
/// wf.row("cold", vec![12.0, 30.0]);
/// wf.row("warm", vec![0.5, 30.0]);
/// let drawing = wf.to_string();
/// assert!(drawing.contains("cold"));
/// assert!(drawing.contains("queue"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiWaterfall {
    width: usize,
    segments: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl AsciiWaterfall {
    /// Creates an empty waterfall with the given bar width in
    /// characters and the segment names shared by every row.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `segments` is empty.
    pub fn new(width: usize, segments: Vec<String>) -> Self {
        assert!(width > 0, "waterfall width must be positive");
        assert!(!segments.is_empty(), "waterfall needs at least one segment");
        Self {
            width,
            segments,
            rows: Vec::new(),
        }
    }

    /// Adds a labeled bar; `values` holds one magnitude per segment
    /// (missing trailing segments are treated as zero).
    pub fn row(&mut self, label: impl Into<String>, values: Vec<f64>) -> &mut Self {
        self.rows.push((label.into(), values));
        self
    }
}

impl fmt::Display for AsciiWaterfall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = |values: &[f64]| -> f64 { values.iter().filter(|v| v.is_finite()).sum() };
        let max_total = self
            .rows
            .iter()
            .map(|(_, v)| total(v))
            .fold(0.0f64, f64::max);
        if self.rows.is_empty() || max_total <= 0.0 {
            return writeln!(f, "(empty waterfall)");
        }
        let label_w = self.rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, values) in &self.rows {
            let mut bar = String::with_capacity(self.width);
            for (si, &v) in values.iter().enumerate().take(self.segments.len()) {
                if !v.is_finite() || v <= 0.0 {
                    continue;
                }
                let cells = ((v / max_total) * self.width as f64).round() as usize;
                let glyph = GLYPHS[si % GLYPHS.len()];
                bar.extend(std::iter::repeat_n(glyph, cells));
            }
            bar.truncate(self.width);
            writeln!(
                f,
                "{label:>label_w$} |{bar:<width$}| {:.3}",
                total(values),
                width = self.width
            )?;
        }
        let legend: Vec<String> = self
            .segments
            .iter()
            .enumerate()
            .map(|(si, name)| format!("{} = {name}", GLYPHS[si % GLYPHS.len()]))
            .collect();
        writeln!(f, "{:>label_w$}  {}", "", legend.join("  "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_chart_renders_placeholder() {
        let chart = AsciiChart::new(10, 5);
        assert!(chart.to_string().contains("empty"));
    }

    #[test]
    fn chart_contains_glyphs_and_legend() {
        let mut chart = AsciiChart::new(20, 5);
        chart.series("up", vec![(0.0, 0.0), (1.0, 1.0)]);
        chart.series("down", vec![(0.0, 1.0), (1.0, 0.0)]);
        let s = chart.to_string();
        assert!(s.contains('*'));
        assert!(s.contains('+'));
        assert!(s.contains("up"));
        assert!(s.contains("down"));
    }

    #[test]
    fn single_point_series() {
        let mut chart = AsciiChart::new(8, 3);
        chart.series("dot", vec![(5.0, 5.0)]);
        // Degenerate bounds must not panic or divide by zero.
        let _ = chart.to_string();
    }

    #[test]
    fn cdf_helper_plots() {
        let cdf = Cdf::from_samples((0..50).map(f64::from));
        let mut chart = AsciiChart::new(30, 8);
        chart.cdf("cdf", &cdf, 30);
        assert!(chart.to_string().contains("cdf"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        let _ = AsciiChart::new(0, 5);
    }

    #[test]
    fn waterfall_scales_rows_and_lists_legend() {
        let mut wf = AsciiWaterfall::new(20, vec!["queue".into(), "exec".into()]);
        wf.row("cold", vec![10.0, 10.0]);
        wf.row("warm", vec![0.0, 10.0]);
        let s = wf.to_string();
        assert!(s.contains("cold"));
        assert!(s.contains("* = queue"));
        assert!(s.contains("+ = exec"));
        // The cold row (total 20) fills the frame; warm (total 10) is
        // about half as long.
        let cold_len = s
            .lines()
            .find(|l| l.contains("cold"))
            .map(|l| l.chars().filter(|&c| c == '*' || c == '+').count())
            .unwrap_or(0);
        let warm_len = s
            .lines()
            .find(|l| l.contains("warm"))
            .map(|l| l.chars().filter(|&c| c == '+').count())
            .unwrap_or(0);
        assert_eq!(cold_len, 20);
        assert_eq!(warm_len, 10);
    }

    #[test]
    fn waterfall_empty_and_nonfinite_rows_render_placeholder() {
        let wf = AsciiWaterfall::new(10, vec!["a".into()]);
        assert!(wf.to_string().contains("empty"));
        let mut nan = AsciiWaterfall::new(10, vec!["a".into()]);
        nan.row("r", vec![f64::NAN]);
        assert!(nan.to_string().contains("empty"));
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn waterfall_requires_segments() {
        let _ = AsciiWaterfall::new(10, Vec::new());
    }
}
