//! Time-based sliding window over scalar observations.

use std::collections::VecDeque;

/// A sliding window of `(timestamp, value)` observations supporting
/// percentile and mean queries over the last `window` time units.
///
/// This is the bookkeeping structure behind CIDRE's conditional
/// speculative scaling: the paper collects `Ti`, `Te`, `Tp`, and `Td`
/// "using a 15-minute sliding window, whose size is configurable" (§3.2),
/// and evaluates window sizes of 5/10/15 minutes and unbounded history
/// (Fig. 18). An unbounded window (`None`) keeps all history.
///
/// Timestamps are opaque `u64` time units and are expected in
/// non-decreasing order; an out-of-order timestamp is clamped to the
/// last-seen one (see [`SlidingWindow::record`]).
///
/// # Examples
///
/// ```
/// use faas_metrics::SlidingWindow;
///
/// let mut w = SlidingWindow::new(Some(100));
/// w.record(0, 10.0);
/// w.record(50, 20.0);
/// w.record(120, 30.0);
/// // At t=140, the observation at t=0 has aged out of the 100-unit window.
/// assert_eq!(w.median(140), Some(25.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingWindow {
    window: Option<u64>,
    entries: VecDeque<(u64, f64)>,
}

impl SlidingWindow {
    /// Creates a window spanning `window` time units, or unbounded history
    /// when `None`.
    pub fn new(window: Option<u64>) -> Self {
        Self {
            window,
            entries: VecDeque::new(),
        }
    }

    /// The configured window span, or `None` when unbounded.
    pub fn span(&self) -> Option<u64> {
        self.window
    }

    /// Records an observation at time `now`.
    ///
    /// Timestamps are expected to be non-decreasing, but wall-clock
    /// callers (e.g. `faas-live`, where scheduler jitter can deliver two
    /// callbacks in the opposite order of their timestamps) may observe
    /// small regressions. An out-of-order `now` is clamped to the most
    /// recently recorded timestamp: the observation is kept (its value
    /// still counts toward the window statistics) and is treated as
    /// having arrived at the clamped time for expiry purposes, so the
    /// window's time axis stays monotone.
    pub fn record(&mut self, now: u64, value: f64) {
        let now = match self.entries.back() {
            Some(&(last, _)) => now.max(last),
            None => now,
        };
        self.entries.push_back((now, value));
        self.expire(now);
    }

    /// Drops observations that are outside the window as of `now`.
    pub fn expire(&mut self, now: u64) {
        if let Some(w) = self.window {
            let cutoff = now.saturating_sub(w);
            while let Some(&(t, _)) = self.entries.front() {
                if t < cutoff {
                    self.entries.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    /// Number of observations currently in the window (as of the last
    /// `record`/`expire` call).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the window currently holds no observations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `p`-th percentile (0–100) of values inside the window as of
    /// `now`, or `None` if the window is empty.
    pub fn percentile(&mut self, now: u64, p: f64) -> Option<f64> {
        self.expire(now);
        if self.entries.is_empty() {
            return None;
        }
        let values: Vec<f64> = self.entries.iter().map(|&(_, v)| v).collect();
        Some(crate::percentile(&values, p))
    }

    /// Median of values inside the window as of `now`.
    pub fn median(&mut self, now: u64) -> Option<f64> {
        self.percentile(now, 50.0)
    }

    /// Mean of values inside the window as of `now`.
    pub fn mean(&mut self, now: u64) -> Option<f64> {
        self.expire(now);
        if self.entries.is_empty() {
            return None;
        }
        Some(self.entries.iter().map(|&(_, v)| v).sum::<f64>() / self.entries.len() as f64)
    }

    /// Most recent observation value, or `None` when empty.
    pub fn last(&self) -> Option<f64> {
        self.entries.back().map(|&(_, v)| v)
    }

    /// Iterates over `(timestamp, value)` pairs currently retained.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_keeps_everything() {
        let mut w = SlidingWindow::new(None);
        for t in 0..1000u64 {
            w.record(t, t as f64);
        }
        assert_eq!(w.len(), 1000);
        assert_eq!(w.median(10_000), Some(499.5));
    }

    #[test]
    fn bounded_expires_old_entries() {
        let mut w = SlidingWindow::new(Some(10));
        w.record(0, 1.0);
        w.record(5, 2.0);
        w.record(20, 3.0);
        // cutoff at 20-10=10: entries at t=0 and t=5 expire.
        assert_eq!(w.len(), 1);
        assert_eq!(w.last(), Some(3.0));
    }

    #[test]
    fn entry_exactly_at_cutoff_is_retained() {
        let mut w = SlidingWindow::new(Some(10));
        w.record(0, 1.0);
        w.record(10, 2.0);
        assert_eq!(w.len(), 2);
        w.expire(11);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn percentile_queries_expire_first() {
        let mut w = SlidingWindow::new(Some(100));
        w.record(0, 1000.0);
        w.record(50, 10.0);
        // At t=200, only... both expired (cutoff 100): t=0 and t=50 both < 100.
        assert_eq!(w.median(200), None);
    }

    #[test]
    fn mean_over_window() {
        let mut w = SlidingWindow::new(Some(1000));
        w.record(0, 2.0);
        w.record(1, 4.0);
        assert_eq!(w.mean(1), Some(3.0));
    }

    #[test]
    fn out_of_order_record_clamps_to_last_seen() {
        // Wall-clock jitter (faas-live) can deliver callbacks slightly out
        // of order; the value must be kept, stamped at the clamped time.
        let mut w = SlidingWindow::new(None);
        w.record(10, 1.0);
        w.record(5, 2.0);
        assert_eq!(w.len(), 2);
        assert_eq!(w.last(), Some(2.0));
        let v: Vec<_> = w.iter().collect();
        assert_eq!(v, vec![(10, 1.0), (10, 2.0)]);
    }

    #[test]
    fn clamped_entry_expires_with_its_clamped_timestamp() {
        let mut w = SlidingWindow::new(Some(10));
        w.record(100, 1.0);
        w.record(95, 2.0); // clamped to t=100
                           // At t=111 the cutoff is 101: both entries (now both at t=100)
                           // expire together rather than the clamped one expiring "early".
        w.expire(110);
        assert_eq!(w.len(), 2);
        w.expire(111);
        assert!(w.is_empty());
    }

    #[test]
    fn iter_yields_pairs() {
        let mut w = SlidingWindow::new(None);
        w.record(1, 10.0);
        w.record(2, 20.0);
        let v: Vec<_> = w.iter().collect();
        assert_eq!(v, vec![(1, 10.0), (2, 20.0)]);
    }
}
