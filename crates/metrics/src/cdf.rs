//! Empirical cumulative distribution functions.

use crate::percentile::percentile_of_sorted;

/// An empirical CDF built from a set of samples.
///
/// Samples are stored sorted, so quantile and fraction queries are
/// logarithmic and the distribution can be rendered or compared cheaply.
/// This is the type behind every CDF figure in the paper reproduction
/// (Figs. 2, 3, 5, 6, 9, 10, 13, 14, 19).
///
/// # Examples
///
/// ```
/// use faas_metrics::Cdf;
///
/// let cdf = Cdf::from_samples([464.0, 100.0, 900.0, 20.0]);
/// assert_eq!(cdf.len(), 4);
/// assert_eq!(cdf.fraction_at_or_below(464.0), 0.75);
/// assert_eq!(cdf.quantile(1.0), 900.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Creates an empty CDF; equivalent to [`Cdf::default`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a CDF from any collection of samples.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        assert!(
            sorted.iter().all(|v| !v.is_nan()),
            "NaN sample in CDF input"
        );
        sorted.sort_by(f64::total_cmp);
        Self { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples backing this CDF.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Fraction of samples `<= x`, in `[0, 1]`. Returns 0 for an empty CDF.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The value at cumulative probability `q` in `[0, 1]` with linear
    /// interpolation (so `quantile(0.5)` is the median).
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0, 1]");
        percentile_of_sorted(&self.sorted, q * 100.0)
    }

    /// Minimum sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// The x-value where this CDF first reaches or exceeds the other CDF
    /// (reading both left to right), i.e. an approximate crossover point
    /// such as the 464 ms queueing-vs-cold-start crossing in Fig. 5.
    ///
    /// Scans `steps` evenly spaced points across the combined support.
    /// Returns `None` if either CDF is empty or no crossing is found.
    pub fn crossover_with(&self, other: &Cdf, steps: usize) -> Option<f64> {
        if self.is_empty() || other.is_empty() || steps < 2 {
            return None;
        }
        let lo = self.min()?.min(other.min()?);
        let hi = self.max()?.max(other.max()?);
        if hi <= lo {
            return None;
        }
        let mut prev_diff: Option<f64> = None;
        for i in 0..=steps {
            let x = lo + (hi - lo) * i as f64 / steps as f64;
            let diff = self.fraction_at_or_below(x) - other.fraction_at_or_below(x);
            if let Some(pd) = prev_diff {
                if pd != 0.0 && diff != 0.0 && pd.signum() != diff.signum() {
                    return Some(x);
                }
            }
            if diff != 0.0 {
                prev_diff = Some(diff);
            }
        }
        None
    }

    /// Mean absolute difference between this CDF's and `other`'s
    /// quantile functions, sampled at `steps` evenly spaced probabilities
    /// — the 1-Wasserstein (earth mover's) distance between the two
    /// empirical distributions, in the samples' units. Used to quantify
    /// simulator-vs-live-host fidelity. Returns `None` if either CDF is
    /// empty or `steps` is zero.
    pub fn wasserstein_distance(&self, other: &Cdf, steps: usize) -> Option<f64> {
        if self.is_empty() || other.is_empty() || steps == 0 {
            return None;
        }
        let total: f64 = (0..steps)
            .map(|i| {
                let q = (i as f64 + 0.5) / steps as f64;
                (self.quantile(q) - other.quantile(q)).abs()
            })
            .sum();
        Some(total / steps as f64)
    }

    /// Evenly spaced `(x, F(x))` points suitable for plotting or CSV dumps.
    ///
    /// Returns an empty vector for an empty CDF.
    pub fn plot_points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        if hi == lo {
            return vec![(lo, 1.0)];
        }
        (0..=n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / n as f64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }
}

impl FromIterator<f64> for Cdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self::from_samples(iter)
    }
}

impl Extend<f64> for Cdf {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.sorted.extend(iter);
        assert!(
            self.sorted.iter().all(|v| !v.is_nan()),
            "NaN sample in CDF input"
        );
        self.sorted.sort_by(f64::total_cmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_is_monotone_and_bounded() {
        let cdf = Cdf::from_samples([1.0, 2.0, 2.0, 5.0]);
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.75);
        assert_eq!(cdf.fraction_at_or_below(5.0), 1.0);
        assert_eq!(cdf.fraction_at_or_below(f64::MAX), 1.0);
    }

    #[test]
    fn quantile_median() {
        let cdf = Cdf::from_samples([1.0, 3.0]);
        assert_eq!(cdf.quantile(0.5), 2.0);
    }

    #[test]
    fn empty_cdf_queries() {
        let cdf = Cdf::new();
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.0);
        assert_eq!(cdf.min(), None);
        assert_eq!(cdf.mean(), None);
        assert!(cdf.plot_points(10).is_empty());
    }

    #[test]
    fn crossover_detects_crossing() {
        // A concentrated at 10, B spread 0..20: A's CDF jumps from 0 to 1 at
        // 10 while B rises linearly, so they must cross near 10.
        let a = Cdf::from_samples(std::iter::repeat_n(10.0, 100));
        let b = Cdf::from_samples((0..100).map(|i| i as f64 * 0.2));
        let x = a.crossover_with(&b, 1000).expect("must cross");
        assert!((x - 10.0).abs() < 1.0, "crossover {x} not near 10");
    }

    #[test]
    fn crossover_none_when_dominated() {
        let a = Cdf::from_samples([1.0, 2.0, 3.0]);
        let b = Cdf::from_samples([11.0, 12.0, 13.0]);
        // a is entirely below b: a's CDF is always >= b's, no sign change.
        assert_eq!(a.crossover_with(&b, 100), None);
    }

    #[test]
    fn wasserstein_of_identical_is_zero() {
        let a = Cdf::from_samples((0..100).map(f64::from));
        assert_eq!(a.wasserstein_distance(&a, 50), Some(0.0));
    }

    #[test]
    fn wasserstein_of_shifted_is_the_shift() {
        let a = Cdf::from_samples((0..1000).map(f64::from));
        let b = Cdf::from_samples((0..1000).map(|i| i as f64 + 10.0));
        let d = a.wasserstein_distance(&b, 200).expect("non-empty");
        assert!((d - 10.0).abs() < 0.5, "distance {d}");
    }

    #[test]
    fn wasserstein_empty_is_none() {
        let a = Cdf::from_samples([1.0]);
        assert_eq!(a.wasserstein_distance(&Cdf::new(), 10), None);
        assert_eq!(a.wasserstein_distance(&a, 0), None);
    }

    #[test]
    fn extend_keeps_sorted() {
        let mut cdf = Cdf::from_samples([5.0]);
        cdf.extend([1.0, 9.0]);
        assert_eq!(cdf.samples(), &[1.0, 5.0, 9.0]);
    }

    #[test]
    fn plot_points_constant_support() {
        let cdf = Cdf::from_samples([7.0, 7.0]);
        assert_eq!(cdf.plot_points(5), vec![(7.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Cdf::from_samples([f64::NAN]);
    }
}
