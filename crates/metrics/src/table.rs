//! Plain-text table rendering for experiment output.

use std::fmt;

/// A simple left-aligned ASCII table used by the experiment harness to
/// print the paper's table rows (e.g. Table 1, Table 2) to stdout.
///
/// # Examples
///
/// ```
/// use faas_metrics::Table;
///
/// let mut t = Table::new(["policy", "overhead"]);
/// t.row(["FaasCache", "52.7"]);
/// t.row(["CIDRE", "27.6"]);
/// let s = t.to_string();
/// assert!(s.contains("FaasCache"));
/// assert!(s.contains("CIDRE"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated to the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (header first), for machine-readable dumps.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        writeln!(f, "{}", fmt_row(&self.header))?;
        writeln!(f, "{sep}")?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["a", "longheader"]);
        t.row(["xxxxxx", "1"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn short_rows_padded_long_rows_truncated() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1"]);
        t.row(["1", "2", "3"]);
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().nth(2).expect("row"), "1,2");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(["x"]);
        t.row(["a,b"]);
        t.row(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn empty_table() {
        let t = Table::new(["only", "header"]);
        assert!(t.is_empty());
        assert_eq!(t.to_string().lines().count(), 2);
    }
}
