//! Free-standing percentile and moment helpers over slices.

/// Returns the `p`-th percentile (0–100) of `values` using linear
/// interpolation between closest ranks, the same scheme as NumPy's default.
///
/// The input does not need to be sorted; a sorted copy is made internally.
/// Use [`crate::Cdf`] when many quantiles of the same data are needed.
///
/// # Panics
///
/// Panics if `values` is empty or `p` is outside `[0, 100]`.
///
/// # Examples
///
/// ```
/// use faas_metrics::percentile;
/// assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 50.0), 2.5);
/// assert_eq!(percentile(&[10.0], 99.0), 10.0);
/// ```
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of [0, 100]");
    assert!(
        values.iter().all(|v| !v.is_nan()),
        "NaN in percentile input"
    );
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_of_sorted(&sorted, p)
}

/// Percentile over data already sorted ascending (no copy, no sort).
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`.
pub(crate) fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of [0, 100]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] + (sorted[hi] - sorted[lo]) * frac
    }
}

/// Returns the median (50th percentile) of `values`.
///
/// # Panics
///
/// Panics if `values` is empty.
///
/// # Examples
///
/// ```
/// use faas_metrics::median;
/// assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
/// ```
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// Returns the arithmetic mean of `values`.
///
/// # Panics
///
/// Panics if `values` is empty.
///
/// # Examples
///
/// ```
/// use faas_metrics::mean;
/// assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty slice");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Returns the population standard deviation of `values`.
///
/// # Panics
///
/// Panics if `values` is empty.
///
/// # Examples
///
/// ```
/// use faas_metrics::std_dev;
/// assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
/// ```
pub fn std_dev(values: &[f64]) -> f64 {
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_endpoints() {
        let v = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(percentile(&v, 25.0), 2.5);
        assert_eq!(percentile(&v, 75.0), 7.5);
    }

    #[test]
    fn median_even_count_averages_middle_pair() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn single_element_is_every_percentile() {
        for p in [0.0, 12.5, 50.0, 99.9, 100.0] {
            assert_eq!(percentile(&[42.0], p), 42.0);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn percentile_out_of_range_panics() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn mean_and_std_dev() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(std_dev(&[1.0, 1.0, 1.0]), 0.0);
    }

    #[test]
    fn percentile_does_not_reorder_input() {
        let v = [9.0, 1.0];
        let _ = percentile(&v, 50.0);
        assert_eq!(v, [9.0, 1.0]);
    }
}
