//! Step-function time series for resource-usage accounting.

/// A right-continuous step function sampled at irregular times, used to
/// track quantities like cluster memory usage over a simulation run
/// (Fig. 16 reports its time-weighted average).
///
/// Points must be appended in non-decreasing time order. Between two
/// points the series holds the earlier value.
///
/// # Examples
///
/// ```
/// use faas_metrics::TimeSeries;
///
/// let mut ts = TimeSeries::new();
/// ts.push(0, 100.0);
/// ts.push(10, 300.0);
/// ts.push(30, 0.0);
/// // 100 for 10 units, 300 for 20 units => (1000 + 6000) / 30
/// assert!((ts.time_weighted_mean(30).unwrap() - 233.333).abs() < 0.01);
/// assert_eq!(ts.max(), Some(300.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// Creates an empty time series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point at time `t` with value `v`.
    ///
    /// Consecutive points at the same timestamp overwrite (last write
    /// wins), which matches how several state changes can occur at the
    /// same simulated instant.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last appended timestamp.
    pub fn push(&mut self, t: u64, v: f64) {
        if let Some(&mut (last_t, ref mut last_v)) = self.points.last_mut() {
            assert!(t >= last_t, "time series timestamps must be non-decreasing");
            if t == last_t {
                *last_v = v;
                return;
            }
        }
        self.points.push((t, v));
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points are stored.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The value at time `t`, i.e. the value of the latest point at or
    /// before `t`; `None` before the first point or when empty.
    pub fn value_at(&self, t: u64) -> Option<f64> {
        let idx = self.points.partition_point(|&(pt, _)| pt <= t);
        if idx == 0 {
            None
        } else {
            Some(self.points[idx - 1].1)
        }
    }

    /// Maximum value over all points, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) => m.max(v),
            })
        })
    }

    /// Time-weighted mean of the step function from the first point up to
    /// `end`. Returns `None` when empty or when `end` does not exceed the
    /// first timestamp.
    pub fn time_weighted_mean(&self, end: u64) -> Option<f64> {
        let first = self.points.first()?.0;
        if end <= first {
            return None;
        }
        let mut weighted = 0.0;
        for (i, &(t, v)) in self.points.iter().enumerate() {
            if t >= end {
                break;
            }
            let next_t = self
                .points
                .get(i + 1)
                .map(|&(nt, _)| nt.min(end))
                .unwrap_or(end);
            weighted += v * (next_t - t) as f64;
        }
        Some(weighted / (end - first) as f64)
    }

    /// Iterates over the raw `(time, value)` points.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.points.iter().copied()
    }
}

impl FromIterator<(u64, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (u64, f64)>>(iter: I) -> Self {
        let mut ts = Self::new();
        for (t, v) in iter {
            ts.push(t, v);
        }
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_at_steps() {
        let ts: TimeSeries = [(10, 1.0), (20, 2.0)].into_iter().collect();
        assert_eq!(ts.value_at(5), None);
        assert_eq!(ts.value_at(10), Some(1.0));
        assert_eq!(ts.value_at(15), Some(1.0));
        assert_eq!(ts.value_at(20), Some(2.0));
        assert_eq!(ts.value_at(1000), Some(2.0));
    }

    #[test]
    fn same_timestamp_overwrites() {
        let mut ts = TimeSeries::new();
        ts.push(5, 1.0);
        ts.push(5, 9.0);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.value_at(5), Some(9.0));
    }

    #[test]
    fn weighted_mean_simple() {
        let mut ts = TimeSeries::new();
        ts.push(0, 10.0);
        ts.push(5, 20.0);
        // 10 over [0,5), 20 over [5,10): mean 15
        assert_eq!(ts.time_weighted_mean(10), Some(15.0));
    }

    #[test]
    fn weighted_mean_end_before_data() {
        let mut ts = TimeSeries::new();
        ts.push(10, 1.0);
        assert_eq!(ts.time_weighted_mean(10), None);
        assert!(TimeSeries::new().time_weighted_mean(100).is_none());
    }

    #[test]
    fn weighted_mean_ignores_points_after_end() {
        let mut ts = TimeSeries::new();
        ts.push(0, 1.0);
        ts.push(10, 100.0);
        assert_eq!(ts.time_weighted_mean(10), Some(1.0));
    }

    #[test]
    fn max_tracks_peak() {
        let ts: TimeSeries = [(0, 1.0), (1, 5.0), (2, 3.0)].into_iter().collect();
        assert_eq!(ts.max(), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_push_panics() {
        let mut ts = TimeSeries::new();
        ts.push(10, 1.0);
        ts.push(9, 1.0);
    }
}
