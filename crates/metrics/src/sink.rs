//! Multi-quantile streaming sink for latency-style measurements.

use crate::quantile::P2Quantile;

/// A constant-memory sink tracking several quantiles of one stream,
/// plus exact count / min / max / mean.
///
/// This is the measurement endpoint for open-loop load generation: a
/// run produces one latency sample per request (easily millions), and
/// the report needs p50 / p99 / p999 tail percentiles. Each configured
/// quantile is tracked by its own [`P2Quantile`] estimator, so memory
/// is a handful of floats regardless of stream length; count, min, max
/// and mean are exact.
///
/// # Examples
///
/// ```
/// use faas_metrics::PercentileSink;
///
/// let mut sink = PercentileSink::latency();
/// for i in 1..=10_000 {
///     sink.record(i as f64);
/// }
/// assert_eq!(sink.count(), 10_000);
/// assert_eq!(sink.min(), Some(1.0));
/// assert_eq!(sink.max(), Some(10_000.0));
/// let p99 = sink.quantile(0.99).expect("tracked");
/// assert!((p99 - 9_900.0).abs() < 200.0, "p99 {p99}");
/// ```
#[derive(Debug, Clone)]
pub struct PercentileSink {
    estimators: Vec<P2Quantile>,
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
}

impl PercentileSink {
    /// Creates a sink tracking the given quantiles, each in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `quantiles` is empty or any entry is outside `(0, 1)`
    /// (the [`P2Quantile`] constructor enforces the range).
    pub fn new(quantiles: &[f64]) -> Self {
        assert!(!quantiles.is_empty(), "sink needs at least one quantile");
        Self {
            estimators: quantiles.iter().map(|&q| P2Quantile::new(q)).collect(),
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// The standard latency sink: p50, p99 and p999.
    pub fn latency() -> Self {
        Self::new(&[0.50, 0.99, 0.999])
    }

    /// Records one observation into every estimator.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN sample");
        for est in &mut self.estimators {
            est.record(value);
        }
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample, if any were recorded.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any were recorded.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact arithmetic mean, if any samples were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The estimate for quantile `q`, or `None` if `q` is not one of
    /// the tracked quantiles or no samples were recorded. Matching is
    /// exact on the configured value (`0.99` matches `0.99`, not
    /// `0.990001`).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.estimators
            .iter()
            .find(|e| e.quantile() == q)
            .and_then(P2Quantile::estimate)
    }

    /// All tracked quantiles with their current estimates, in the
    /// order they were configured; empty while no samples exist.
    pub fn estimates(&self) -> Vec<(f64, f64)> {
        self.estimators
            .iter()
            .filter_map(|e| e.estimate().map(|v| (e.quantile(), v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_exact_aggregates_and_tail_quantiles() {
        let mut sink = PercentileSink::new(&[0.5, 0.999]);
        for i in 0..100_000u64 {
            // A deterministic shuffle so samples do not arrive sorted.
            let v = (i.wrapping_mul(48_271) % 100_000) as f64;
            sink.record(v);
        }
        assert_eq!(sink.count(), 100_000);
        assert_eq!(sink.min(), Some(0.0));
        assert_eq!(sink.max(), Some(99_999.0));
        let mean = sink.mean().expect("samples");
        assert!((mean - 49_999.5).abs() < 1.0, "mean {mean}");
        let p50 = sink.quantile(0.5).expect("tracked");
        assert!((p50 - 50_000.0).abs() < 1_500.0, "p50 {p50}");
        let p999 = sink.quantile(0.999).expect("tracked");
        assert!((p999 - 99_900.0).abs() < 500.0, "p999 {p999}");
    }

    #[test]
    fn untracked_quantile_and_empty_sink_return_none() {
        let mut sink = PercentileSink::latency();
        assert_eq!(sink.quantile(0.99), None, "no samples yet");
        assert_eq!(sink.mean(), None);
        assert!(sink.estimates().is_empty());
        sink.record(1.0);
        assert!(sink.quantile(0.99).is_some());
        assert_eq!(sink.quantile(0.95), None, "never configured");
        assert_eq!(sink.estimates().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one quantile")]
    fn rejects_empty_quantile_list() {
        let _ = PercentileSink::new(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN sample")]
    fn rejects_nan() {
        PercentileSink::latency().record(f64::NAN);
    }
}
