//! Statistical primitives shared by the CIDRE reproduction.
//!
//! This crate provides the measurement substrate used across the
//! workspace: empirical CDFs ([`Cdf`]), percentile estimation
//! ([`percentile`]), online summaries ([`Summary`]), histograms
//! ([`Histogram`]), time-based sliding windows ([`SlidingWindow`]) as used
//! by CIDRE's conditional speculative scaling, step-function time series
//! ([`TimeSeries`]) for memory-usage accounting, and plain-text rendering
//! helpers ([`Table`], [`AsciiChart`]) used by the experiment harness.
//!
//! For runs too large to keep every sample, [`P2Quantile`] estimates a
//! single quantile in constant memory (the P² algorithm), and
//! [`PercentileSink`] bundles several such estimators with exact
//! count / min / max / mean — the measurement endpoint for open-loop
//! load generation.
//!
//! Everything here is dependency-free, deterministic, and `f64`-based; the
//! simulator keeps integer microseconds internally and converts at the
//! measurement boundary.
//!
//! # Examples
//!
//! ```
//! use faas_metrics::{Cdf, percentile};
//!
//! let cdf = Cdf::from_samples([3.0, 1.0, 2.0, 4.0]);
//! assert_eq!(cdf.quantile(0.5), 2.5);
//! assert_eq!(cdf.fraction_at_or_below(2.5), 0.5);
//! assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 100.0), 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ascii;
mod cdf;
mod histogram;
mod pareto;
mod percentile;
mod quantile;
mod sink;
mod sliding;
mod summary;
mod table;
mod timeseries;

pub use ascii::{AsciiChart, AsciiWaterfall};
pub use cdf::Cdf;
pub use histogram::{Histogram, HistogramBin};
pub use pareto::{pareto_frontier, ParetoPoint};
pub use percentile::{mean, median, percentile, std_dev};
pub use quantile::P2Quantile;
pub use sink::PercentileSink;
pub use sliding::SlidingWindow;
pub use summary::Summary;
pub use table::Table;
pub use timeseries::TimeSeries;
