//! Fixed-bin histograms (linear or logarithmic bin edges).

/// One bin of a [`Histogram`]: half-open range `[lo, hi)` and its count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramBin {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge (inclusive for the final bin).
    pub hi: f64,
    /// Number of samples that fell in this bin.
    pub count: u64,
}

/// A histogram over a fixed range with linear or logarithmic bins.
///
/// Samples outside the configured range are clamped into the first/last
/// bin so that totals are conserved (useful for latency tails).
///
/// # Examples
///
/// ```
/// use faas_metrics::Histogram;
///
/// let mut h = Histogram::linear(0.0, 100.0, 10);
/// h.record(5.0);
/// h.record(95.0);
/// h.record(1000.0); // clamped into the last bin
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.bins()[9].count, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    log: bool,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins covering `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn linear(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        let edges = (0..=bins)
            .map(|i| lo + (hi - lo) * i as f64 / bins as f64)
            .collect();
        Self {
            edges,
            counts: vec![0; bins],
            log: false,
        }
    }

    /// Creates a histogram with `bins` logarithmically spaced bins covering
    /// `[lo, hi]`. Useful for latency data spanning orders of magnitude
    /// (e.g. the µs-to-seconds spread in Fig. 6).
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, `lo <= 0`, or `hi <= lo`.
    pub fn logarithmic(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo > 0.0, "log histogram needs positive lower bound");
        assert!(hi > lo, "histogram range must be non-empty");
        let (llo, lhi) = (lo.ln(), hi.ln());
        let edges = (0..=bins)
            .map(|i| (llo + (lhi - llo) * i as f64 / bins as f64).exp())
            .collect();
        Self {
            edges,
            counts: vec![0; bins],
            log: true,
        }
    }

    /// Records one sample, clamping values outside the range into the
    /// first or last bin.
    pub fn record(&mut self, value: f64) {
        let idx = self.bin_index(value);
        self.counts[idx] += 1;
    }

    fn bin_index(&self, value: f64) -> usize {
        let n = self.counts.len();
        if value <= self.edges[0] {
            return 0;
        }
        if value >= self.edges[n] {
            return n - 1;
        }
        // partition_point: first edge > value, minus one, is the bin.
        let idx = self.edges.partition_point(|&e| e <= value);
        (idx - 1).min(n - 1)
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether the bins are logarithmically spaced.
    pub fn is_logarithmic(&self) -> bool {
        self.log
    }

    /// Bin views in ascending order.
    pub fn bins(&self) -> Vec<HistogramBin> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &count)| HistogramBin {
                lo: self.edges[i],
                hi: self.edges[i + 1],
                count,
            })
            .collect()
    }

    /// The bin with the highest count, or `None` if no samples recorded.
    pub fn mode_bin(&self) -> Option<HistogramBin> {
        if self.total() == 0 {
            return None;
        }
        self.bins().into_iter().max_by_key(|b| b.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning() {
        let mut h = Histogram::linear(0.0, 10.0, 5);
        h.record(0.0);
        h.record(1.9);
        h.record(2.0);
        h.record(9.99);
        let bins = h.bins();
        assert_eq!(bins[0].count, 2);
        assert_eq!(bins[1].count, 1);
        assert_eq!(bins[4].count, 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::linear(0.0, 1.0, 2);
        h.record(-5.0);
        h.record(5.0);
        let bins = h.bins();
        assert_eq!(bins[0].count, 1);
        assert_eq!(bins[1].count, 1);
    }

    #[test]
    fn log_bins_cover_orders_of_magnitude() {
        let h = Histogram::logarithmic(1.0, 1000.0, 3);
        let bins = h.bins();
        assert!((bins[0].hi - 10.0).abs() < 1e-9);
        assert!((bins[1].hi - 100.0).abs() < 1e-9);
        assert!(h.is_logarithmic());
    }

    #[test]
    fn upper_edge_lands_in_last_bin() {
        let mut h = Histogram::linear(0.0, 10.0, 5);
        h.record(10.0);
        assert_eq!(h.bins()[4].count, 1);
    }

    #[test]
    fn mode_bin() {
        let mut h = Histogram::linear(0.0, 4.0, 4);
        assert_eq!(h.mode_bin(), None);
        h.record(2.5);
        h.record(2.6);
        h.record(0.5);
        assert_eq!(h.mode_bin().expect("non-empty").count, 2);
    }

    #[test]
    #[should_panic(expected = "positive lower bound")]
    fn log_rejects_zero_lo() {
        let _ = Histogram::logarithmic(0.0, 1.0, 4);
    }
}
