//! End-to-end simulator throughput: requests simulated per second under
//! the CIDRE stack and the FaasCache baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cidre_core::{cidre_stack, CidreConfig};
use faas_policies::faascache_stack;
use faas_sim::{run, SimConfig};
use faas_trace::gen;

fn bench_sim(c: &mut Criterion) {
    let trace = gen::fc(1).functions(20).minutes(2).build();
    let config = SimConfig::default().workers_mb(vec![8_192]);
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function(BenchmarkId::new("replay", "cidre"), |b| {
        b.iter(|| run(&trace, &config, cidre_stack(CidreConfig::default())))
    });
    group.bench_function(BenchmarkId::new("replay", "faascache"), |b| {
        b.iter(|| run(&trace, &config, faascache_stack()))
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
