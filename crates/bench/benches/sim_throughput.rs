//! End-to-end simulator throughput: requests simulated per second under
//! the CIDRE stack and the FaasCache baseline.

use std::hint::black_box;

use cidre_core::{cidre_stack, CidreConfig};
use faas_policies::faascache_stack;
use faas_sim::{baseline_lru_stack, run, ScanMode, SimConfig};
use faas_testkit::Harness;
use faas_trace::{gen, TimeDelta};

fn main() {
    let mut h = Harness::new("sim_throughput");
    let trace = gen::fc(1).functions(20).minutes(2).build();
    let config = SimConfig::default().workers_mb(vec![8_192]);
    h.samples(10);
    h.throughput_elems(trace.len() as u64);
    h.bench("replay/cidre", || {
        black_box(run(&trace, &config, cidre_stack(CidreConfig::default())));
    });
    h.throughput_elems(trace.len() as u64);
    h.bench("replay/faascache", || {
        black_box(run(&trace, &config, faascache_stack()));
    });

    // Large-N eviction-pressure scenario: 10k functions over one minute
    // (~93k requests, ~80k container lifetimes) against two 300 GB
    // workers, so each memory-pressure round sees an idle pool of ~1000
    // eviction candidates. This is the scenario the indexed hot paths
    // are sized for; the scenario is identical in smoke and full mode
    // (only sample counts differ) so baseline comparisons stay valid.
    let trace = gen::azure(7)
        .functions(10_000)
        .minutes(1)
        .rate_per_function(0.15)
        .build();
    let config = SimConfig::default().workers_mb(vec![307_200; 2]);
    h.samples(10);
    h.throughput_elems(trace.len() as u64);
    h.bench("replay/large_n", || {
        black_box(run(&trace, &config, faascache_stack()));
    });
    // The same scenario through the retained naive scans: the oracle the
    // differential tests compare against, and the denominator for the
    // indexed speedup that `bench_guard` enforces in CI.
    let reference = config.clone().scan_mode(ScanMode::Reference);
    h.samples(10);
    h.throughput_elems(trace.len() as u64);
    h.bench("replay/large_n_reference", || {
        black_box(run(&trace, &reference, faascache_stack()));
    });

    // Sharded-engine scaling lane (DESIGN.md §9): a large warm-heavy
    // replay — 512 functions at a high per-function rate against huge
    // workers (no eviction pressure) with 60 s ticks — so nearly every
    // event is a shard-local warm hit or quiet completion. The same
    // trace runs at 1/2/4 shards; `bench_guard` gates the 4-shard
    // efficiency against a parallelism-aware floor (2.5x on hosts with
    // >= 4 CPUs).
    let trace = gen::azure(3)
        .functions(512)
        .minutes(2)
        .rate_per_function(2.0)
        .build();
    let config = SimConfig::default()
        .workers_mb(vec![1_048_576; 4])
        .tick(TimeDelta::from_secs(60));
    for shards in [1usize, 2, 4] {
        let cfg = config.clone().shards(shards);
        h.samples(5);
        h.throughput_elems(trace.len() as u64);
        h.bench(&format!("scaling/shards_{shards}"), || {
            black_box(run(&trace, &cfg, baseline_lru_stack()));
        });
    }
    h.finish();
}
