//! End-to-end simulator throughput: requests simulated per second under
//! the CIDRE stack and the FaasCache baseline.

use std::hint::black_box;

use cidre_core::{cidre_stack, CidreConfig};
use faas_policies::faascache_stack;
use faas_sim::{run, SimConfig};
use faas_testkit::Harness;
use faas_trace::gen;

fn main() {
    let mut h = Harness::new("sim_throughput");
    let trace = gen::fc(1).functions(20).minutes(2).build();
    let config = SimConfig::default().workers_mb(vec![8_192]);
    h.samples(10);
    h.throughput_elems(trace.len() as u64);
    h.bench("replay/cidre", || {
        black_box(run(&trace, &config, cidre_stack(CidreConfig::default())));
    });
    h.throughput_elems(trace.len() as u64);
    h.bench("replay/faascache", || {
        black_box(run(&trace, &config, faascache_stack()));
    });
    h.finish();
}
