//! Synthetic workload generator throughput and trace analytics cost.

use std::hint::black_box;

use cidre_bench::experiments::fig9_10::opportunity_counts;
use faas_testkit::Harness;
use faas_trace::stats::TraceStats;
use faas_trace::{gen, transform};

fn main() {
    let mut h = Harness::new("trace_gen");
    h.bench("gen_azure_20fn_2min", || {
        black_box(gen::azure(7).functions(20).minutes(2).build());
    });
    h.bench("gen_fc_20fn_2min", || {
        black_box(gen::fc(7).functions(20).minutes(2).build());
    });

    let trace = gen::azure(7).functions(20).minutes(2).build();
    h.bench("trace_stats_table1", || {
        black_box(TraceStats::compute(&trace));
    });
    h.bench("opportunity_counts_fig9", || {
        black_box(opportunity_counts(&trace, 1.0, 1.0));
    });
    h.bench("transform_scale_iat", || {
        black_box(transform::scale_iat(&trace, 0.5));
    });
    h.finish();
}
