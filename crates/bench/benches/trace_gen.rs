//! Synthetic workload generator throughput and trace analytics cost.

use criterion::{criterion_group, criterion_main, Criterion};

use cidre_bench::experiments::fig9_10::opportunity_counts;
use faas_trace::stats::TraceStats;
use faas_trace::{gen, transform};

fn bench_generation(c: &mut Criterion) {
    c.bench_function("gen_azure_20fn_2min", |b| {
        b.iter(|| gen::azure(7).functions(20).minutes(2).build())
    });
    c.bench_function("gen_fc_20fn_2min", |b| {
        b.iter(|| gen::fc(7).functions(20).minutes(2).build())
    });
}

fn bench_analytics(c: &mut Criterion) {
    let trace = gen::azure(7).functions(20).minutes(2).build();
    c.bench_function("trace_stats_table1", |b| {
        b.iter(|| TraceStats::compute(&trace))
    });
    c.bench_function("opportunity_counts_fig9", |b| {
        b.iter(|| opportunity_counts(&trace, 1.0, 1.0))
    });
    c.bench_function("transform_scale_iat", |b| {
        b.iter(|| transform::scale_iat(&trace, 0.5))
    });
}

criterion_group!(benches, bench_generation, bench_analytics);
criterion_main!(benches);
