//! One Criterion target per paper artifact: each bench runs the
//! corresponding experiment end-to-end at miniature scale (tiny traces,
//! scaled caches), so `cargo bench` exercises the full harness for every
//! table and figure. The paper-scale numbers come from the
//! `experiments` binary (`cargo run --release -p cidre-bench --bin
//! experiments -- all`), whose outputs are recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};

use cidre_bench::{registry, ExpCtx};

/// Miniature context: quick scale, outputs to a scratch directory, and a
/// fixed seed so every iteration does identical work.
fn mini_ctx() -> ExpCtx {
    ExpCtx {
        scale: cidre_bench::Scale::Tiny,
        out_dir: std::env::temp_dir().join("cidre-bench-results"),
        seed: 42,
    }
}

fn bench_every_figure(c: &mut Criterion) {
    cidre_bench::set_quiet(true);
    let ctx = mini_ctx();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    let mut seen = std::collections::HashSet::new();
    for exp in registry() {
        // `table2` aliases fig20's runner; bench each runner once.
        if !seen.insert(exp.run as usize) {
            continue;
        }
        // fig12 sweeps 11 policies x 5 cache sizes x 2 traces; keep the
        // per-iteration cost sane by sampling it like the others but it
        // dominates the suite. That is intentional: it is the paper's
        // headline experiment.
        group.bench_function(exp.name, |b| b.iter(|| (exp.run)(&ctx)));
    }
    group.finish();
}

criterion_group!(benches, bench_every_figure);
criterion_main!(benches);
