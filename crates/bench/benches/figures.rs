//! One bench per paper artifact: each runs the corresponding experiment
//! end-to-end at miniature scale (tiny traces, scaled caches), so
//! `cargo bench` exercises the full harness for every table and figure.
//! The paper-scale numbers come from the `experiments` binary
//! (`cargo run --release -p cidre-bench --bin experiments -- all`),
//! whose outputs are recorded in EXPERIMENTS.md.

use cidre_bench::{registry, ExpCtx};
use faas_testkit::Harness;

/// Miniature context: tiny scale, outputs to a scratch directory, and a
/// fixed seed so every iteration does identical work.
fn mini_ctx() -> ExpCtx {
    ExpCtx {
        scale: cidre_bench::Scale::Tiny,
        out_dir: std::env::temp_dir().join("cidre-bench-results"),
        seed: 42,
        ..ExpCtx::default()
    }
}

fn main() {
    cidre_bench::set_quiet(true);
    let ctx = mini_ctx();
    let mut h = Harness::new("figures");
    h.samples(5);
    let mut seen = std::collections::HashSet::new();
    for exp in registry() {
        // `table2` aliases fig20's runner; bench each runner once.
        if !seen.insert(exp.run as usize) {
            continue;
        }
        // fig12 sweeps 11 policies x 5 cache sizes x 2 traces and
        // dominates the suite. That is intentional: it is the paper's
        // headline experiment.
        h.bench(exp.name, || (exp.run)(&ctx));
    }
    h.finish();
}
