//! Micro-benchmarks of CIDRE's decision paths.
//!
//! The paper reports Algorithm 1 adding ≈36 µs per decision in
//! OpenLambda; here the pure in-memory decision (no RPC, no Go runtime)
//! should be far below that. Also benches the CIP priority computation
//! that eviction sorts by.

use std::collections::HashMap;
use std::hint::black_box;

use cidre_core::{CidreConfig, CipKeepAlive, CssScaler};
use faas_sim::{
    ClusterState, ContainerInfo, KeepAlive, PolicyCtx, RequestId, RequestInfo, Scaler, StartClass,
    WorkerId,
};
use faas_testkit::Harness;
use faas_trace::{FunctionId, FunctionProfile, TimeDelta, TimePoint};

fn harness() -> ClusterState {
    let profiles: Vec<FunctionProfile> = (0..64)
        .map(|i| {
            FunctionProfile::new(
                FunctionId(i),
                format!("f{i}"),
                256,
                TimeDelta::from_millis(300),
            )
        })
        .collect();
    let mut cl = ClusterState::new(&[1_000_000], profiles, 1);
    for i in 0..64u32 {
        let id = cl.begin_provision(FunctionId(i), WorkerId(0), TimePoint::ZERO, false);
        cl.finish_provision(id, TimePoint::ZERO);
        cl.note_arrival(FunctionId(i), TimePoint::ZERO);
    }
    cl
}

fn bench_css_decision(h: &mut Harness) {
    let cl = harness();
    let busy = HashMap::new();
    let mut css = CssScaler::new(CidreConfig::default());
    // Prime statistics for one function.
    let req = RequestInfo {
        id: RequestId(0),
        func: FunctionId(0),
        arrival: TimePoint::ZERO,
    };
    for t in 0..100u64 {
        let ctx = PolicyCtx::new(TimePoint::from_millis(t), &cl, &busy);
        css.on_start(
            &req,
            StartClass::DelayedWarm,
            TimeDelta::from_millis(5),
            TimeDelta::from_millis(20),
            &ctx,
        );
    }
    css.on_cold_outcome(
        FunctionId(0),
        Some(TimeDelta::from_millis(5)),
        &PolicyCtx::new(TimePoint::from_millis(100), &cl, &busy),
    );
    h.bench("css_on_blocked (Algorithm 1 decision)", || {
        let ctx = PolicyCtx::new(TimePoint::from_millis(200), &cl, &busy);
        black_box(css.on_blocked(&req, &ctx));
    });
}

fn bench_cip_priority(h: &mut Harness) {
    let cl = harness();
    let busy = HashMap::new();
    let cip = CipKeepAlive::new();
    let info = ContainerInfo::from(cl.container(faas_sim::ContainerId(0)).expect("live"));
    h.bench("cip_priority (Eq. 3)", || {
        let ctx = PolicyCtx::new(TimePoint::from_secs(60), &cl, &busy);
        black_box(cip.priority(&info, &ctx));
    });
}

fn main() {
    let mut h = Harness::new("policy_overhead");
    bench_css_decision(&mut h);
    bench_cip_priority(&mut h);
    h.finish();
}
