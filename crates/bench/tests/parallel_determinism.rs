//! The parallel experiment runner must be a pure speed-up: fanning the
//! same scenario grid over worker threads yields byte-identical reports
//! (and therefore identical tables and CSVs) to the sequential path.

use cidre_bench::workloads::run_policy_batch;
use cidre_bench::{ExpCtx, Scale, Workload};
use faas_sim::SimConfig;

fn tiny_ctx(jobs: usize) -> ExpCtx {
    ExpCtx {
        scale: Scale::Tiny,
        jobs,
        ..ExpCtx::default()
    }
}

/// A policy x cache grid shaped like fig12/sweep's inner loop.
fn grid(ctx: &ExpCtx) -> Vec<(String, SimConfig)> {
    let policies = ["ttl", "lru", "faascache", "cidre-bss", "cidre"];
    [80u64, 100, 120]
        .iter()
        .flat_map(|&gb| {
            policies
                .iter()
                .map(move |p| (p.to_string(), ctx.sim_config(gb)))
        })
        .collect()
}

#[test]
fn parallel_batch_matches_sequential_batch() {
    cidre_bench::set_quiet(true);
    let seq_ctx = tiny_ctx(1);
    let trace = seq_ctx.trace(Workload::Azure);
    let scenarios = grid(&seq_ctx);
    let sequential = run_policy_batch(&seq_ctx, &trace, &scenarios);
    for jobs in [2, 4, 8] {
        let par_ctx = tiny_ctx(jobs);
        let parallel = run_policy_batch(&par_ctx, &trace, &scenarios);
        assert_eq!(sequential.len(), parallel.len());
        for (i, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
            assert_eq!(
                format!("{s:?}"),
                format!("{p:?}"),
                "scenario {i} ({}) diverged at jobs={jobs}",
                scenarios[i].0
            );
        }
    }
}

#[test]
fn oversubscribed_jobs_are_clamped_not_wrong() {
    cidre_bench::set_quiet(true);
    let ctx = tiny_ctx(64); // far more workers than scenarios
    let trace = ctx.trace(Workload::Fc);
    let scenarios = vec![
        ("faascache".to_string(), ctx.sim_config(100)),
        ("cidre".to_string(), ctx.sim_config(100)),
    ];
    let reports = run_policy_batch(&ctx, &trace, &scenarios);
    assert_eq!(reports.len(), 2);
    let seq = run_policy_batch(&tiny_ctx(1), &trace, &scenarios);
    for (s, p) in seq.iter().zip(&reports) {
        assert_eq!(format!("{s:?}"), format!("{p:?}"));
    }
}
