//! The `faults` experiment must be a pure function of (seed, scale):
//! same context ⇒ byte-identical CSV, run-to-run. Runs at tiny scale so
//! the double sweep stays cheap; the mechanism under test (seeded
//! `FaultPlan`s threaded through `run_policy_batch`) is scale-blind.

use std::path::PathBuf;

use cidre_bench::{experiments, ExpCtx};

fn run_once(tag: &str) -> String {
    let out_dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("faults-{tag}"));
    let ctx = ExpCtx {
        out_dir: out_dir.clone(),
        ..ExpCtx::tiny()
    };
    experiments::faults::run(&ctx);
    std::fs::read_to_string(out_dir.join("faults.csv")).expect("experiment wrote its CSV")
}

#[test]
fn faults_csv_is_byte_identical_across_runs() {
    cidre_bench::set_quiet(true);
    let a = run_once("a");
    let b = run_once("b");
    assert_eq!(a, b, "faults experiment must be deterministic");
    // Sanity: the sweep produced every (rate, policy) row plus a header.
    let rows = experiments::faults::RATES.len() * experiments::faults::POLICIES.len();
    assert_eq!(a.lines().count(), rows + 1);
    // The zero-rate control rows report clean fault counters.
    for line in a.lines().skip(1).take(experiments::faults::POLICIES.len()) {
        let cells: Vec<&str> = line.split(',').collect();
        assert_eq!(cells[6], "0", "control row has provision failures: {line}");
        assert_eq!(cells[7], "0", "control row has crash evictions: {line}");
    }
}
