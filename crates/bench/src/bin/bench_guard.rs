//! CI throughput gate over `BENCH_results.json`.
//!
//! Usage: `bench_guard <baseline.json> <current.json>`
//!
//! Fails (exit 1) when either:
//!
//! * the large-N simulator throughput (`sim_throughput` /
//!   `replay/large_n`, events per second) regressed more than 20%
//!   against the committed baseline, or
//! * the indexed scan is no longer at least 2x the retained reference
//!   scan (`replay/large_n_reference`) within the current run — the
//!   speedup the indexed hot paths exist to provide.
//!
//! Both files use the testkit harness schema; comparisons are on
//! `throughput_elems_per_sec`, which is scenario-invariant between
//! smoke and full bench modes (identical workload, fewer samples).

use std::process::ExitCode;

use faas_testkit::json::Value;

/// Maximum tolerated relative throughput regression vs the baseline.
const MAX_REGRESSION: f64 = 0.20;

/// Minimum required indexed-over-reference speedup.
const MIN_SPEEDUP: f64 = 2.0;

/// Extracts `throughput_elems_per_sec` for `bench` under `target`.
fn throughput(doc: &Value, target: &str, bench: &str) -> Option<f64> {
    doc.get("targets")?
        .get(target)?
        .get("benches")?
        .as_arr()?
        .iter()
        .find(|b| b.get("name").and_then(Value::as_str) == Some(bench))?
        .get("throughput_elems_per_sec")?
        .as_f64()
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Value::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = args.as_slice() else {
        eprintln!("usage: bench_guard <baseline.json> <current.json>");
        return ExitCode::FAILURE;
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_guard: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    let Some(cur) = throughput(&current, "sim_throughput", "replay/large_n") else {
        eprintln!("bench_guard: current run lacks sim_throughput/replay/large_n");
        return ExitCode::FAILURE;
    };
    let mut ok = true;

    // Gate 1: no >20% regression against the committed baseline.
    match throughput(&baseline, "sim_throughput", "replay/large_n") {
        Some(base) => {
            let floor = base * (1.0 - MAX_REGRESSION);
            if cur < floor {
                eprintln!(
                    "bench_guard: replay/large_n regressed: {cur:.0} elems/s < \
                     {floor:.0} (baseline {base:.0} - {:.0}%)",
                    MAX_REGRESSION * 100.0
                );
                ok = false;
            } else {
                println!("bench_guard: replay/large_n {cur:.0} elems/s vs baseline {base:.0} (ok)");
            }
        }
        None => {
            // First run ever: nothing to regress against.
            println!("bench_guard: no baseline for replay/large_n; skipping regression gate");
        }
    }

    // Gate 2: the indexed scan must stay >= 2x the reference scan.
    match throughput(&current, "sim_throughput", "replay/large_n_reference") {
        Some(reference) if reference > 0.0 => {
            let speedup = cur / reference;
            if speedup < MIN_SPEEDUP {
                eprintln!(
                    "bench_guard: indexed speedup {speedup:.2}x < {MIN_SPEEDUP}x \
                     (indexed {cur:.0} vs reference {reference:.0} elems/s)"
                );
                ok = false;
            } else {
                println!("bench_guard: indexed speedup {speedup:.2}x over reference (ok)");
            }
        }
        _ => {
            eprintln!("bench_guard: current run lacks sim_throughput/replay/large_n_reference");
            ok = false;
        }
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
