//! CI throughput gate over `BENCH_results.json`.
//!
//! Usage: `bench_guard <baseline.json> <current.json>`
//!
//! Fails (exit 1) when either:
//!
//! * the large-N simulator throughput (`sim_throughput` /
//!   `replay/large_n`, events per second) regressed more than 20%
//!   against the committed baseline, or
//! * the indexed scan is no longer at least 2x the retained reference
//!   scan (`replay/large_n_reference`) within the current run — the
//!   speedup the indexed hot paths exist to provide, or
//! * the sharded engine's 4-shard scaling lane (`scaling/shards_4` vs
//!   `scaling/shards_1`) drops below its parallelism-aware floor:
//!   2.5x on hosts with at least 4 CPUs; on narrower hosts — where a
//!   wall-clock speedup is physically impossible — an overhead bound
//!   instead (the sharded run may not fall below a fixed fraction of
//!   sequential throughput), plus the same 20% ratchet against the
//!   committed `scaling/shards_4` baseline either way, or
//! * the live load-serving lane regressed: sustained requests/sec
//!   (`live_load` / `serve_smoke/rps`) fell more than 35% below the
//!   committed baseline, or the live p99 wait
//!   (`serve_smoke/p99_wait`, stored in `median_ns`, lower is better)
//!   grew more than 35% above it. The live lane races the wall clock
//!   end to end — reactor, executor, OS scheduler — so its threshold
//!   is looser than the microbenchmark ratchets, or
//! * the memory bill regressed: GB-seconds per served request on the
//!   live workload (`serve_smoke/gbs_per_req`, stored raw in
//!   `median_ns`, lower is better) grew more than 20% above the
//!   committed baseline. The value comes from the deterministic
//!   simulator side of the `live_load` run, so the tight ratchet is
//!   safe — any drift is a real cost-model or policy change, not
//!   noise, or
//! * the disabled trace recorder stopped being free: `run()` drives
//!   the engine with the no-op recorder (DESIGN.md §12), so
//!   `replay/large_n` *is* the recorder-off path, and its **best**
//!   sample (events/sec at `min_ns`) may not fall more than 2% below
//!   the committed baseline median. Comparing best-vs-median keeps the
//!   deliberately tight threshold immune to ordinary wall-clock noise:
//!   a real recording-cost leak into the hot loop shifts every sample,
//!   including the best one.
//!
//! Both files use the testkit harness schema; comparisons are on
//! `throughput_elems_per_sec`, which is scenario-invariant between
//! smoke and full bench modes (identical workload, fewer samples).
//! The `serve_smoke` live lane is pinned to one workload by name, so
//! it is likewise comparable across runs.

use std::process::ExitCode;

use faas_testkit::json::Value;

/// Maximum tolerated relative throughput regression vs the baseline.
const MAX_REGRESSION: f64 = 0.20;

/// Minimum required indexed-over-reference speedup.
const MIN_SPEEDUP: f64 = 2.0;

/// Minimum required 4-shard-over-sequential speedup on hosts with at
/// least this many CPUs (the shards can actually run concurrently).
const MIN_SHARD_SPEEDUP: f64 = 2.5;
const SHARD_SPEEDUP_MIN_CPUS: usize = 4;

/// On hosts too narrow for real parallelism, the scaling gate degrades
/// to a loose overhead backstop: 4 shards time-sliced onto fewer CPUs
/// must still deliver at least this fraction of sequential throughput.
/// The conservative-barrier machinery (per-phase checkpoints, rollback
/// replays, log merges) measures ~0.04x on a 1-CPU host, so this floor
/// only catches catastrophic blowups; the 20% baseline ratchet below is
/// the real regression guard on narrow hosts.
const SHARD_OVERHEAD_FLOOR: f64 = 0.01;

/// Maximum tolerated relative regression on the live load-serving
/// lanes (rps down, or p99 wait up). Wall-clock end-to-end runs are
/// noisier than microbenchmarks, hence the looser threshold.
const LIVE_MAX_REGRESSION: f64 = 0.35;

/// Maximum tolerated events/sec cost of the *disabled* trace recorder
/// on the large-N replay — the zero-cost-when-off contract of
/// DESIGN.md §12, enforced on the best sample vs the baseline median.
const MAX_RECORDER_OVERHEAD: f64 = 0.02;

/// Extracts field `key` for `bench` under `target`.
fn bench_field(doc: &Value, target: &str, bench: &str, key: &str) -> Option<f64> {
    doc.get("targets")?
        .get(target)?
        .get("benches")?
        .as_arr()?
        .iter()
        .find(|b| b.get("name").and_then(Value::as_str) == Some(bench))?
        .get(key)?
        .as_f64()
}

/// Extracts `throughput_elems_per_sec` for `bench` under `target`.
fn throughput(doc: &Value, target: &str, bench: &str) -> Option<f64> {
    bench_field(doc, target, bench, "throughput_elems_per_sec")
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Value::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = args.as_slice() else {
        eprintln!("usage: bench_guard <baseline.json> <current.json>");
        return ExitCode::FAILURE;
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_guard: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    let Some(cur) = throughput(&current, "sim_throughput", "replay/large_n") else {
        eprintln!("bench_guard: current run lacks sim_throughput/replay/large_n");
        return ExitCode::FAILURE;
    };
    let mut ok = true;

    // Gate 1: no >20% regression against the committed baseline.
    match throughput(&baseline, "sim_throughput", "replay/large_n") {
        Some(base) => {
            let floor = base * (1.0 - MAX_REGRESSION);
            if cur < floor {
                eprintln!(
                    "bench_guard: replay/large_n regressed: {cur:.0} elems/s < \
                     {floor:.0} (baseline {base:.0} - {:.0}%)",
                    MAX_REGRESSION * 100.0
                );
                ok = false;
            } else {
                println!("bench_guard: replay/large_n {cur:.0} elems/s vs baseline {base:.0} (ok)");
            }
        }
        None => {
            // First run ever: nothing to regress against.
            println!("bench_guard: no baseline for replay/large_n; skipping regression gate");
        }
    }

    // Gate 2: the indexed scan must stay >= 2x the reference scan.
    match throughput(&current, "sim_throughput", "replay/large_n_reference") {
        Some(reference) if reference > 0.0 => {
            let speedup = cur / reference;
            if speedup < MIN_SPEEDUP {
                eprintln!(
                    "bench_guard: indexed speedup {speedup:.2}x < {MIN_SPEEDUP}x \
                     (indexed {cur:.0} vs reference {reference:.0} elems/s)"
                );
                ok = false;
            } else {
                println!("bench_guard: indexed speedup {speedup:.2}x over reference (ok)");
            }
        }
        _ => {
            eprintln!("bench_guard: current run lacks sim_throughput/replay/large_n_reference");
            ok = false;
        }
    }

    // Gate 3: sharded scaling efficiency (parallelism-aware floor).
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    match (
        throughput(&current, "sim_throughput", "scaling/shards_1"),
        throughput(&current, "sim_throughput", "scaling/shards_4"),
    ) {
        (Some(seq), Some(sharded)) if seq > 0.0 => {
            let speedup = sharded / seq;
            let floor = if cpus >= SHARD_SPEEDUP_MIN_CPUS {
                MIN_SHARD_SPEEDUP
            } else {
                SHARD_OVERHEAD_FLOOR
            };
            if speedup < floor {
                eprintln!(
                    "bench_guard: 4-shard scaling {speedup:.2}x < {floor}x floor on \
                     {cpus}-CPU host (sharded {sharded:.0} vs sequential {seq:.0} elems/s)"
                );
                ok = false;
            } else {
                println!(
                    "bench_guard: 4-shard scaling {speedup:.2}x (floor {floor}x, \
                     {cpus} CPUs, ok)"
                );
            }
            // Ratchet: the 4-shard lane may not regress >20% against
            // the committed baseline (same host in CI, so this holds
            // the achieved efficiency wherever the floor is coarse).
            if let Some(base) = throughput(&baseline, "sim_throughput", "scaling/shards_4") {
                let floor = base * (1.0 - MAX_REGRESSION);
                if sharded < floor {
                    eprintln!(
                        "bench_guard: scaling/shards_4 regressed: {sharded:.0} elems/s < \
                         {floor:.0} (baseline {base:.0} - {:.0}%)",
                        MAX_REGRESSION * 100.0
                    );
                    ok = false;
                } else {
                    println!(
                        "bench_guard: scaling/shards_4 {sharded:.0} elems/s vs \
                         baseline {base:.0} (ok)"
                    );
                }
            } else {
                println!("bench_guard: no baseline for scaling/shards_4; skipping ratchet");
            }
        }
        _ => {
            eprintln!("bench_guard: current run lacks the scaling/shards_{{1,4}} lane");
            ok = false;
        }
    }

    // Gate 4: live load-serving lanes (looser, wall-clock ratchets).
    match throughput(&current, "live_load", "serve_smoke/rps") {
        Some(rps) => {
            match throughput(&baseline, "live_load", "serve_smoke/rps") {
                Some(base) => {
                    let floor = base * (1.0 - LIVE_MAX_REGRESSION);
                    if rps < floor {
                        eprintln!(
                            "bench_guard: serve_smoke/rps regressed: {rps:.0} req/s < \
                         {floor:.0} (baseline {base:.0} - {:.0}%)",
                            LIVE_MAX_REGRESSION * 100.0
                        );
                        ok = false;
                    } else {
                        println!("bench_guard: serve_smoke/rps {rps:.0} req/s vs baseline {base:.0} (ok)");
                    }
                }
                None => println!("bench_guard: no baseline for serve_smoke/rps; skipping ratchet"),
            }
        }
        None => {
            eprintln!("bench_guard: current run lacks live_load/serve_smoke/rps");
            ok = false;
        }
    }
    match bench_field(&current, "live_load", "serve_smoke/p99_wait", "median_ns") {
        Some(p99) => match bench_field(&baseline, "live_load", "serve_smoke/p99_wait", "median_ns")
        {
            Some(base) if base > 0.0 => {
                let ceiling = base * (1.0 + LIVE_MAX_REGRESSION);
                if p99 > ceiling {
                    eprintln!(
                        "bench_guard: serve_smoke/p99_wait regressed: {:.1} ms > \
                         {:.1} (baseline {:.1} + {:.0}%)",
                        p99 / 1e6,
                        ceiling / 1e6,
                        base / 1e6,
                        LIVE_MAX_REGRESSION * 100.0
                    );
                    ok = false;
                } else {
                    println!(
                        "bench_guard: serve_smoke/p99_wait {:.1} ms vs baseline {:.1} (ok)",
                        p99 / 1e6,
                        base / 1e6
                    );
                }
            }
            _ => println!("bench_guard: no baseline for serve_smoke/p99_wait; skipping ratchet"),
        },
        None => {
            eprintln!("bench_guard: current run lacks live_load/serve_smoke/p99_wait");
            ok = false;
        }
    }

    // Gate 5: the keep-warm memory ratchet — GB-seconds per served
    // request (deterministic, lower is better) may not grow >20%
    // against the committed baseline.
    match bench_field(
        &current,
        "live_load",
        "serve_smoke/gbs_per_req",
        "median_ns",
    ) {
        Some(gbs) => {
            match bench_field(
                &baseline,
                "live_load",
                "serve_smoke/gbs_per_req",
                "median_ns",
            ) {
                Some(base) if base > 0.0 => {
                    let ceiling = base * (1.0 + MAX_REGRESSION);
                    if gbs > ceiling {
                        eprintln!(
                            "bench_guard: serve_smoke/gbs_per_req regressed: {gbs:.4} GB-s/req > \
                             {ceiling:.4} (baseline {base:.4} + {:.0}%)",
                            MAX_REGRESSION * 100.0
                        );
                        ok = false;
                    } else {
                        println!(
                            "bench_guard: serve_smoke/gbs_per_req {gbs:.4} GB-s/req vs \
                             baseline {base:.4} (ok)"
                        );
                    }
                }
                _ => println!(
                    "bench_guard: no baseline for serve_smoke/gbs_per_req; skipping ratchet"
                ),
            }
        }
        None => {
            eprintln!("bench_guard: current run lacks live_load/serve_smoke/gbs_per_req");
            ok = false;
        }
    }

    // Gate 6: zero-cost-when-off. `replay/large_n` runs the engine with
    // the disabled no-op recorder, so this lane is the recorder-off hot
    // path. The 2% band is far tighter than run-to-run noise, so the
    // comparison is the current run's *best* sample (throughput scaled
    // from median_ns to min_ns) against the baseline median: noise
    // spares the best sample, a real hot-path leak does not.
    match (
        bench_field(&current, "sim_throughput", "replay/large_n", "median_ns"),
        bench_field(&current, "sim_throughput", "replay/large_n", "min_ns"),
    ) {
        (Some(median), Some(min)) if min > 0.0 => {
            let best = cur * median / min;
            match throughput(&baseline, "sim_throughput", "replay/large_n") {
                Some(base) => {
                    let floor = base * (1.0 - MAX_RECORDER_OVERHEAD);
                    if best < floor {
                        eprintln!(
                            "bench_guard: disabled recorder is not free: best replay/large_n \
                             sample {best:.0} elems/s < {floor:.0} (baseline {base:.0} - {:.0}%)",
                            MAX_RECORDER_OVERHEAD * 100.0
                        );
                        ok = false;
                    } else {
                        println!(
                            "bench_guard: recorder-off best {best:.0} elems/s vs \
                             baseline {base:.0} (within {:.0}%, ok)",
                            MAX_RECORDER_OVERHEAD * 100.0
                        );
                    }
                }
                None => {
                    println!("bench_guard: no baseline for replay/large_n; skipping recorder gate")
                }
            }
        }
        _ => {
            eprintln!("bench_guard: current run lacks replay/large_n timing fields");
            ok = false;
        }
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
