//! CLI for the CIDRE experiment suite.
//!
//! ```text
//! experiments <name|all|list> [--quick] [--tiny] [--out DIR] [--seed N] [--jobs N]
//!                             [--policies A,B] [--caches-gb N,M] [--workload azure|fc]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use cidre_bench::experiments::sweep::parse_list;
use cidre_bench::{registry, run_by_name, ExpCtx, Workload};

fn usage() {
    eprintln!("usage: experiments <name|all|list> [flags]");
    eprintln!("  --quick           reduced scale (fewer functions, shorter traces)");
    eprintln!("  --tiny            miniature scale (CI smoke; same as the goldens)");
    eprintln!("  --out DIR         CSV output directory (default: results)");
    eprintln!("  --seed N          workload generation seed (default: 42)");
    eprintln!("  --jobs N          worker threads for policy/cache fan-out");
    eprintln!("                    (default: 1; 0 = all cores; results identical)");
    eprintln!("  sweep only (flags win over SWEEP_* env vars):");
    eprintln!("  --policies A,B,C  policies to sweep");
    eprintln!("  --caches-gb N,M   paper-scale cache sizes in GB");
    eprintln!("  --workload W      azure or fc");
    eprintln!("       experiments list    # show all experiment names");
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(name) = args.next() else {
        usage();
        return ExitCode::FAILURE;
    };
    let mut ctx = ExpCtx::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => ctx.scale = cidre_bench::Scale::Quick,
            "--tiny" => ctx.scale = cidre_bench::Scale::Tiny,
            "--out" => match args.next() {
                Some(dir) => ctx.out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(seed) => ctx.seed = seed,
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match args.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(0) => ctx.jobs = faas_testkit::default_jobs(),
                Some(jobs) => ctx.jobs = jobs,
                None => {
                    eprintln!("--jobs requires an integer (0 = all cores)");
                    return ExitCode::FAILURE;
                }
            },
            "--policies" => match args.next().map(|s| parse_list(&s)) {
                Some(list) if !list.is_empty() => ctx.sweep.policies = Some(list),
                _ => {
                    eprintln!("--policies requires a non-empty comma-separated list");
                    return ExitCode::FAILURE;
                }
            },
            "--caches-gb" => {
                let parsed = args.next().map(|s| {
                    parse_list(&s)
                        .iter()
                        .map(|e| e.parse::<u64>())
                        .collect::<Result<Vec<u64>, _>>()
                });
                match parsed {
                    Some(Ok(list)) if !list.is_empty() => ctx.sweep.caches_gb = Some(list),
                    _ => {
                        eprintln!(
                            "--caches-gb requires a non-empty comma-separated list of integers"
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--workload" => match args.next().as_deref().and_then(Workload::from_name) {
                Some(w) => ctx.sweep.workload = Some(w),
                None => {
                    eprintln!("--workload requires `azure` or `fc`");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }

    if name == "list" {
        for exp in registry() {
            println!("{:<8} {}", exp.name, exp.description);
        }
        return ExitCode::SUCCESS;
    }

    println!(
        "CIDRE experiment suite — {} scale, seed {}, {} job{}, output {}",
        format!("{:?}", ctx.scale).to_lowercase(),
        ctx.seed,
        ctx.jobs,
        if ctx.jobs == 1 { "" } else { "s" },
        ctx.out_dir.display()
    );
    // lint:allow(W1): CLI progress timer only; never feeds a result.
    let start = std::time::Instant::now();
    if !run_by_name(&name, &ctx) {
        eprintln!("unknown experiment {name:?}; try `experiments list`");
        return ExitCode::FAILURE;
    }
    println!("done in {:.1}s", start.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}
