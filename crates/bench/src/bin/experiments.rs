//! CLI for the CIDRE experiment suite.
//!
//! ```text
//! experiments <name|all|list> [--quick] [--out DIR] [--seed N]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use cidre_bench::{registry, run_by_name, ExpCtx};

fn usage() {
    eprintln!("usage: experiments <name|all|list> [--quick] [--out DIR] [--seed N]");
    eprintln!("       experiments list    # show all experiment names");
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(name) = args.next() else {
        usage();
        return ExitCode::FAILURE;
    };
    let mut ctx = ExpCtx::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => ctx.scale = cidre_bench::Scale::Quick,
            "--out" => match args.next() {
                Some(dir) => ctx.out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(seed) => ctx.seed = seed,
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }

    if name == "list" {
        for exp in registry() {
            println!("{:<8} {}", exp.name, exp.description);
        }
        return ExitCode::SUCCESS;
    }

    println!(
        "CIDRE experiment suite — {} scale, seed {}, output {}",
        format!("{:?}", ctx.scale).to_lowercase(),
        ctx.seed,
        ctx.out_dir.display()
    );
    let start = std::time::Instant::now();
    if !run_by_name(&name, &ctx) {
        eprintln!("unknown experiment {name:?}; try `experiments list`");
        return ExitCode::FAILURE;
    }
    println!("done in {:.1}s", start.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}
