//! Open-loop load generator for the live executor-backed host.
//!
//! Builds a seeded arrival schedule ([`faas_testkit::Arrivals`]), turns
//! it into a trace, replays it on the live host (`faas_live`, wall
//! clock, async executor) *and* through the deterministic simulator,
//! then prints both sides: sustained requests/sec, p50 / p99 / p999
//! wait, and the warm / delayed-warm / cold class split. The schedule
//! is a pure function of the seed, so any run can be reproduced and
//! cross-checked byte-for-byte.
//!
//! Usage: `live_load [--smoke] [--no-report] [--seed=N] [--stack=cidre]`
//!
//! * `--smoke` — the CI configuration: ~1500 requests, finishes in
//!   about a second. The default (full) configuration keeps **>= 10 000
//!   requests in flight at once** and asserts that it did.
//! * `--no-report` — skip merging results into `BENCH_results.json`
//!   (used by the tier-1 smoke lane, which runs before the bench
//!   baseline snapshot).
//! * `--seed=N` — arrival-schedule seed (default 9).
//! * `--stack=cidre` — drive the CIDRE policy stack instead of the
//!   default FaasCache stack.
//!
//! The process exits non-zero when the live run drops a request, fails
//! its concurrency floor, or diverges from the simulator beyond the
//! documented noise bounds: class ratios within 0.25, p50/p99 wait
//! within 150 simulated ms (cold starts are 300 ms, so this tolerates
//! scheduling jitter but catches systematic distortion like an event
//! loop that cannot keep up). The extreme tail (p999) additionally
//! absorbs worst-case OS-scheduling and policy-cost hiccups on the
//! slowest handful of requests — real-time phenomena, so its bound is
//! a fixed real-millisecond budget that time compression scales into
//! simulated milliseconds.
//!
//! Both sides also report their cost ledgers (DESIGN.md §11). The live
//! ledger is charged in *virtual* time, so residency is dominated by
//! the deterministic execution schedule; only container lifetime
//! decisions (eviction timing, racer outcomes) differ under real
//! scheduling jitter. Total GB-seconds must therefore agree within a
//! 25% relative bound — loose enough for lifetime jitter, tight enough
//! to catch a charge class that drifts or double-counts.

use std::process::ExitCode;

use cidre_core::{cidre_stack, CidreConfig};
use faas_live::{run_live_stats, LiveConfig};
use faas_metrics::PercentileSink;
use faas_policies::faascache_stack;
use faas_sim::{run, PolicyStack, SimConfig, SimReport, StartClass};
use faas_testkit::{Arrivals, BenchStats, Harness};
use faas_trace::{FunctionId, FunctionProfile, Invocation, TimeDelta, TimePoint, Trace};

/// Class-ratio agreement bound between live and simulated runs.
const RATIO_TOLERANCE: f64 = 0.25;

/// Wait-percentile agreement bound, in simulated milliseconds.
const WAIT_TOLERANCE_MS: f64 = 150.0;

/// Extra real-time jitter budget for the p999 tail, in *real*
/// milliseconds; divided by the time scale to land in simulated units.
const TAIL_JITTER_REAL_MS: f64 = 60.0;

/// Relative live-vs-sim agreement bound on total ledger GB-seconds
/// (see the module docs for why virtual-time charging keeps this
/// tight).
const GBS_TOLERANCE: f64 = 0.25;

/// One load-generator configuration (all times simulated).
struct Scenario {
    /// Lane prefix in `BENCH_results.json` (`serve_smoke` / `serve_full`).
    lane: &'static str,
    requests: usize,
    functions: u32,
    /// Arrival window; with `exec` longer than it, every request
    /// overlaps every other.
    window: TimeDelta,
    exec: TimeDelta,
    /// Simulated-to-real compression (`0.05` = 1 s simulated in 50 ms).
    time_scale: f64,
    cache_gb: u64,
    /// Concurrency floor the live run must reach.
    min_inflight: u64,
}

impl Scenario {
    fn smoke() -> Self {
        Self {
            lane: "serve_smoke",
            requests: 1_500,
            functions: 8,
            window: TimeDelta::from_secs(10),
            exec: TimeDelta::from_secs(12),
            time_scale: 0.02,
            cache_gb: 100,
            min_inflight: 1_000,
        }
    }

    fn full() -> Self {
        // 12 000 requests over 40 simulated seconds (~170 us of real
        // time apart at 1:20 compression — above per-event policy
        // cost), each executing 60 s, so the in-flight population
        // climbs to the full 12 000. The cache is sized so capacity,
        // not eviction pressure, bounds the container count
        // (12 000 / 4 threads = 3 000 containers of 128 MB).
        Self {
            lane: "serve_full",
            requests: 12_000,
            functions: 8,
            window: TimeDelta::from_secs(40),
            exec: TimeDelta::from_secs(60),
            time_scale: 0.05,
            cache_gb: 400,
            min_inflight: 10_000,
        }
    }

    /// The seeded trace: Poisson arrivals over `window`, functions
    /// assigned round-robin, fixed execution time.
    fn trace(&self, seed: u64) -> Trace {
        let profiles: Vec<FunctionProfile> = (0..self.functions)
            .map(|i| {
                FunctionProfile::new(
                    FunctionId(i),
                    format!("f{i}"),
                    128,
                    TimeDelta::from_millis(300),
                )
            })
            .collect();
        let rate = self.requests as f64 / (self.window.as_millis_f64() / 1e3);
        let invs: Vec<Invocation> = Arrivals::poisson(seed, rate)
            .take(self.requests)
            .enumerate()
            .map(|(i, at_us)| Invocation {
                func: FunctionId(i as u32 % self.functions),
                arrival: TimePoint::from_micros(at_us),
                exec: self.exec,
            })
            .collect();
        Trace::new(profiles, invs).expect("generated trace is valid")
    }
}

/// p50 / p99 / p999 of per-request wait, in simulated milliseconds.
fn wait_sink(report: &SimReport) -> PercentileSink {
    let mut sink = PercentileSink::latency();
    for r in &report.requests {
        sink.record(r.wait.as_millis_f64());
    }
    sink
}

fn ratio_line(report: &SimReport) -> String {
    format!(
        "warm {:.3}  delayed-warm {:.3}  cold {:.3}",
        report.ratio(StartClass::Warm),
        report.ratio(StartClass::DelayedWarm),
        report.ratio(StartClass::Cold),
    )
}

/// One side's cost-ledger columns (DESIGN.md §11), in GB-seconds.
fn ledger_line(report: &SimReport) -> String {
    let l = &report.ledger;
    format!(
        "keep-warm {:.1} GB-s  idle {:.1} GB-s  cold-start {:.1} GB-s  \
         speculative {:.1} GB-s  {:.4} GB-s/req",
        l.keep_warm_gb_s(),
        l.idle_gb_s(),
        l.cold_start_gb_s(),
        l.speculative_gb_s(),
        report.gb_s_per_request(),
    )
}

fn percentile_line(sink: &PercentileSink) -> String {
    let q = |p: f64| sink.quantile(p).unwrap_or(f64::NAN);
    format!(
        "p50 {:.1} ms  p99 {:.1} ms  p999 {:.1} ms",
        q(0.50),
        q(0.99),
        q(0.999),
    )
}

/// Flat single-sample [`BenchStats`] for an externally measured value.
fn external_stat(name: String, ns: f64, elems_per_iter: Option<u64>, iters: u64) -> BenchStats {
    BenchStats {
        name,
        samples: 1,
        iters_per_sample: iters,
        median_ns: ns,
        p95_ns: ns,
        mean_ns: ns,
        min_ns: ns,
        max_ns: ns,
        elems_per_iter,
    }
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut report_results = true;
    let mut seed = 9u64;
    let mut cidre = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--no-report" => report_results = false,
            "--stack=cidre" => cidre = true,
            a if a.starts_with("--seed=") => {
                seed = match a["--seed=".len()..].parse() {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("live_load: bad --seed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!(
                    "live_load: unknown argument {other}\n\
                     usage: live_load [--smoke] [--no-report] [--seed=N] [--stack=cidre]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let scenario = if smoke {
        Scenario::smoke()
    } else {
        Scenario::full()
    };
    let mk: fn() -> PolicyStack = if cidre {
        || cidre_stack(CidreConfig::default())
    } else {
        faascache_stack
    };
    let stack_name = if cidre { "cidre" } else { "faascache" };
    println!(
        "live_load: {} requests over {:.0} s simulated, exec {:.0} s, seed {seed}, \
         stack {stack_name}, 1:{:.0} compression",
        scenario.requests,
        scenario.window.as_millis_f64() / 1e3,
        scenario.exec.as_millis_f64() / 1e3,
        1.0 / scenario.time_scale,
    );

    let trace = scenario.trace(seed);
    let sim_cfg = SimConfig::with_cache_gb(scenario.cache_gb).container_threads(4);
    let live_cfg = LiveConfig::default()
        .sim(sim_cfg.clone())
        .time_scale(scenario.time_scale);

    let simulated = run(&trace, &sim_cfg, mk());
    let (live, stats) = run_live_stats(&trace, &live_cfg, mk());

    let sim_sink = wait_sink(&simulated);
    let live_sink = wait_sink(&live);
    println!("  sim : {}", ratio_line(&simulated));
    println!("        {}", percentile_line(&sim_sink));
    println!("        {}", ledger_line(&simulated));
    println!("  live: {}", ratio_line(&live));
    println!("        {}", percentile_line(&live_sink));
    println!("        {}", ledger_line(&live));
    let rps = live.requests.len() as f64 / stats.wall.as_secs_f64();
    println!(
        "  live: {} requests in {:.2} s wall = {:.0} req/s sustained; \
         peak in-flight {}, peak tasks {}, {} workers",
        live.requests.len(),
        stats.wall.as_secs_f64(),
        rps,
        stats.peak_inflight,
        stats.peak_tasks,
        stats.workers,
    );
    println!(
        "  live: peak blocking threads {}, timer fires {}",
        stats.peak_blocking_threads, stats.timer_fires,
    );

    let mut ok = true;
    if live.requests.len() != trace.len() {
        eprintln!(
            "live_load: dropped requests: {} served of {}",
            live.requests.len(),
            trace.len()
        );
        ok = false;
    }
    if stats.peak_inflight < scenario.min_inflight {
        eprintln!(
            "live_load: concurrency floor missed: peak in-flight {} < {}",
            stats.peak_inflight, scenario.min_inflight
        );
        ok = false;
    }
    for class in [StartClass::Warm, StartClass::DelayedWarm, StartClass::Cold] {
        let (s, l) = (simulated.ratio(class), live.ratio(class));
        if (s - l).abs() > RATIO_TOLERANCE {
            eprintln!("live_load: {class:?} ratio diverged: sim {s:.3} vs live {l:.3}");
            ok = false;
        }
    }
    for p in [0.50, 0.99, 0.999] {
        let (s, l) = (
            sim_sink.quantile(p).unwrap_or(0.0),
            live_sink.quantile(p).unwrap_or(0.0),
        );
        let mut bound = WAIT_TOLERANCE_MS;
        if p == 0.999 {
            bound += TAIL_JITTER_REAL_MS / scenario.time_scale;
        }
        if (s - l).abs() > bound {
            eprintln!(
                "live_load: p{:.0} wait diverged: sim {s:.1} ms vs live {l:.1} ms \
                 (bound {bound:.0} ms)",
                p * 1e3
            );
            ok = false;
        }
    }
    {
        let (s, l) = (simulated.ledger.total_gb_s(), live.ledger.total_gb_s());
        if (s - l).abs() > GBS_TOLERANCE * s.max(l) {
            eprintln!(
                "live_load: total GB-seconds diverged: sim {s:.1} vs live {l:.1} \
                 (relative bound {GBS_TOLERANCE})"
            );
            ok = false;
        }
    }

    if report_results {
        let mut harness = Harness::new("live_load");
        // Sustained request rate: one "iteration" per request, so the
        // derived throughput_elems_per_sec is requests per wall second.
        harness.record(external_stat(
            format!("{}/rps", scenario.lane),
            stats.wall.as_nanos() as f64 / live.requests.len().max(1) as f64,
            Some(1),
            live.requests.len() as u64,
        ));
        // Tail wait, stored as simulated nanoseconds in median_ns so
        // bench_guard can ratchet it (lower is better).
        harness.record(external_stat(
            format!("{}/p99_wait", scenario.lane),
            live_sink.quantile(0.99).unwrap_or(0.0) * 1e6,
            None,
            live.requests.len() as u64,
        ));
        // Memory bill per request, taken from the *deterministic*
        // simulator side of the same workload (the live side agrees
        // within GBS_TOLERANCE, checked above). Stored raw in
        // `median_ns` — a plain scalar, lower is better — so
        // bench_guard can ratchet it tightly (Gate 5).
        harness.record(external_stat(
            format!("{}/gbs_per_req", scenario.lane),
            simulated.gb_s_per_request(),
            None,
            live.requests.len() as u64,
        ));
        // Executor concurrency counters, stored as plain scalars in
        // `median_ns`: the blocking-pool high-water mark tracks
        // concurrently *running* handlers (a thread-per-request
        // regression shows up here first), and timer fires count every
        // scheduled event the reactor actually delivered.
        harness.record(external_stat(
            format!("{}/peak_blocking", scenario.lane),
            stats.peak_blocking_threads as f64,
            None,
            live.requests.len() as u64,
        ));
        harness.record(external_stat(
            format!("{}/timer_fires", scenario.lane),
            stats.timer_fires as f64,
            None,
            live.requests.len() as u64,
        ));
        harness.finish();
    }

    if ok {
        println!("live_load: ok");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
