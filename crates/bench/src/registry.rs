//! Experiment registry: names, descriptions, and dispatch.

use crate::experiments;
use crate::ExpCtx;

/// One registered experiment.
#[derive(Clone, Copy)]
pub struct Experiment {
    /// Subcommand name (e.g. `fig12`).
    pub name: &'static str,
    /// One-line description shown by `experiments list`.
    pub description: &'static str,
    /// Entry point.
    pub run: fn(&ExpCtx),
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("name", &self.name)
            .finish()
    }
}

/// All experiments in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "table1",
            description: "workload statistics (requests, Rps, GBps)",
            run: experiments::table1::run,
        },
        Experiment {
            name: "fig2",
            description: "cold-start/exec-time ratio CDFs",
            run: experiments::fig2::run,
        },
        Experiment {
            name: "fig3",
            description: "function concurrency CDFs",
            run: experiments::fig3::run,
        },
        Experiment {
            name: "fig5",
            description: "queueing vs cold-start tradeoff CDFs (Azure)",
            run: experiments::fig5_6::run_fig5,
        },
        Experiment {
            name: "fig6",
            description: "queueing vs cold-start tradeoff CDFs (FC)",
            run: experiments::fig5_6::run_fig6,
        },
        Experiment {
            name: "fig7",
            description: "busy-container queue length sweep L in {0,1,2}",
            run: experiments::fig7::run,
        },
        Experiment {
            name: "fig8",
            description: "FaasCache vs FaasCache-C eviction",
            run: experiments::fig8::run,
        },
        Experiment {
            name: "fig9",
            description: "opportunity space vs cold-start overhead",
            run: experiments::fig9_10::run_fig9,
        },
        Experiment {
            name: "fig10",
            description: "opportunity space vs execution time",
            run: experiments::fig9_10::run_fig10,
        },
        Experiment {
            name: "fig12",
            description: "all policies x cache sizes 80-160 GB (heavy)",
            run: experiments::fig12::run,
        },
        Experiment {
            name: "fig13",
            description: "overhead + E2E CDFs at 100 GB",
            run: experiments::fig13::run,
        },
        Experiment {
            name: "fig14",
            description: "BSS on/off at 37-worker production scale",
            run: experiments::fig14::run,
        },
        Experiment {
            name: "fig15",
            description: "ablation: FC / CIP / BSS / CSS / CIDRE",
            run: experiments::fig15::run,
        },
        Experiment {
            name: "fig16",
            description: "memory usage vs concurrency level",
            run: experiments::fig16::run,
        },
        Experiment {
            name: "fig17",
            description: "Te estimator sensitivity",
            run: experiments::fig17::run,
        },
        Experiment {
            name: "fig18",
            description: "sliding-window size sensitivity",
            run: experiments::fig18::run,
        },
        Experiment {
            name: "fig19",
            description: "IAT (load) scaling sensitivity",
            run: experiments::fig19::run,
        },
        Experiment {
            name: "fig20",
            description: "execution-time scaling (incl. Table 2)",
            run: experiments::fig20::run,
        },
        Experiment {
            name: "table2",
            description: "alias of fig20 (same run emits Table 2)",
            run: experiments::fig20::run,
        },
        Experiment {
            name: "fig21",
            description: "intra-container thread count sweep",
            run: experiments::fig21::run,
        },
        Experiment {
            name: "placement",
            description: "extra: worker-placement ablation (beyond the paper)",
            run: experiments::extra_placement::run,
        },
        Experiment {
            name: "variance",
            description: "extra: section 2.6 execution-time variance analysis",
            run: experiments::extra_variance::run,
        },
        Experiment {
            name: "faults",
            description: "extra: policy degradation under injected failures",
            run: experiments::faults::run,
        },
        Experiment {
            name: "pareto",
            description: "extra: latency vs memory-cost frontier per policy",
            run: experiments::pareto::run,
        },
        Experiment {
            name: "trace",
            description: "extra: latency waterfalls + Chrome trace export per policy",
            run: experiments::trace::run,
        },
        Experiment {
            name: "sweep",
            description: "custom policy x cache sweep (SWEEP_* env vars)",
            run: experiments::sweep::run,
        },
    ]
}

/// Runs one experiment by name, or every experiment for `"all"`.
/// Returns `false` if the name is unknown.
pub fn run_by_name(name: &str, ctx: &ExpCtx) -> bool {
    if name == "all" {
        let mut seen = std::collections::HashSet::new();
        for exp in registry() {
            // `table2` aliases fig20 (same runner); `sweep` is an
            // interactive tool, not a paper artifact.
            if exp.name != "sweep" && seen.insert(exp.run as usize) {
                (exp.run)(ctx);
                crate::say!();
            }
        }
        return true;
    }
    match registry().into_iter().find(|e| e.name == name) {
        Some(exp) => {
            (exp.run)(ctx);
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        let names: Vec<&str> = registry().iter().map(|e| e.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn registry_covers_every_paper_artifact() {
        let names: Vec<&str> = registry().iter().map(|e| e.name).collect();
        for required in [
            "table1", "table2", "fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
            "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
            "fig21",
        ] {
            assert!(names.contains(&required), "missing experiment {required}");
        }
    }

    #[test]
    fn unknown_name_reports_false() {
        let ctx = ExpCtx::quick();
        assert!(!run_by_name("figNaN", &ctx));
    }
}
