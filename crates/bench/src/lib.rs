//! Experiment harness regenerating every table and figure of the CIDRE
//! paper's evaluation (see `DESIGN.md` §5 for the experiment index).
//!
//! Each experiment is a function over an [`ExpCtx`] that prints the
//! paper's rows/series to stdout and writes CSV files under the output
//! directory. The `experiments` binary exposes them as subcommands:
//!
//! ```text
//! cargo run --release -p cidre-bench --bin experiments -- fig12 --quick
//! cargo run --release -p cidre-bench --bin experiments -- all
//! ```
//!
//! `--quick` shrinks the workloads (fewer functions, shorter traces,
//! proportionally smaller caches) so the full suite runs in minutes; the
//! default scale matches the paper's sampled workloads (Table 1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};

pub mod experiments;
mod registry;
pub mod workloads;

/// Global quiet switch: when set, experiment narration (tables, charts,
/// per-run progress lines) is suppressed. The Criterion `figures` bench
/// enables this so `cargo bench` logs stay reasonable; CSV outputs are
/// still written.
static QUIET: AtomicBool = AtomicBool::new(false);

/// Enables or disables experiment narration globally.
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::Relaxed);
}

/// Whether experiment narration is currently suppressed.
pub fn is_quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

/// `println!` that respects the global quiet switch.
#[macro_export]
macro_rules! say {
    ($($arg:tt)*) => {
        if !$crate::is_quiet() {
            // lint:allow(P1): say! *is* the narration sink every other
            // print routes through; the quiet switch is its off knob.
            println!($($arg)*);
        }
    };
}

pub use registry::{registry, run_by_name, Experiment};
pub use workloads::{ExpCtx, Scale, SweepOverrides, Workload};
