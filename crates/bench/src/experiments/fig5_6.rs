//! Figs. 5 & 6: the reuse-busy vs cold-start tradeoff, quantified.
//!
//! Methodology (§2.4): a modified FaasCache routes every would-be cold
//! start to the busy warm container with the shortest queue instead. For
//! each such delayed warm start we record (a) the queueing latency it
//! actually paid and (b) the cold-start latency it would have paid.
//!
//! Paper shape: on Azure the two CDFs cross (at 464 ms; ≈69.4% of
//! requests see shorter queueing); on FC queueing essentially always
//! wins because executions are short relative to cold starts.

use faas_metrics::{AsciiChart, Cdf, Table};
use faas_sim::StartClass;
use faas_trace::Trace;

use crate::workloads::run_policy_stack;
use crate::{ExpCtx, Workload};

fn tradeoff(ctx: &ExpCtx, w: Workload, fig: &str) {
    // The paper's Fig. 5 replays the 24-hour Azure trace (170 rps
    // average, Table 1) — roughly half the 30-minute sample's arrival
    // rate — so the Azure what-if runs at halved load; the FC what-if
    // uses its 30-minute trace directly.
    let trace = match w {
        Workload::Azure => faas_trace::transform::scale_iat(&ctx.trace(w), 2.0),
        Workload::Fc => ctx.trace(w),
    };
    let config = ctx.sim_config(100);
    let stack = faas_policies::faascache_queue_stack(None);
    let report = run_policy_stack("faascache+queue", stack, &trace, &config);

    // Queueing latency actually experienced by delayed warm starts, and
    // the cold-start latency each would have paid instead.
    let queueing: Cdf = report
        .requests
        .iter()
        .filter(|r| r.class == StartClass::DelayedWarm)
        .map(|r| r.wait.as_millis_f64())
        .collect();
    let cold: Cdf = report
        .requests
        .iter()
        .filter(|r| r.class == StartClass::DelayedWarm)
        .map(|r| counterfactual_cold(&trace, r.func))
        .collect();

    let crossover = queueing.crossover_with(&cold, 10_000);
    let frac_better = match crossover {
        Some(x) => queueing.fraction_at_or_below(x),
        None => {
            // No crossing: one curve dominates; report the fraction of
            // queueing delays below the median cold start.
            queueing.fraction_at_or_below(cold.quantile(0.5))
        }
    };

    let mut table = Table::new(["series", "p50 [ms]", "p90 [ms]", "p99 [ms]"]);
    for (name, cdf) in [
        ("queuing latency", &queueing),
        ("cold start latency", &cold),
    ] {
        if cdf.is_empty() {
            table.row([name.to_string(), "-".into(), "-".into(), "-".into()]);
            continue;
        }
        table.row([
            name.to_string(),
            format!("{:.1}", cdf.quantile(0.50)),
            format!("{:.1}", cdf.quantile(0.90)),
            format!("{:.1}", cdf.quantile(0.99)),
        ]);
    }
    crate::say!("{table}");
    match crossover {
        Some(x) => crate::say!(
            "  CDFs cross at {x:.0} ms; {:.1}% of queueing delays fall below the crossover",
            frac_better * 100.0
        ),
        None => crate::say!(
            "  no crossover: queueing dominates ({:.1}% of queueing delays below the median cold start)",
            frac_better * 100.0
        ),
    }
    let mut chart = AsciiChart::new(60, 12);
    chart.cdf("queuing", &queueing, 60);
    chart.cdf("cold", &cold, 60);
    crate::say!("{chart}");
    ctx.save_csv(fig, &table);
}

fn counterfactual_cold(trace: &Trace, func: faas_trace::FunctionId) -> f64 {
    trace
        .function(func)
        .expect("trace invariant")
        .cold_start
        .as_millis_f64()
}

/// Runs the Fig. 5 reproduction (Azure).
pub fn run_fig5(ctx: &ExpCtx) {
    crate::say!("== Fig. 5: queueing vs cold start tradeoff (Azure) ==");
    tradeoff(ctx, Workload::Azure, "fig5");
}

/// Runs the Fig. 6 reproduction (FC).
pub fn run_fig6(ctx: &ExpCtx) {
    crate::say!("== Fig. 6: queueing vs cold start tradeoff (FC) ==");
    tradeoff(ctx, Workload::Fc, "fig6");
}
