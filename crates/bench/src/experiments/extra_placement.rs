//! Extra (beyond the paper): worker-placement ablation.
//!
//! The paper's OpenLambda deployment dispatches to workers with a fixed
//! scheduler; our simulator makes the placement strategy explicit
//! (`SimConfig::placement`). This ablation quantifies how much the
//! choice matters for a keep-alive policy: packing placements (FirstFit)
//! concentrate eviction pressure on one worker's cache, while balanced
//! placements (MaxFree) spread it; RoundRobin sits between.

use faas_metrics::Table;
use faas_policies::faascache_stack;
use faas_sim::{Placement, StartClass};

use cidre_core::{cidre_stack, CidreConfig};

use crate::workloads::run_policy_stack;
use crate::{ExpCtx, Workload};

/// Runs the placement ablation.
pub fn run(ctx: &ExpCtx) {
    crate::say!("== Extra: worker-placement ablation (Azure, 100 GB) ==");
    let trace = ctx.trace(Workload::Azure);
    let mut table = Table::new([
        "placement",
        "policy",
        "avg overhead ratio [%]",
        "cold [%]",
        "evictions",
    ]);
    for placement in [
        Placement::MaxFree,
        Placement::RoundRobin,
        Placement::FirstFit,
    ] {
        let config = ctx.sim_config(100).placement(placement);
        for (name, stack) in [
            ("faascache", faascache_stack()),
            ("cidre", cidre_stack(CidreConfig::default())),
        ] {
            let label = format!("{name}/{placement:?}");
            let report = run_policy_stack(&label, stack, &trace, &config);
            table.row([
                format!("{placement:?}"),
                name.to_string(),
                format!("{:.1}", report.avg_overhead_ratio() * 100.0),
                format!("{:.1}", report.ratio(StartClass::Cold) * 100.0),
                format!("{}", report.containers_evicted),
            ]);
        }
    }
    crate::say!("{table}");
    ctx.save_csv("extra_placement", &table);
}
