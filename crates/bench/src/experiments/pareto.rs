//! Latency-vs-overhead Pareto sweep (beyond the paper): what does each
//! policy's latency win *cost* in memory residency?
//!
//! Replays one workload under a grid of policies — including a TTL
//! keep-warm-aggressiveness axis (`ttl@5s` … `ttl@600s`) — crossed
//! with fault plans, and emits one row per cell with the latency
//! objective (average overhead ratio), the cost ledger broken out by
//! charge class (DESIGN.md §11), the GB-seconds-per-request bill, the
//! scheduling-work counters, and a `frontier` flag marking the
//! non-dominated points of each fault-plan group. Everything is a
//! deterministic function of the context seed, so the table and CSV
//! are byte-identical across runs, `--jobs`, and shard counts —
//! asserted by `tests/determinism.rs`.

use faas_metrics::{pareto_frontier, ParetoPoint, Table};
use faas_sim::StartClass;

use crate::experiments::faults::plan_for;
use crate::workloads::run_policy_batch;
use crate::{ExpCtx, Workload};

/// Fault plans crossed with the policy grid: a healthy substrate and a
/// faulty one (same schedule as the `faults` sweep at rate 0.1).
pub const FAULT_RATES: &[f64] = &[0.0, 0.1];

/// The policy grid: the TTL aggressiveness axis, the headline
/// baselines, and both CIDRE stacks.
pub const POLICIES: &[&str] = &[
    "ttl@5s",
    "ttl@30s",
    "ttl@600s",
    "lru",
    "faascache",
    "rainbowcake",
    "cidre-bss",
    "cidre",
];

/// Runs the Pareto sweep.
pub fn run(ctx: &ExpCtx) {
    crate::say!("== Pareto: latency vs memory-residency cost per policy (Azure) ==");
    let trace = ctx.trace(Workload::Azure);
    let scenarios: Vec<(String, _)> = FAULT_RATES
        .iter()
        .flat_map(|&rate| {
            POLICIES.iter().map(move |p| {
                (
                    p.to_string(),
                    // 240 GB paper-scale: enough headroom that expiry
                    // choices (not REPLACE pressure) decide the resident
                    // set, making the TTL axis a real trade-off.
                    ctx.sim_config(240).faults(plan_for(ctx.seed, rate)),
                )
            })
        })
        .collect();
    let reports = run_policy_batch(ctx, &trace, &scenarios);

    // Frontier membership is judged within each fault-plan group: a
    // policy should only be compared against peers facing the same
    // failure schedule.
    let mut frontier = Vec::with_capacity(reports.len());
    for group in reports.chunks(POLICIES.len()) {
        let points: Vec<ParetoPoint> = group
            .iter()
            .zip(POLICIES)
            .map(|(r, p)| ParetoPoint {
                label: (*p).to_string(),
                latency: r.avg_overhead_ratio(),
                cost: r.gb_s_per_request(),
            })
            .collect();
        frontier.extend(pareto_frontier(&points));
    }

    let mut table = Table::new([
        "failure rate",
        "policy",
        "avg overhead ratio [%]",
        "cold [%]",
        "warm [%]",
        "keep-warm [GB-s]",
        "idle [GB-s]",
        "cold-start [GB-s]",
        "speculative [GB-s]",
        "GB-s/request",
        "dispatches",
        "replace rounds",
        "frontier",
    ]);
    let grid = FAULT_RATES
        .iter()
        .flat_map(|&rate| POLICIES.iter().map(move |p| (rate, p)));
    for (((rate, policy), report), on_frontier) in grid.zip(&reports).zip(&frontier) {
        let ledger = &report.ledger;
        table.row([
            format!("{rate:.2}"),
            policy.to_string(),
            format!("{:.2}", report.avg_overhead_ratio() * 100.0),
            format!("{:.1}", report.ratio(StartClass::Cold) * 100.0),
            format!("{:.1}", report.ratio(StartClass::Warm) * 100.0),
            format!("{:.3}", ledger.keep_warm_gb_s()),
            format!("{:.3}", ledger.idle_gb_s()),
            format!("{:.3}", ledger.cold_start_gb_s()),
            format!("{:.3}", ledger.speculative_gb_s()),
            format!("{:.6}", report.gb_s_per_request()),
            format!("{}", ledger.dispatches),
            format!("{}", ledger.replace_rounds),
            if *on_frontier { "yes" } else { "no" }.to_string(),
        ]);
    }
    crate::say!("{table}");
    ctx.save_csv("pareto", &table);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_fault_major_policy_minor() {
        // The frontier chunking above relies on the scenario grid
        // iterating policies within each fault rate.
        let labels: Vec<(f64, &str)> = FAULT_RATES
            .iter()
            .flat_map(|&rate| POLICIES.iter().map(move |&p| (rate, p)))
            .collect();
        assert_eq!(labels.len(), FAULT_RATES.len() * POLICIES.len());
        assert_eq!(labels[0], (0.0, "ttl@5s"));
        assert_eq!(labels[POLICIES.len()], (0.1, "ttl@5s"));
    }

    #[test]
    fn ttl_axis_names_resolve() {
        let trace = faas_trace::gen::azure(1).functions(3).minutes(1).build();
        for name in POLICIES {
            let stack = crate::workloads::stack_by_name(name, &trace);
            assert!(!stack.label().is_empty());
        }
    }
}
