//! Fig. 2: CDF of cold-start latency to execution time ratios.
//!
//! Paper shape: with the 1–3 ms/MB estimates on Azure and the measured FC
//! cold starts, a large fraction of requests (40.4% on FC) have a ratio
//! above 1 — cold starts rival or dwarf execution.

use faas_metrics::{AsciiChart, Cdf, Table};
use faas_trace::stats::cold_exec_ratio_cdf;

use crate::{ExpCtx, Workload};

/// Runs the Fig. 2 reproduction.
pub fn run(ctx: &ExpCtx) {
    crate::say!("== Fig. 2: cold start latency / execution time CDFs ==");
    let azure = ctx.trace(Workload::Azure);
    let fc = ctx.trace(Workload::Fc);

    // The Azure generator bakes in 1.5 ms/MB; rescale to the paper's
    // f = 1, 2, 3 ms/MB estimates.
    let series: Vec<(String, Cdf)> = [1.0, 2.0, 3.0]
        .iter()
        .map(|f| (format!("azure f={f}"), cold_exec_ratio_cdf(&azure, f / 1.5)))
        .chain(std::iter::once((
            "fc".to_string(),
            cold_exec_ratio_cdf(&fc, 1.0),
        )))
        .collect();

    let mut table = Table::new(["series", "p10", "p50", "p90", "frac ratio>1"]);
    let mut chart = AsciiChart::new(60, 12);
    for (name, cdf) in &series {
        table.row([
            name.clone(),
            format!("{:.3}", cdf.quantile(0.10)),
            format!("{:.3}", cdf.quantile(0.50)),
            format!("{:.3}", cdf.quantile(0.90)),
            format!("{:.1}%", (1.0 - cdf.fraction_at_or_below(1.0)) * 100.0),
        ]);
        // Plot in log10(ratio) space like the paper's log axis.
        let pts: Vec<(f64, f64)> = cdf
            .plot_points(60)
            .into_iter()
            .filter(|&(x, _)| x > 0.0)
            .map(|(x, y)| (x.log10(), y))
            .collect();
        chart.series(name.clone(), pts);
    }
    crate::say!("{table}");
    crate::say!("{chart}");
    ctx.save_csv("fig2", &table);
}
