//! One module per table/figure of the paper's evaluation.
//!
//! Every experiment takes an [`crate::ExpCtx`], prints the paper's
//! rows/series, and writes CSVs under the output directory. The mapping
//! from module to paper artifact is in `DESIGN.md` §5; the measured
//! results are recorded against the paper's claims in `EXPERIMENTS.md`.

pub mod extra_placement;
pub mod extra_variance;
pub mod faults;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig2;
pub mod fig20;
pub mod fig21;
pub mod fig3;
pub mod fig5_6;
pub mod fig7;
pub mod fig8;
pub mod fig9_10;
pub mod pareto;
pub mod sweep;
pub mod table1;
pub mod trace;
