//! Latency waterfall sweep (observability): where does each policy's
//! end-to-end latency actually go?
//!
//! Replays the Azure workload under the headline policies on a faulty
//! substrate (same deterministic schedule as the `faults` sweep at
//! rate 0.1) with the trace recorder enabled, decomposes every
//! request's latency into queue / provision / retry / exec segments
//! (DESIGN.md §12), and aggregates per policy × start class. Emits the
//! per-class table and CSV, an ASCII waterfall sketch, and a
//! Perfetto-loadable Chrome trace-event JSON per policy under the
//! output directory. Everything is a deterministic function of the
//! context seed — byte-identical across runs, `--jobs`, and shard
//! counts — asserted by `tests/determinism.rs` and the `ci.sh`
//! double-run diff lane.

use faas_metrics::{AsciiWaterfall, Table};
use faas_obs::waterfall::{summarize_by_class, SEGMENT_NAMES};
use faas_sim::run_traced;

use crate::experiments::faults::plan_for;
use crate::workloads::{say_run, stack_by_name};
use crate::{ExpCtx, Workload};

/// Policies under the waterfall lens: the strongest baseline plus both
/// CIDRE stacks (the same line-up as the `faults` sweep, so the two
/// tables cross-reference).
pub const POLICIES: &[&str] = &["faascache", "cidre-bss", "cidre"];

/// Provision-failure rate of the substrate: non-zero so the retry and
/// provisioning segments of the decomposition are actually exercised.
pub const FAULT_RATE: f64 = 0.1;

/// Chrome trace-event export filename for one policy.
pub fn export_name(policy: &str) -> String {
    format!("trace_{policy}.json")
}

/// Runs the waterfall sweep.
pub fn run(ctx: &ExpCtx) {
    crate::say!("== Trace: latency waterfalls per policy x start class (Azure, faulty) ==");
    let trace = ctx.trace(Workload::Azure);
    let config = ctx.sim_config(100).faults(plan_for(ctx.seed, FAULT_RATE));
    // One traced run per policy, fanned out like `run_policy_batch`:
    // results (and therefore narration, tables, CSVs, and exports) are
    // collected in input order, so `--jobs` never perturbs a byte.
    let runs = faas_testkit::par_map(POLICIES, ctx.jobs, |_, name| {
        run_traced(&trace, &config, stack_by_name(name, &trace))
    });

    let mut table = Table::new([
        "policy",
        "class",
        "requests",
        "queue [ms]",
        "provision [ms]",
        "retry [ms]",
        "exec [ms]",
        "total [ms]",
        "events",
    ]);
    let mut chart = AsciiWaterfall::new(48, SEGMENT_NAMES.map(String::from).to_vec());
    for (policy, (report, log)) in POLICIES.iter().zip(&runs) {
        say_run(policy, report);
        let summaries = summarize_by_class(&log.waterfalls());
        for summary in &summaries {
            let mean = summary.mean_ms();
            table.row([
                (*policy).to_string(),
                summary.class.label().to_string(),
                format!("{}", summary.count),
                format!("{:.3}", mean[0]),
                format!("{:.3}", mean[1]),
                format!("{:.3}", mean[2]),
                format!("{:.3}", mean[3]),
                format!("{:.3}", mean.iter().sum::<f64>()),
                format!("{}", log.len()),
            ]);
            if summary.count > 0 {
                chart.row(format!("{policy}/{}", summary.class.label()), mean.to_vec());
            }
        }
        ctx.save_text(&export_name(policy), &log.to_chrome_json());
    }
    crate::say!("{chart}");
    crate::say!("{table}");
    ctx.save_csv("trace", &table);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_resolve_and_name_exports() {
        let trace = faas_trace::gen::azure(1).functions(3).minutes(1).build();
        for name in POLICIES {
            let stack = stack_by_name(name, &trace);
            assert!(!stack.label().is_empty());
            assert!(export_name(name).ends_with(".json"));
        }
    }

    #[test]
    fn tiny_run_emits_all_artifacts() {
        crate::set_quiet(true);
        let out = std::env::temp_dir().join(format!("cidre-trace-exp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&out);
        let mut ctx = ExpCtx::tiny();
        ctx.out_dir = out.clone();
        run(&ctx);
        assert!(out.join("trace.csv").exists());
        for policy in POLICIES {
            let json = std::fs::read_to_string(out.join(export_name(policy)))
                .expect("chrome export written");
            faas_testkit::json::Value::parse(&json).expect("export is valid JSON");
        }
        let _ = std::fs::remove_dir_all(&out);
        crate::set_quiet(false);
    }
}
