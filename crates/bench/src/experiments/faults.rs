//! Failure-path experiment (beyond the paper): how do the CIDRE stacks
//! degrade as the substrate becomes unreliable?
//!
//! Sweeps a provision-failure rate (with correlated cold-start
//! stragglers and two scheduled worker crashes) across the headline
//! policies and reports the overhead ratio, start-class mix, and fault
//! counters. The fault schedule is a deterministic function of the
//! context seed and the failure rate, so the table and CSV are
//! byte-identical across runs — asserted by `tests/determinism.rs`.

use faas_metrics::Table;
use faas_sim::{FaultPlan, StartClass, WorkerId};
use faas_trace::{TimeDelta, TimePoint};

use crate::workloads::run_policy_batch;
use crate::{ExpCtx, Workload};

/// The failure-rate sweep: from a healthy substrate to one where a
/// fifth of provisions time out.
pub const RATES: &[f64] = &[0.0, 0.05, 0.1, 0.2];

/// Policies under test: the strongest baseline plus both CIDRE stacks.
pub const POLICIES: &[&str] = &["faascache", "cidre-bss", "cidre"];

/// The deterministic fault schedule for one (seed, rate) cell: failures
/// at `rate`, stragglers at half that rate, and two worker crashes
/// partway through the run. A zero rate is the literal none-plan, so
/// the first sweep row doubles as a fault-free control.
pub fn plan_for(seed: u64, rate: f64) -> FaultPlan {
    if rate == 0.0 {
        return FaultPlan::none();
    }
    FaultPlan::none()
        .seed(seed ^ 0xfa117)
        .provision_failures(rate)
        .stragglers(rate / 2.0, 1.5, 20.0)
        .retry_backoff(TimeDelta::from_millis(100), TimeDelta::from_secs(5))
        .crash_worker(TimePoint::from_secs(30), WorkerId(0))
        .crash_worker(TimePoint::from_secs(60), WorkerId(1))
}

/// Runs the fault sweep.
pub fn run(ctx: &ExpCtx) {
    crate::say!("== Faults: policy degradation under injected failures (Azure) ==");
    let trace = ctx.trace(Workload::Azure);
    let scenarios: Vec<(String, _)> = RATES
        .iter()
        .flat_map(|&rate| {
            POLICIES.iter().map(move |p| {
                (
                    p.to_string(),
                    ctx.sim_config(100).faults(plan_for(ctx.seed, rate)),
                )
            })
        })
        .collect();
    let reports = run_policy_batch(ctx, &trace, &scenarios);

    let mut table = Table::new([
        "failure rate",
        "policy",
        "avg overhead ratio [%]",
        "cold [%]",
        "delayed warm [%]",
        "warm [%]",
        "provision failures",
        "crash evictions",
        "wasted cold starts",
    ]);
    let grid = RATES
        .iter()
        .flat_map(|&rate| POLICIES.iter().map(move |p| (rate, p)));
    for ((rate, policy), report) in grid.zip(&reports) {
        table.row([
            format!("{rate:.2}"),
            policy.to_string(),
            format!("{:.1}", report.avg_overhead_ratio() * 100.0),
            format!("{:.1}", report.ratio(StartClass::Cold) * 100.0),
            format!("{:.1}", report.ratio(StartClass::DelayedWarm) * 100.0),
            format!("{:.1}", report.ratio(StartClass::Warm) * 100.0),
            format!("{}", report.provision_failures),
            format!("{}", report.crash_evictions),
            format!("{}", report.wasted_cold_starts),
        ]);
    }
    crate::say!("{table}");
    ctx.save_csv("faults", &table);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_is_the_none_plan() {
        assert!(plan_for(42, 0.0).is_none());
        assert!(!plan_for(42, 0.1).is_none());
    }

    #[test]
    fn plans_are_seed_and_rate_deterministic() {
        assert_eq!(plan_for(42, 0.1), plan_for(42, 0.1));
        assert_ne!(plan_for(42, 0.1), plan_for(43, 0.1));
        assert_ne!(plan_for(42, 0.1), plan_for(42, 0.2));
    }
}
