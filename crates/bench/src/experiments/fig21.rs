//! Fig. 21: sensitivity to the number of intra-container threads.
//!
//! Paper shape: more threads per container lower the overhead ratio for
//! both systems (FaasCache 44.6 → 12.4%, CIDRE 27.5 → 6.2% from 1 to 8
//! threads), and CIDRE stays below FaasCache at every thread count
//! because residual blocked requests still become delayed warm starts.

use faas_metrics::Table;
use faas_sim::StartClass;

use crate::workloads::run_policy;
use crate::{ExpCtx, Workload};

/// Runs the Fig. 21 reproduction.
pub fn run(ctx: &ExpCtx) {
    crate::say!("== Fig. 21: intra-container threads (Azure, 100 GB) ==");
    let trace = ctx.trace(Workload::Azure);
    let mut table = Table::new([
        "threads",
        "policy",
        "avg overhead ratio [%]",
        "cold [%]",
        "warm [%]",
    ]);
    for threads in [1u32, 2, 4, 8] {
        let config = ctx.sim_config(100).container_threads(threads);
        crate::say!("-- {threads} thread(s) --");
        for policy in ["faascache", "cidre"] {
            let report = run_policy(policy, &trace, &config);
            table.row([
                format!("{threads}"),
                policy.to_string(),
                format!("{:.1}", report.avg_overhead_ratio() * 100.0),
                format!("{:.1}", report.ratio(StartClass::Cold) * 100.0),
                format!("{:.1}", report.ratio(StartClass::Warm) * 100.0),
            ]);
        }
    }
    crate::say!("{table}");
    ctx.save_csv("fig21", &table);
}
