//! Fig. 19: sensitivity to inter-arrival-time (load) scaling.
//!
//! Paper shape: as load rises (IAT 2× → 0.5×), overheads grow and warm
//! ratios fall for everyone (CIDRE: 60.4% → 39.5% → 15.0% warm), but
//! CIDRE stays ahead of FaasCache and CIDRE_BSS at every level.

use faas_metrics::Table;
use faas_sim::StartClass;
use faas_trace::transform;

use crate::workloads::run_policy;
use crate::{ExpCtx, Workload};

/// Runs the Fig. 19 reproduction.
pub fn run(ctx: &ExpCtx) {
    crate::say!("== Fig. 19: IAT scaling (Azure, 100 GB) ==");
    let base = ctx.trace(Workload::Azure);
    let config = ctx.sim_config(100);
    let mut table = Table::new([
        "IAT",
        "policy",
        "warm [%]",
        "overhead p50 [ms]",
        "overhead p90 [ms]",
        "avg overhead ratio [%]",
    ]);
    for &factor in &[2.0, 1.0, 0.5] {
        let trace = transform::scale_iat(&base, factor);
        crate::say!("-- IAT x{factor} --");
        for policy in ["faascache", "cidre-bss", "cidre"] {
            let report = run_policy(policy, &trace, &config);
            let wait = report.wait_cdf();
            table.row([
                format!("{factor}x"),
                policy.to_string(),
                format!("{:.1}", report.ratio(StartClass::Warm) * 100.0),
                format!("{:.2}", wait.quantile(0.50)),
                format!("{:.2}", wait.quantile(0.90)),
                format!("{:.1}", report.avg_overhead_ratio() * 100.0),
            ]);
        }
    }
    crate::say!("{table}");
    ctx.save_csv("fig19", &table);
}
