//! Fig. 20 & Table 2: sensitivity to execution-time scaling.
//!
//! Paper shape (Fig. 20): absolute average overhead grows with execution
//! time for everyone; CIDRE (73/90/107 ms) stays well under FaasCache
//! (162/178/194 ms) and LRU (155/171/193 ms). Table 2: cold ratios grow
//! with execution time; ≈70% of CIDRE's non-warm starts execute as
//! delayed warm starts at every scale.

use faas_metrics::Table;
use faas_sim::StartClass;
use faas_trace::transform;

use crate::workloads::run_policy;
use crate::{ExpCtx, Workload};

/// Runs the Fig. 20 + Table 2 reproduction.
pub fn run(ctx: &ExpCtx) {
    crate::say!("== Fig. 20 / Table 2: execution time scaling (Azure, 100 GB) ==");
    let base = ctx.trace(Workload::Azure);
    let config = ctx.sim_config(100);
    let mut fig = Table::new(["exec scale", "policy", "avg overhead [ms]"]);
    let mut tab2 = Table::new([
        "policy",
        "exec scale",
        "CR (cold) [%]",
        "WR (warm) [%]",
        "DR (delayed) [%]",
        "delayed share of non-warm [%]",
    ]);
    for &scale in &[1.0, 1.5, 2.0] {
        let trace = transform::scale_exec(&base, scale);
        crate::say!("-- exec x{scale} --");
        for policy in ["cidre", "faascache", "lru"] {
            let report = run_policy(policy, &trace, &config);
            fig.row([
                format!("{scale}x"),
                policy.to_string(),
                format!("{:.1}", report.wait_summary().mean()),
            ]);
            let cold = report.ratio(StartClass::Cold) * 100.0;
            let warm = report.ratio(StartClass::Warm) * 100.0;
            let delayed = report.ratio(StartClass::DelayedWarm) * 100.0;
            let non_warm = cold + delayed;
            tab2.row([
                policy.to_string(),
                format!("{scale}x"),
                format!("{cold:.1}"),
                format!("{warm:.1}"),
                if delayed > 0.0 {
                    format!("{delayed:.1}")
                } else {
                    "N/A".to_string()
                },
                if non_warm > 0.0 {
                    format!("{:.1}", delayed / non_warm * 100.0)
                } else {
                    "-".to_string()
                },
            ]);
        }
    }
    crate::say!("\nFig. 20 — average invocation overhead:");
    crate::say!("{fig}");
    crate::say!("\nTable 2 — invocation breakdown:");
    crate::say!("{tab2}");
    ctx.save_csv("fig20", &fig);
    ctx.save_csv("table2", &tab2);
}
