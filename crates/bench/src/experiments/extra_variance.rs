//! Extra: the §2.6 execution-time variance analysis.
//!
//! The paper motivates CIDRE's prediction-free speculative design by
//! measuring that most functions have marginally high execution-time
//! variance: 68% of Azure functions and 59% of FC functions have a
//! coefficient of variation of at least 25%, making historical
//! prediction of delayed-warm-start costs error-prone.

use faas_metrics::Table;
use faas_trace::stats::fraction_high_variance;

use crate::{ExpCtx, Workload};

/// Runs the §2.6 variance analysis.
pub fn run(ctx: &ExpCtx) {
    crate::say!("== Extra (§2.6): execution-time variance across functions ==");
    let mut table = Table::new(["trace", "functions with CV >= 25% [%]", "paper [%]"]);
    for (w, paper) in [(Workload::Azure, 68.0), (Workload::Fc, 59.0)] {
        let trace = ctx.trace(w);
        let frac = fraction_high_variance(&trace, 0.25) * 100.0;
        table.row([
            w.name().to_string(),
            format!("{frac:.0}"),
            format!("{paper:.0}"),
        ]);
    }
    crate::say!("{table}");
    crate::say!("  (the generators draw per-invocation times lognormally with sigma = 0.25)");
    ctx.save_csv("extra_variance", &table);
}
