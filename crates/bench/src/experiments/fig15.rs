//! Fig. 15: ablation of CIDRE's techniques at a 100 GB cache (Azure).
//!
//! Configurations, as in §5.3: vanilla FaasCache (44.8% in the paper),
//! CIP alone (43.2%), BSS alone (33.6%), CSS alone (29.4%), and the full
//! CIDRE (27.6%). Shape to hold: FC > CIP > BSS > CSS > CIDRE — eviction
//! alone helps a little, speculation helps a lot, the conditional variant
//! helps more, and the combination is best.

use cidre_core::{BssScaler, CidreConfig, CipKeepAlive, CssScaler};
use faas_metrics::Table;
use faas_policies::GdsfKeepAlive;
use faas_sim::{AlwaysCold, PolicyStack};

use crate::workloads::run_policy_stack;
use crate::{ExpCtx, Workload};

fn variants() -> Vec<(&'static str, PolicyStack)> {
    vec![
        (
            "FC (FaasCache)",
            PolicyStack::new(Box::new(GdsfKeepAlive::faascache()), Box::new(AlwaysCold)),
        ),
        (
            "CIP alone",
            PolicyStack::new(Box::new(CipKeepAlive::new()), Box::new(AlwaysCold)),
        ),
        (
            "BSS alone",
            PolicyStack::new(Box::new(GdsfKeepAlive::faascache()), Box::new(BssScaler)),
        ),
        (
            "CSS alone",
            PolicyStack::new(
                Box::new(GdsfKeepAlive::faascache()),
                Box::new(CssScaler::new(CidreConfig::default())),
            ),
        ),
        (
            "CIDRE (CIP+CSS)",
            PolicyStack::new(
                Box::new(CipKeepAlive::new()),
                Box::new(CssScaler::new(CidreConfig::default())),
            ),
        ),
    ]
}

/// Runs the Fig. 15 ablation.
pub fn run(ctx: &ExpCtx) {
    crate::say!("== Fig. 15: ablation study (Azure, 100 GB) ==");
    let trace = ctx.trace(Workload::Azure);
    let config = ctx.sim_config(100);
    let mut table = Table::new(["configuration", "avg overhead ratio [%]"]);
    for (label, stack) in variants() {
        let report = run_policy_stack(label, stack, &trace, &config);
        table.row([
            label.to_string(),
            format!("{:.1}", report.avg_overhead_ratio() * 100.0),
        ]);
    }
    crate::say!("{table}");
    ctx.save_csv("fig15", &table);
}
