//! Fig. 16: concurrency-driven scaling — memory usage vs load.
//!
//! The paper equates memory usage with "the number of containers
//! created", which is the comparable quantity in a demand-filled cache
//! (the cache itself sits at capacity for every policy under load).
//!
//! Paper shape: container creation grows with the concurrency level for
//! all systems; CIDRE needs the fewest containers at the highest level
//! (up to 22% less than FaasCache) because CSS suppresses thrashing cold
//! starts; RainbowCake is lean at low concurrency (layer sharing) but
//! loses that edge as concurrency exhausts shareable layers; CIDRE's
//! cold ratio stays below FaasCache's and CIDRE_BSS's.

use faas_metrics::Table;
use faas_sim::StartClass;
use faas_trace::transform;

use crate::workloads::run_policy;
use crate::{ExpCtx, Workload};

/// Invocation-weighted mean container size in GB, for converting
/// container counts into provisioned gigabytes.
fn avg_container_gb(trace: &faas_trace::Trace) -> f64 {
    if trace.is_empty() {
        return 0.0;
    }
    let total_mb: f64 = trace
        .invocations()
        .iter()
        .map(|inv| trace.function(inv.func).expect("profile").mem_mb as f64)
        .sum();
    total_mb / trace.len() as f64 / 1024.0
}

/// IAT compression factors producing the rising concurrency levels.
const LOAD_FACTORS: &[f64] = &[1.0, 0.75, 0.5, 0.375, 0.25];

/// Runs the Fig. 16 reproduction.
pub fn run(ctx: &ExpCtx) {
    crate::say!("== Fig. 16: concurrency-driven scaling (FC, 100 GB) ==");
    let base = ctx.trace(Workload::Fc);
    let config = ctx.sim_config(100);
    let mut table = Table::new([
        "IAT factor",
        "avg RPS",
        "policy",
        "containers created",
        "container-GB provisioned",
        "cold [%]",
        "delayed warm [%]",
    ]);
    for &factor in LOAD_FACTORS {
        let trace = transform::scale_iat(&base, factor);
        let rps = trace.len() as f64 / trace.duration().as_secs_f64().max(1.0);
        crate::say!("-- IAT x{factor} (≈{rps:.0} rps) --");
        for policy in ["faascache", "rainbowcake", "cidre-bss", "cidre"] {
            let report = run_policy(policy, &trace, &config);
            let provisioned_gb = report.containers_created as f64 * avg_container_gb(&trace);
            table.row([
                format!("{factor}"),
                format!("{rps:.0}"),
                policy.to_string(),
                format!("{}", report.containers_created),
                format!("{provisioned_gb:.1}"),
                format!("{:.1}", report.ratio(StartClass::Cold) * 100.0),
                format!("{:.1}", report.ratio(StartClass::DelayedWarm) * 100.0),
            ]);
        }
    }
    crate::say!("{table}");
    ctx.save_csv("fig16", &table);
}
