//! Fig. 8: concurrency-aware eviction (FaasCache vs FaasCache-C).
//!
//! Paper shape: adding the `1/K` warm-container term to GDSF (Eq. 2)
//! reduces the average overhead ratio (52.7% → 46.5%, an 11.8% relative
//! cut) and raises the warm-start ratio by ≈9%, because evictions spread
//! across functions instead of wiping one function's whole pool.

use faas_metrics::Table;
use faas_sim::StartClass;

use crate::workloads::run_policy;
use crate::{ExpCtx, Workload};

/// Runs the Fig. 8 reproduction.
pub fn run(ctx: &ExpCtx) {
    crate::say!("== Fig. 8: FaasCache vs FaasCache-C (Azure) ==");
    let trace = ctx.trace(Workload::Azure);
    let config = ctx.sim_config(100);
    let mut table = Table::new(["policy", "avg overhead ratio [%]", "warm start [%]"]);
    for name in ["faascache", "faascache-c"] {
        let report = run_policy(name, &trace, &config);
        table.row([
            name.to_string(),
            format!("{:.1}", report.avg_overhead_ratio() * 100.0),
            format!("{:.1}", report.ratio(StartClass::Warm) * 100.0),
        ]);
    }
    crate::say!("{table}");
    ctx.save_csv("fig8", &table);
}
