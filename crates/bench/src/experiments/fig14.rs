//! Fig. 14 / §5.2: BSS in a production-scale FC cluster.
//!
//! The paper toggles BSS in a 37-machine Alibaba FC production cluster
//! (384 GB each) running ≈410k sampled requests: cold-start ratio drops
//! 1.10% → 0.72% (−34.5%) and p99 invocation overhead drops 283 ms →
//! 254.67 ms (−10.01%). We reproduce the setup as a simulated 37-worker
//! cluster with abundant memory (so the baseline cold ratio is small,
//! driven by concurrency rather than eviction) and a TTL keep-alive
//! approximating the production platform's, toggling the scaler between
//! always-cold and BSS.

use cidre_core::BssScaler;
use faas_metrics::Table;
use faas_policies::TtlKeepAlive;
use faas_sim::{AlwaysCold, PolicyStack, SimConfig, StartClass};
use faas_trace::TimeDelta;

use crate::workloads::run_policy_stack;
use crate::{ExpCtx, Workload};

/// Runs the Fig. 14 / §5.2 reproduction.
pub fn run(ctx: &ExpCtx) {
    crate::say!("== Fig. 14: BSS on/off at production cluster scale (FC) ==");
    // The production pool is shared with other FC tenants (§5.2): merge
    // a second, differently-seeded FC trace in as background load.
    let foreground = ctx.trace(Workload::Fc);
    let background = {
        let mut bg = ctx.clone();
        bg.seed = ctx.seed.wrapping_add(1);
        bg.trace(Workload::Fc)
    };
    let trace = faas_trace::transform::merge(&foreground, &background);
    // 37 workers; memory generous relative to the (two-tenant) working
    // set so the baseline cold ratio lands near the production ~1%.
    let per_worker_mb = if ctx.is_reduced() { 4 * 1024 } else { 9 * 1024 };
    let config = SimConfig::default().uniform_workers(37, per_worker_mb);

    let mut table = Table::new([
        "BSS",
        "cold start ratio [%]",
        "p99 overhead [ms]",
        "p99.9 overhead [ms]",
    ]);
    for (label, stack) in [
        (
            "disabled",
            PolicyStack::new(
                Box::new(TtlKeepAlive::new(TimeDelta::from_minutes(10))),
                Box::new(AlwaysCold),
            ),
        ),
        (
            "enabled",
            PolicyStack::new(
                Box::new(TtlKeepAlive::new(TimeDelta::from_minutes(10))),
                Box::new(BssScaler),
            ),
        ),
    ] {
        let report = run_policy_stack(&format!("bss-{label}"), stack, &trace, &config);
        let wait = report.wait_cdf();
        table.row([
            label.to_string(),
            format!("{:.2}", report.ratio(StartClass::Cold) * 100.0),
            format!("{:.2}", wait.quantile(0.99)),
            format!("{:.2}", wait.quantile(0.999)),
        ]);
    }
    crate::say!("{table}");
    ctx.save_csv("fig14", &table);
}
