//! Fig. 7: impact of busy-container queue length L ∈ {0, 1, 2}.
//!
//! Paper shape: L=1 reduces the average overhead ratio vs vanilla
//! FaasCache (52.7% → 47.8%); L=2 over-queues and is worse than both
//! (70.5%). Warm starts drop with L while delayed warm starts grow.

use faas_metrics::Table;
use faas_policies::faascache_queue_stack;
use faas_sim::StartClass;

use crate::workloads::run_policy_stack;
use crate::{ExpCtx, Workload};

/// Runs the Fig. 7 reproduction.
pub fn run(ctx: &ExpCtx) {
    crate::say!("== Fig. 7: busy-container queue length sweep (Azure) ==");
    // Like Fig. 5, the paper's queue-length what-if replays the 24-hour
    // Azure trace (≈170 rps, Table 1) — modelled as the 30-minute sample
    // at halved load.
    let trace = faas_trace::transform::scale_iat(&ctx.trace(Workload::Azure), 2.0);
    let config = ctx.sim_config(100);
    let mut table = Table::new([
        "L",
        "avg overhead ratio [%]",
        "warm start [%]",
        "delayed warm start [%]",
        "cold start [%]",
    ]);
    for l in [0usize, 1, 2] {
        let label = format!("queue L={l}");
        let report = run_policy_stack(&label, faascache_queue_stack(Some(l)), &trace, &config);
        table.row([
            format!("{l}{}", if l == 0 { " (FaasCache)" } else { "" }),
            format!("{:.1}", report.avg_overhead_ratio() * 100.0),
            format!("{:.1}", report.ratio(StartClass::Warm) * 100.0),
            format!("{:.1}", report.ratio(StartClass::DelayedWarm) * 100.0),
            format!("{:.1}", report.ratio(StartClass::Cold) * 100.0),
        ]);
    }
    crate::say!("{table}");
    ctx.save_csv("fig7", &table);
}
