//! Fig. 17: sensitivity to the execution-time threshold estimator `Te`.
//!
//! Paper shape: CIDRE_BSS is worst (31.7%); all CSS estimators beat it;
//! the median (50th percentile) is best (27.6%), with the mean and p75
//! in between and p25 slightly aggressive.

use cidre_core::{cidre_bss_stack, cidre_stack, CidreConfig, TeEstimator};
use faas_metrics::Table;

use crate::workloads::run_policy_stack;
use crate::{ExpCtx, Workload};

/// Runs the Fig. 17 reproduction.
pub fn run(ctx: &ExpCtx) {
    crate::say!("== Fig. 17: Te estimator sensitivity (Azure, 100 GB) ==");
    let trace = ctx.trace(Workload::Azure);
    let config = ctx.sim_config(100);
    let mut table = Table::new(["Te estimator", "avg overhead ratio [%]"]);

    let bss = run_policy_stack("cidre-bss", cidre_bss_stack(), &trace, &config);
    table.row([
        "CIDRE_BSS".to_string(),
        format!("{:.1}", bss.avg_overhead_ratio() * 100.0),
    ]);

    let estimators: Vec<(&str, TeEstimator)> = vec![
        ("mean", TeEstimator::Mean),
        ("p25", TeEstimator::Percentile(25.0)),
        ("p50 (default)", TeEstimator::Percentile(50.0)),
        ("p75", TeEstimator::Percentile(75.0)),
    ];
    for (label, te) in estimators {
        let stack = cidre_stack(CidreConfig::default().te_estimator(te));
        let report = run_policy_stack(&format!("cidre te={label}"), stack, &trace, &config);
        table.row([
            label.to_string(),
            format!("{:.1}", report.avg_overhead_ratio() * 100.0),
        ]);
    }
    crate::say!("{table}");
    ctx.save_csv("fig17", &table);
}
