//! Fig. 3: function concurrency CDFs (requests per minute per function).
//!
//! Paper shape: heavy-tailed; FC's {90th, 99th} percentile per-minute
//! concurrency is {120, 4482} and exceeds Azure's across the tail.

use faas_metrics::{AsciiChart, Table};
use faas_trace::stats::concurrency_cdf;

use crate::{ExpCtx, Workload};

/// Runs the Fig. 3 reproduction.
pub fn run(ctx: &ExpCtx) {
    crate::say!("== Fig. 3: function concurrency CDFs [peak reqs/min per function] ==");
    let mut table = Table::new(["trace", "p50", "p90", "p99", "max"]);
    let mut chart = AsciiChart::new(60, 12);
    for w in [Workload::Azure, Workload::Fc] {
        let cdf = concurrency_cdf(&ctx.trace(w));
        table.row([
            w.name().to_string(),
            format!("{:.0}", cdf.quantile(0.50)),
            format!("{:.0}", cdf.quantile(0.90)),
            format!("{:.0}", cdf.quantile(0.99)),
            format!("{:.0}", cdf.max().unwrap_or(0.0)),
        ]);
        let pts: Vec<(f64, f64)> = cdf
            .plot_points(80)
            .into_iter()
            .filter(|&(x, _)| x >= 1.0)
            .map(|(x, y)| (x.log10(), y))
            .collect();
        chart.series(w.name(), pts);
    }
    crate::say!("{table}");
    crate::say!("{chart}");
    ctx.save_csv("fig3", &table);
}
