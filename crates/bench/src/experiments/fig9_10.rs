//! Figs. 9 & 10: the theoretical opportunity space of delayed warm
//! starts (§2.5).
//!
//! For each request with arrival `t0` and cold-start latency `tc`, count
//! how many *other* same-function requests complete (at `arrival + exec`,
//! assuming zero overhead) inside the window `[t0, t0 + tc]` — each is a
//! busy container the request could have reused instead of cold starting.
//!
//! Paper shape: shrinking the cold-start overhead (Fig. 9) shrinks the
//! window and the counts, yet even at 0.25× ≈60% of requests keep >25
//! opportunities; scaling execution time (Fig. 10) shifts all completion
//! times uniformly and leaves the distribution essentially unchanged.

use std::collections::HashMap;

use faas_metrics::{Cdf, Table};
use faas_trace::{FunctionId, Trace};

use crate::ExpCtx;

/// Counts delayed-warm-start opportunities per request.
///
/// `cold_scale` scales the opportunity window; `exec_scale` scales all
/// completion times. Exposed for tests and the criterion benches.
pub fn opportunity_counts(trace: &Trace, cold_scale: f64, exec_scale: f64) -> Vec<u64> {
    // Per function: sorted completion times (arrival + exec * scale).
    let mut completions: HashMap<FunctionId, Vec<u64>> = HashMap::new();
    for inv in trace.invocations() {
        completions
            .entry(inv.func)
            .or_default()
            .push(inv.arrival.as_micros() + inv.exec.scale(exec_scale).as_micros());
    }
    for list in completions.values_mut() {
        list.sort_unstable();
    }
    trace
        .invocations()
        .iter()
        .map(|inv| {
            let t0 = inv.arrival.as_micros();
            let tc = trace
                .function(inv.func)
                .expect("trace invariant")
                .cold_start
                .scale(cold_scale)
                .as_micros();
            let window_end = t0 + tc;
            let list = &completions[&inv.func];
            let lo = list.partition_point(|&t| t < t0);
            let hi = list.partition_point(|&t| t <= window_end);
            let mut count = (hi - lo) as u64;
            // Exclude the request's own completion if it falls in-window.
            let own = t0 + inv.exec.scale(exec_scale).as_micros();
            if own >= t0 && own <= window_end {
                count = count.saturating_sub(1);
            }
            count
        })
        .collect()
}

/// The §2.5 analysis runs on the *full* 30-minute Azure trace (Table 1:
/// ≈3.2M requests at 1795 rps), not the 330-function sample — the
/// opportunity counts of 25+ the paper reports need production-scale
/// per-function rates. Pure trace analytics, so the volume is cheap.
fn analysis_trace(ctx: &ExpCtx) -> faas_trace::Trace {
    let builder = faas_trace::gen::azure(ctx.seed)
        .zipf_exponent(1.2)
        .rate_per_function(3.0);
    if ctx.is_reduced() {
        builder.functions(120).minutes(5).build()
    } else {
        builder.functions(600).minutes(30).build()
    }
}

fn report(ctx: &ExpCtx, rows: Vec<(String, Vec<u64>)>, fig: &str) {
    let mut table = Table::new(["series", "p25", "p50", "p75", "frac >25 opportunities [%]"]);
    for (name, counts) in rows {
        let cdf: Cdf = counts.iter().map(|&c| c as f64).collect();
        table.row([
            name,
            format!("{:.0}", cdf.quantile(0.25)),
            format!("{:.0}", cdf.quantile(0.50)),
            format!("{:.0}", cdf.quantile(0.75)),
            format!("{:.1}", (1.0 - cdf.fraction_at_or_below(25.0)) * 100.0),
        ]);
    }
    crate::say!("{table}");
    ctx.save_csv(fig, &table);
}

/// Runs the Fig. 9 reproduction (varying cold-start overhead).
pub fn run_fig9(ctx: &ExpCtx) {
    crate::say!("== Fig. 9: opportunity space vs cold start overhead (Azure) ==");
    let trace = analysis_trace(ctx);
    let rows = [1.0, 0.75, 0.5, 0.25]
        .iter()
        .map(|&s| (format!("{s}x cold"), opportunity_counts(&trace, s, 1.0)))
        .collect();
    report(ctx, rows, "fig9");
}

/// Runs the Fig. 10 reproduction (varying execution time).
pub fn run_fig10(ctx: &ExpCtx) {
    crate::say!("== Fig. 10: opportunity space vs execution time (Azure) ==");
    let trace = analysis_trace(ctx);
    let rows = [1.0, 1.5, 2.0]
        .iter()
        .map(|&s| (format!("{s}x exec"), opportunity_counts(&trace, 1.0, s)))
        .collect();
    report(ctx, rows, "fig10");
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_trace::{FunctionProfile, Invocation, TimeDelta, TimePoint};

    fn mini_trace() -> Trace {
        let f = FunctionProfile::new(FunctionId(0), "f", 128, TimeDelta::from_millis(100));
        // r0 at 0 (exec 30 -> completes 30); r1 at 10 (exec 50 -> 60);
        // r2 at 20 (exec 200 -> 220, outside r0's window).
        let invs = vec![
            Invocation {
                func: FunctionId(0),
                arrival: TimePoint::ZERO,
                exec: TimeDelta::from_millis(30),
            },
            Invocation {
                func: FunctionId(0),
                arrival: TimePoint::from_millis(10),
                exec: TimeDelta::from_millis(50),
            },
            Invocation {
                func: FunctionId(0),
                arrival: TimePoint::from_millis(20),
                exec: TimeDelta::from_millis(200),
            },
        ];
        Trace::new(vec![f], invs).expect("valid")
    }

    #[test]
    fn counts_other_completions_in_window() {
        let counts = opportunity_counts(&mini_trace(), 1.0, 1.0);
        // r0 window [0,100]: completions 30 (own, excluded), 60 -> 1.
        assert_eq!(counts[0], 1);
        // r1 window [10,110]: completions 30, 60 (own, excluded) -> 1.
        assert_eq!(counts[1], 1);
        // r2 window [20,120]: completions 30, 60; own at 220 outside -> 2.
        assert_eq!(counts[2], 2);
    }

    #[test]
    fn smaller_cold_start_shrinks_opportunities() {
        let full: u64 = opportunity_counts(&mini_trace(), 1.0, 1.0).iter().sum();
        let quarter: u64 = opportunity_counts(&mini_trace(), 0.25, 1.0).iter().sum();
        assert!(quarter <= full);
    }

    #[test]
    fn generated_trace_exec_scaling_is_nearly_invariant() {
        let trace = faas_trace::gen::azure(5).functions(20).minutes(2).build();
        let base: u64 = opportunity_counts(&trace, 1.0, 1.0).iter().sum();
        let scaled: u64 = opportunity_counts(&trace, 1.0, 2.0).iter().sum();
        // The paper's Observation 3: execution scaling barely moves the
        // distribution (completions shift but the window census stays
        // similar). Allow 30% drift.
        let ratio = scaled as f64 / base.max(1) as f64;
        assert!((0.7..1.3).contains(&ratio), "ratio {ratio}");
    }
}
