//! Custom sweep: any subset of policies across any cache sizes, driven
//! from the CLI. Not a paper artifact — a tool for exploring the space
//! the paper's Fig. 12 samples.
//!
//! ```text
//! experiments sweep                        # default policies and sizes
//! SWEEP_POLICIES=cidre,faascache,lfu \
//! SWEEP_CACHES_GB=60,90,120 \
//! SWEEP_WORKLOAD=fc experiments sweep
//! ```
//!
//! Configuration comes from environment variables so the `experiments`
//! CLI's flag grammar stays uniform across subcommands.

use faas_metrics::Table;
use faas_sim::StartClass;

use crate::workloads::{run_policy, MAIN_POLICIES};
use crate::{ExpCtx, Workload};

fn env_list(key: &str) -> Option<Vec<String>> {
    std::env::var(key).ok().map(|v| {
        v.split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect()
    })
}

/// Runs the custom sweep.
pub fn run(ctx: &ExpCtx) {
    let policies = env_list("SWEEP_POLICIES")
        .unwrap_or_else(|| vec!["faascache".into(), "cidre-bss".into(), "cidre".into()]);
    let caches: Vec<u64> = env_list("SWEEP_CACHES_GB")
        .map(|v| v.iter().filter_map(|s| s.parse().ok()).collect())
        .unwrap_or_else(|| vec![80, 100, 120]);
    let workload = match std::env::var("SWEEP_WORKLOAD").as_deref() {
        Ok("fc") => Workload::Fc,
        _ => Workload::Azure,
    };
    crate::say!(
        "== Custom sweep: {policies:?} x {caches:?} GB on {} ==",
        workload.name()
    );
    crate::say!("   (known policies: {MAIN_POLICIES:?} plus faascache-c, lfu, greedydual)");

    let trace = ctx.trace(workload);
    let mut table = Table::new([
        "cache [GB]",
        "policy",
        "avg overhead ratio [%]",
        "cold [%]",
        "delayed warm [%]",
        "warm [%]",
    ]);
    for &gb in &caches {
        for policy in &policies {
            let config = ctx.sim_config(gb);
            let report = run_policy(policy, &trace, &config);
            table.row([
                format!("{gb}"),
                policy.clone(),
                format!("{:.1}", report.avg_overhead_ratio() * 100.0),
                format!("{:.1}", report.ratio(StartClass::Cold) * 100.0),
                format!("{:.1}", report.ratio(StartClass::DelayedWarm) * 100.0),
                format!("{:.1}", report.ratio(StartClass::Warm) * 100.0),
            ]);
        }
    }
    crate::say!("{table}");
    ctx.save_csv("sweep", &table);
}
