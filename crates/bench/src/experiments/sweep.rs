//! Custom sweep: any subset of policies across any cache sizes, driven
//! from the CLI. Not a paper artifact — a tool for exploring the space
//! the paper's Fig. 12 samples.
//!
//! ```text
//! experiments sweep                        # default policies and sizes
//! experiments sweep --policies cidre,faascache,lfu \
//!                   --caches-gb 60,90,120 --workload fc
//! SWEEP_POLICIES=cidre,faascache,lfu \
//! SWEEP_CACHES_GB=60,90,120 \
//! SWEEP_WORKLOAD=fc experiments sweep      # same, via the environment
//! ```
//!
//! CLI flags (carried on [`ExpCtx::sweep`]) win over the `SWEEP_*`
//! environment variables, which win over the built-in defaults.

use faas_metrics::Table;
use faas_sim::StartClass;

use crate::workloads::{run_policy_batch, MAIN_POLICIES};
use crate::{ExpCtx, Workload};

/// Splits a comma-separated list, trimming whitespace, dropping empty
/// entries, and de-duplicating while preserving first-occurrence order.
/// `"a, b,,a , c"` parses to `["a", "b", "c"]`.
pub fn parse_list(raw: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for entry in raw.split(',') {
        let entry = entry.trim();
        if !entry.is_empty() && !out.iter().any(|e| e == entry) {
            out.push(entry.to_string());
        }
    }
    out
}

/// Reads a comma-separated list from the environment. A set-but-empty
/// variable (or one holding only separators/whitespace) is treated as
/// unset rather than as an empty sweep.
fn env_list(key: &str) -> Option<Vec<String>> {
    std::env::var(key)
        .ok()
        .map(|v| parse_list(&v))
        .filter(|v| !v.is_empty())
}

/// Runs the custom sweep.
pub fn run(ctx: &ExpCtx) {
    let policies = ctx
        .sweep
        .policies
        .clone()
        .or_else(|| env_list("SWEEP_POLICIES"))
        .unwrap_or_else(|| vec!["faascache".into(), "cidre-bss".into(), "cidre".into()]);
    let caches: Vec<u64> = ctx
        .sweep
        .caches_gb
        .clone()
        .or_else(|| {
            env_list("SWEEP_CACHES_GB").map(|v| v.iter().filter_map(|s| s.parse().ok()).collect())
        })
        .unwrap_or_else(|| vec![80, 100, 120]);
    let workload =
        ctx.sweep
            .workload
            .unwrap_or_else(|| match std::env::var("SWEEP_WORKLOAD").as_deref() {
                Ok("fc") => Workload::Fc,
                _ => Workload::Azure,
            });
    crate::say!(
        "== Custom sweep: {policies:?} x {caches:?} GB on {} ==",
        workload.name()
    );
    crate::say!("   (known policies: {MAIN_POLICIES:?} plus faascache-c, lfu, greedydual)");

    let trace = ctx.trace(workload);
    let scenarios: Vec<(String, _)> = caches
        .iter()
        .flat_map(|&gb| {
            policies
                .iter()
                .map(move |p| (p.clone(), ctx.sim_config(gb)))
        })
        .collect();
    let reports = run_policy_batch(ctx, &trace, &scenarios);

    let mut table = Table::new([
        "cache [GB]",
        "policy",
        "avg overhead ratio [%]",
        "cold [%]",
        "delayed warm [%]",
        "warm [%]",
    ]);
    let grid = caches
        .iter()
        .flat_map(|&gb| policies.iter().map(move |p| (gb, p)));
    for ((gb, policy), report) in grid.zip(&reports) {
        table.row([
            format!("{gb}"),
            policy.clone(),
            format!("{:.1}", report.avg_overhead_ratio() * 100.0),
            format!("{:.1}", report.ratio(StartClass::Cold) * 100.0),
            format!("{:.1}", report.ratio(StartClass::DelayedWarm) * 100.0),
            format!("{:.1}", report.ratio(StartClass::Warm) * 100.0),
        ]);
    }
    crate::say!("{table}");
    ctx.save_csv("sweep", &table);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_list_splits_and_trims() {
        assert_eq!(parse_list("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(parse_list("  a , b\t, c "), vec!["a", "b", "c"]);
    }

    #[test]
    fn parse_list_drops_empty_entries() {
        assert_eq!(parse_list(""), Vec::<String>::new());
        assert_eq!(parse_list("   "), Vec::<String>::new());
        assert_eq!(parse_list(",,,"), Vec::<String>::new());
        assert_eq!(parse_list("a,,b,"), vec!["a", "b"]);
        assert_eq!(parse_list(" , a ,  "), vec!["a"]);
    }

    #[test]
    fn parse_list_dedups_preserving_order() {
        assert_eq!(parse_list("b,a,b,c,a"), vec!["b", "a", "c"]);
        assert_eq!(parse_list("cidre, cidre ,cidre"), vec!["cidre"]);
    }
}
