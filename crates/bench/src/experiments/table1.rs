//! Table 1: production workload statistics.
//!
//! Paper rows: 24h Azure Functions (14.7M requests, 170 rps avg),
//! 30m Azure Functions (3.2M full / 598k sampled), 30m FC (2.7M full /
//! 410k sampled). We report the synthetic stand-ins at experiment scale:
//! the row shapes to check are (a) FC burstier than Azure (max/avg Rps
//! ratio), and (b) GBps tracking Rps with the ≈0.45 GB/request memory
//! mix.

use faas_metrics::Table;
use faas_trace::stats::TraceStats;
use faas_trace::{gen, Trace};

use crate::{ExpCtx, Workload};

fn row(table: &mut Table, name: &str, trace: &Trace) {
    let s = TraceStats::compute(trace);
    table.row([
        name.to_string(),
        format!("{}", s.invocations),
        format!("{}", s.functions),
        format!("{:.0} / {:.0} / {:.0}", s.rps_avg, s.rps_min, s.rps_max),
        format!("{:.1} / {:.1} / {:.1}", s.gbps_avg, s.gbps_min, s.gbps_max),
    ]);
}

/// Runs the Table 1 reproduction.
pub fn run(ctx: &ExpCtx) {
    crate::say!("== Table 1: workload statistics ==");
    let mut table = Table::new([
        "trace",
        "# invoke reqs",
        "# funcs",
        "Rps (avg/min/max)",
        "GBps (avg/min/max)",
    ]);

    // The 24-hour Azure sample the motivation study uses. Quick mode
    // trims it to one hour — same generator, same per-minute shape.
    let daily = if ctx.is_reduced() {
        gen::azure_daily(ctx.seed)
            .functions(120)
            .minutes(60)
            .build()
    } else {
        // 24 h at full scale is ~14.7M invocations; generate 4 h which
        // preserves every reported rate statistic at tractable memory.
        gen::azure_daily(ctx.seed).minutes(4 * 60).build()
    };
    row(&mut table, "24h-shape AF", &daily);
    row(&mut table, "30m AF", &ctx.trace(Workload::Azure));
    row(&mut table, "30m FC", &ctx.trace(Workload::Fc));

    crate::say!("{table}");
    ctx.save_csv("table1", &table);
}
