//! Fig. 12: baseline comparison across cache sizes (80–160 GB).
//!
//! Paper shape: CIDRE and CIDRE_BSS beat all seven online baselines on
//! average overhead ratio at every cache size, with Offline best overall;
//! the invocation breakdown shows CIDRE/CIDRE_BSS converting the bulk of
//! FaasCache's and IceBreaker's cold starts into delayed warm starts
//! (e.g. 75.1% cold-ratio reduction vs FaasCache at 100 GB / Azure), with
//! CSS (CIDRE) wasting fewer cold starts than BSS.

use faas_metrics::Table;
use faas_sim::StartClass;

use crate::workloads::{run_policy_batch, MAIN_POLICIES};
use crate::{ExpCtx, Workload};

/// Cache sizes swept by the paper, in GB.
pub const CACHE_SIZES_GB: &[u64] = &[80, 100, 120, 140, 160];

/// Breakdown subset shown in Figs. 12(b)/(d).
const BREAKDOWN_POLICIES: &[&str] = &["faascache", "icebreaker", "cidre-bss", "cidre"];

fn sweep(ctx: &ExpCtx, w: Workload) {
    let trace = ctx.trace(w);
    let mut overhead = Table::new(
        std::iter::once("policy".to_string())
            .chain(CACHE_SIZES_GB.iter().map(|gb| format!("{gb}GB [%]"))),
    );
    let mut breakdown = Table::new([
        "cache [GB]",
        "policy",
        "cold [%]",
        "delayed warm [%]",
        "warm [%]",
        "wasted cold starts",
    ]);

    let mut rows: Vec<Vec<String>> = MAIN_POLICIES.iter().map(|p| vec![p.to_string()]).collect();
    for &gb in CACHE_SIZES_GB {
        crate::say!("-- {} @ {gb} GB --", w.name());
        let config = ctx.sim_config(gb);
        let scenarios: Vec<(String, _)> = MAIN_POLICIES
            .iter()
            .map(|&p| (p.to_string(), config.clone()))
            .collect();
        let reports = run_policy_batch(ctx, &trace, &scenarios);
        for ((i, &policy), report) in MAIN_POLICIES.iter().enumerate().zip(&reports) {
            rows[i].push(format!("{:.1}", report.avg_overhead_ratio() * 100.0));
            if BREAKDOWN_POLICIES.contains(&policy) {
                breakdown.row([
                    format!("{gb}"),
                    policy.to_string(),
                    format!("{:.1}", report.ratio(StartClass::Cold) * 100.0),
                    format!("{:.1}", report.ratio(StartClass::DelayedWarm) * 100.0),
                    format!("{:.1}", report.ratio(StartClass::Warm) * 100.0),
                    format!("{}", report.wasted_cold_starts),
                ]);
            }
        }
    }
    for row in rows {
        overhead.row(row);
    }
    crate::say!("\nFig. 12 ({}) — average overhead ratio:", w.name());
    crate::say!("{overhead}");
    crate::say!("\nFig. 12 ({}) — invocation breakdown:", w.name());
    crate::say!("{breakdown}");
    ctx.save_csv(&format!("fig12_overhead_{}", w.name()), &overhead);
    ctx.save_csv(&format!("fig12_breakdown_{}", w.name()), &breakdown);
}

/// Runs the Fig. 12 reproduction (both workloads, all policies, all
/// cache sizes). This is the heaviest experiment in the suite.
pub fn run(ctx: &ExpCtx) {
    crate::say!("== Fig. 12: baseline comparison across cache sizes ==");
    sweep(ctx, Workload::Azure);
    sweep(ctx, Workload::Fc);
}
