//! Fig. 13: invocation-overhead and end-to-end service-time CDFs at a
//! 100 GB cache.
//!
//! Paper shape: CIDRE's overhead CDF sits left of every online baseline
//! and approaches Offline; its median E2E service time (249.76 ms on
//! Azure) beats FaasCache's (342.23 ms) and CodeCrunch's (330.50 ms).

use faas_metrics::Table;

use crate::workloads::{run_policy_batch, MAIN_POLICIES};
use crate::{ExpCtx, Workload};

fn cdfs(ctx: &ExpCtx, w: Workload) {
    let trace = ctx.trace(w);
    let config = ctx.sim_config(100);
    let scenarios: Vec<(String, _)> = MAIN_POLICIES
        .iter()
        .map(|&p| (p.to_string(), config.clone()))
        .collect();
    let reports = run_policy_batch(ctx, &trace, &scenarios);
    let mut table = Table::new([
        "policy",
        "overhead p50 [ms]",
        "overhead p90 [ms]",
        "overhead p99 [ms]",
        "e2e p50 [ms]",
        "e2e p90 [ms]",
    ]);
    for (&policy, report) in MAIN_POLICIES.iter().zip(&reports) {
        let wait = report.wait_cdf();
        let e2e = report.e2e_cdf();
        table.row([
            policy.to_string(),
            format!("{:.2}", wait.quantile(0.50)),
            format!("{:.2}", wait.quantile(0.90)),
            format!("{:.2}", wait.quantile(0.99)),
            format!("{:.2}", e2e.quantile(0.50)),
            format!("{:.2}", e2e.quantile(0.90)),
        ]);
    }
    crate::say!("\nFig. 13 ({}):", w.name());
    crate::say!("{table}");
    ctx.save_csv(&format!("fig13_{}", w.name()), &table);
}

/// Runs the Fig. 13 reproduction (both workloads).
pub fn run(ctx: &ExpCtx) {
    crate::say!("== Fig. 13: overhead and E2E service time CDFs @ 100 GB ==");
    cdfs(ctx, Workload::Azure);
    cdfs(ctx, Workload::Fc);
}
