//! Fig. 18: sensitivity to the historical-data sliding window.
//!
//! Paper shape: all-history is best (27.5%); 5-minute windows lose a
//! little (28.6%); 10/15-minute windows sit in between (27.9% / 27.6%) —
//! the differences are small, which is the point (the 15-minute default
//! is a cheap, near-optimal choice).

use cidre_core::{cidre_stack, CidreConfig};
use faas_metrics::Table;
use faas_trace::TimeDelta;

use crate::workloads::run_policy_stack;
use crate::{ExpCtx, Workload};

/// Runs the Fig. 18 reproduction.
pub fn run(ctx: &ExpCtx) {
    crate::say!("== Fig. 18: sliding window sensitivity (Azure, 100 GB) ==");
    let trace = ctx.trace(Workload::Azure);
    let config = ctx.sim_config(100);
    let mut table = Table::new(["window", "avg overhead ratio [%]"]);
    let windows: Vec<(&str, Option<TimeDelta>)> = vec![
        ("all history", None),
        ("5 min", Some(TimeDelta::from_minutes(5))),
        ("10 min", Some(TimeDelta::from_minutes(10))),
        ("15 min (default)", Some(TimeDelta::from_minutes(15))),
    ];
    for (label, window) in windows {
        let stack = cidre_stack(CidreConfig::default().window(window));
        let report = run_policy_stack(&format!("cidre w={label}"), stack, &trace, &config);
        table.row([
            label.to_string(),
            format!("{:.1}", report.avg_overhead_ratio() * 100.0),
        ]);
    }
    crate::say!("{table}");
    ctx.save_csv("fig18", &table);
}
