//! Shared experiment context: workload construction, scaling, output.

use std::fs;
use std::path::PathBuf;

use cidre_core::{cidre_bss_stack, cidre_stack, CidreConfig};
use faas_metrics::Table;
use faas_policies::{
    codecrunch_stack, ensure_stack, faascache_stack, flame_stack, icebreaker_stack, lru_stack,
    offline_stack, rainbowcake_stack, ttl_stack,
};
use faas_sim::{run, PolicyStack, SimConfig, SimReport};
use faas_trace::{gen, Trace};

/// Which of the paper's two production workloads an experiment replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// The sampled 30-minute Azure Functions workload (Table 1).
    Azure,
    /// The sampled 30-minute Alibaba Cloud FC workload (Table 1).
    Fc,
}

impl Workload {
    /// Display name used in tables and filenames.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Azure => "azure",
            Workload::Fc => "fc",
        }
    }

    /// Parses a workload from its display name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "azure" => Some(Workload::Azure),
            "fc" => Some(Workload::Fc),
            _ => None,
        }
    }
}

/// Workload scale an experiment context runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's sampled workloads (Azure 330 fn / 30 min ≈ 598k
    /// requests; FC 220 fn / 30 min ≈ 410k).
    Paper,
    /// ≈1/5 of the functions over 5 minutes — the `--quick` CLI flag.
    Quick,
    /// A miniature for Criterion iteration and CI smoke tests.
    Tiny,
}

/// CLI overrides for the custom `sweep` experiment. Each field, when
/// set, takes precedence over the corresponding `SWEEP_*` environment
/// variable (which in turn overrides the built-in default).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepOverrides {
    /// Policies to sweep (`--policies a,b,c`).
    pub policies: Option<Vec<String>>,
    /// Paper-scale cache sizes in GB (`--caches-gb 80,100`).
    pub caches_gb: Option<Vec<u64>>,
    /// Workload to replay (`--workload azure|fc`).
    pub workload: Option<Workload>,
}

/// Experiment context: scale, seed, parallelism, and output directory.
#[derive(Debug, Clone)]
pub struct ExpCtx {
    /// Workload and cache scale.
    pub scale: Scale,
    /// Directory CSV outputs are written to.
    pub out_dir: PathBuf,
    /// Base RNG seed for workload generation.
    pub seed: u64,
    /// Worker threads used to fan simulation runs out over independent
    /// (policy, cache) scenarios. `1` (the default) runs sequentially;
    /// any value produces identical tables and CSVs because results are
    /// aggregated in input order.
    pub jobs: usize,
    /// CLI overrides for the custom `sweep` experiment.
    pub sweep: SweepOverrides,
}

impl Default for ExpCtx {
    fn default() -> Self {
        Self {
            scale: Scale::Paper,
            out_dir: PathBuf::from("results"),
            seed: 42,
            jobs: 1,
            sweep: SweepOverrides::default(),
        }
    }
}

impl ExpCtx {
    /// A quick-scale context writing to `results/`.
    pub fn quick() -> Self {
        Self {
            scale: Scale::Quick,
            ..Self::default()
        }
    }

    /// A miniature context for benches and smoke tests.
    pub fn tiny() -> Self {
        Self {
            scale: Scale::Tiny,
            ..Self::default()
        }
    }

    /// Whether the context runs below paper scale.
    pub fn is_reduced(&self) -> bool {
        self.scale != Scale::Paper
    }

    /// Builds the experiment-scale trace for `workload` (see [`Scale`]).
    pub fn trace(&self, workload: Workload) -> Trace {
        let builder = match workload {
            Workload::Azure => gen::azure(self.seed),
            Workload::Fc => gen::fc(self.seed),
        };
        match (workload, self.scale) {
            (_, Scale::Paper) => builder.build(),
            (Workload::Azure, Scale::Quick) => builder.functions(60).minutes(5).build(),
            (Workload::Fc, Scale::Quick) => builder.functions(40).minutes(5).build(),
            (Workload::Azure, Scale::Tiny) => builder.functions(12).minutes(1).build(),
            (Workload::Fc, Scale::Tiny) => builder.functions(10).minutes(1).build(),
        }
    }

    /// Scales a paper cache size (GB) to the context's workload scale,
    /// so reduced runs still experience memory pressure. The floor keeps
    /// every worker larger than the biggest function footprint.
    pub fn cache_gb(&self, paper_gb: u64) -> u64 {
        match self.scale {
            Scale::Paper => paper_gb,
            Scale::Quick => (paper_gb / 5).max(6),
            Scale::Tiny => (paper_gb / 16).max(6),
        }
    }

    /// The paper's default simulator configuration at a given paper-scale
    /// cache size.
    pub fn sim_config(&self, paper_cache_gb: u64) -> SimConfig {
        SimConfig::with_cache_gb(self.cache_gb(paper_cache_gb))
    }

    /// Writes a table as CSV under the output directory and returns its
    /// path (best-effort: failures are printed, not fatal).
    pub fn save_csv(&self, name: &str, table: &Table) {
        if let Err(e) = fs::create_dir_all(&self.out_dir) {
            // lint:allow(P1): best-effort artifact write — the failure
            // must reach the operator even when narration is quiet.
            eprintln!("warning: cannot create {}: {e}", self.out_dir.display());
            return;
        }
        let path = self.out_dir.join(format!("{name}.csv"));
        if let Err(e) = fs::write(&path, table.to_csv()) {
            // lint:allow(P1): best-effort artifact write — the failure
            // must reach the operator even when narration is quiet.
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            crate::say!("  [saved {}]", path.display());
        }
    }

    /// Writes a raw text artifact (e.g. a Chrome trace-event JSON
    /// export) under the output directory (best-effort, like
    /// [`Self::save_csv`]).
    pub fn save_text(&self, filename: &str, contents: &str) {
        if let Err(e) = fs::create_dir_all(&self.out_dir) {
            // lint:allow(P1): best-effort artifact write — the failure
            // must reach the operator even when narration is quiet.
            eprintln!("warning: cannot create {}: {e}", self.out_dir.display());
            return;
        }
        let path = self.out_dir.join(filename);
        if let Err(e) = fs::write(&path, contents) {
            // lint:allow(P1): best-effort artifact write — the failure
            // must reach the operator even when narration is quiet.
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            crate::say!("  [saved {}]", path.display());
        }
    }
}

/// The policy line-up of Fig. 12/13, in the paper's order.
pub const MAIN_POLICIES: &[&str] = &[
    "ttl",
    "lru",
    "faascache",
    "rainbowcake",
    "flame",
    "ensure",
    "icebreaker",
    "codecrunch",
    "cidre-bss",
    "cidre",
    "offline",
];

/// Builds a policy stack by its experiment name. `trace` is needed by
/// the offline oracle; other policies ignore it.
///
/// # Panics
///
/// Panics on an unknown policy name (experiment code is static).
pub fn stack_by_name(name: &str, trace: &Trace) -> PolicyStack {
    // `ttl@<secs>s` parameterizes the TTL expiry — the keep-warm
    // aggressiveness axis of the `pareto` sweep (e.g. `ttl@30s`).
    if let Some(secs) = name
        .strip_prefix("ttl@")
        .and_then(|s| s.strip_suffix('s'))
        .and_then(|s| s.parse::<u64>().ok())
    {
        return faas_policies::ttl_stack_with(faas_trace::TimeDelta::from_secs(secs));
    }
    match name {
        "ttl" => ttl_stack(),
        "lru" => lru_stack(),
        "lfu" => faas_policies::lfu_stack(),
        "greedydual" => faas_policies::greedydual_stack(),
        "faascache" => faascache_stack(),
        "faascache-c" => faas_policies::faascache_c_stack(),
        "rainbowcake" => rainbowcake_stack(),
        "flame" => flame_stack(),
        "ensure" => ensure_stack(),
        "icebreaker" => icebreaker_stack(),
        "codecrunch" => codecrunch_stack(),
        "cidre-bss" => cidre_bss_stack(),
        "cidre" => cidre_stack(CidreConfig::default()),
        "offline" => offline_stack(trace),
        other => panic!("unknown policy {other:?}"),
    }
}

/// Runs one named policy over a trace, printing a one-line progress
/// marker.
pub fn run_policy(name: &str, trace: &Trace, config: &SimConfig) -> SimReport {
    run_policy_stack(name, stack_by_name(name, trace), trace, config)
}

/// Runs an explicit policy stack over a trace, printing a one-line
/// progress marker under `label`.
pub fn run_policy_stack(
    label: &str,
    stack: PolicyStack,
    trace: &Trace,
    config: &SimConfig,
) -> SimReport {
    let report = run(trace, config, stack);
    say_run(label, &report);
    report
}

/// The shared one-line progress marker for a finished simulation run.
pub(crate) fn say_run(label: &str, report: &SimReport) {
    crate::say!(
        "  ran {label:<16} cold={:>5.1}% delayed={:>5.1}% warm={:>5.1}% overhead={:>5.1}%",
        report.ratio(faas_sim::StartClass::Cold) * 100.0,
        report.ratio(faas_sim::StartClass::DelayedWarm) * 100.0,
        report.ratio(faas_sim::StartClass::Warm) * 100.0,
        report.avg_overhead_ratio() * 100.0
    );
}

/// Runs a batch of independent `(policy name, config)` scenarios over a
/// shared trace across `ctx.jobs` worker threads, returning reports in
/// input order.
///
/// Each scenario is fully determined by its inputs (the simulator is
/// deterministic and each worker builds its own policy stack), and the
/// progress markers are printed *after* collection, in input order — so
/// narration, tables, and CSVs are byte-identical whatever `ctx.jobs`
/// is. With `jobs == 1` this takes `faas_testkit::par_map`'s sequential
/// reference path.
pub fn run_policy_batch(
    ctx: &ExpCtx,
    trace: &Trace,
    scenarios: &[(String, SimConfig)],
) -> Vec<SimReport> {
    let reports = faas_testkit::par_map(scenarios, ctx.jobs, |_, (name, config)| {
        run(trace, config, stack_by_name(name, trace))
    });
    for ((name, _), report) in scenarios.iter().zip(&reports) {
        say_run(name, report);
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_traces_are_small_but_nonempty() {
        let ctx = ExpCtx::quick();
        let az = ctx.trace(Workload::Azure);
        assert!(az.len() > 1_000, "quick azure has {} reqs", az.len());
        assert!(az.len() < 200_000);
        let fc = ctx.trace(Workload::Fc);
        assert!(!fc.is_empty());
    }

    #[test]
    fn cache_scaling() {
        let quick = ExpCtx::quick();
        assert_eq!(quick.cache_gb(100), 20);
        let full = ExpCtx::default();
        assert_eq!(full.cache_gb(100), 100);
    }

    #[test]
    fn every_main_policy_resolves() {
        let ctx = ExpCtx::quick();
        let trace = faas_trace::gen::azure(1).functions(3).minutes(1).build();
        for name in MAIN_POLICIES {
            let stack = stack_by_name(name, &trace);
            assert!(!stack.label().is_empty());
        }
        let _ = ctx;
    }

    #[test]
    #[should_panic(expected = "unknown policy")]
    fn unknown_policy_panics() {
        let trace = faas_trace::gen::azure(1).functions(3).minutes(1).build();
        let _ = stack_by_name("nope", &trace);
    }
}
