//! The rule set, scoped to this workspace's determinism invariants.
//!
//! Every rule is a token-pattern matcher over [`crate::lexer::lex`]
//! output — deliberately heuristic (no type information), tuned so the
//! things it *can* see are exactly the things the differential oracle
//! and the pinned CSV goldens depend on. What a rule cannot prove safe
//! it flags; humans answer with a justified
//! `// lint:allow(RULE): why` or a fix. See DESIGN.md §8.
//!
//! | rule | invariant |
//! |------|-----------|
//! | W1   | no wall-clock (`Instant::now`/`SystemTime`) outside `crates/live` and `testkit::bench` |
//! | O1   | no `HashMap`/`HashSet` iteration in report-feeding crates (sim, policies, faas-core, trace, metrics) |
//! | F1   | no `partial_cmp` on floats — `f64::total_cmp` is total and NaN-safe |
//! | C1   | no lossy `as u64`/`as usize`/`as f64` casts on time/memory arithmetic |
//! | E1   | no ambient entropy (`RandomState`, `DefaultHasher`, env reads) in sim paths |
//! | U1   | no `unwrap()` in the pool/engine hot-path crates — `expect("<invariant>")` |
//! | P1   | no `println!`/`eprintln!` in library code — record via `faas_obs` or return data; binaries/tests exempt |
//! | G1   | no `Mutex`/`RwLock` guard binding live across an `.await` point |
//! | K1   | no `wake()` reachable under an executor lock guard (workspace pass, seeded) |
//! | L1   | no cycle in the seeded lock-acquisition-order graph (workspace pass) |
//! | S1   | nothing reachable from a shard entry calls a conductor-only API (workspace pass) |
//! | A0   | every `lint:allow` carries a justification |
//!
//! G1 is flow-sensitive but file-local, so it runs here with the other
//! per-file rules; K1/L1/S1 need cross-file state and run in
//! [`crate::conc`], seeded from `lint-locks.toml`. See DESIGN.md §13.

use crate::lexer::{lex, Comment, Token, TokenKind};
use crate::parser::{fn_items, nested_spans, walk_body, Event};

/// Rule identifiers. `A0` is the meta-rule (bad suppression) and can
/// never be baselined or suppressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Wall-clock outside the live substrate / bench harness.
    W1,
    /// Unordered hash-collection iteration on a report-feeding path.
    O1,
    /// `partial_cmp` on floats instead of `total_cmp`.
    F1,
    /// Lossy numeric cast on time/memory arithmetic.
    C1,
    /// Ambient entropy in sim paths.
    E1,
    /// `unwrap()` in pool/engine hot paths.
    U1,
    /// Direct stdout/stderr printing from library code.
    P1,
    /// Lock guard live across an `.await` point.
    G1,
    /// `wake()` reachable while an executor lock guard is held.
    K1,
    /// Lock-acquisition-order cycle over the seeded lock set.
    L1,
    /// Conductor-only API reachable from a shard execution entry.
    S1,
    /// `lint:allow` without a justification (or with an unknown rule).
    A0,
}

impl Rule {
    /// All baselinable rules, in display order. `A0` is excluded: an
    /// unjustified allow is always fatal.
    pub const BASELINABLE: [Rule; 11] = [
        Rule::W1,
        Rule::O1,
        Rule::F1,
        Rule::C1,
        Rule::E1,
        Rule::U1,
        Rule::P1,
        Rule::G1,
        Rule::K1,
        Rule::L1,
        Rule::S1,
    ];

    /// Stable textual id used in baselines and allow directives.
    pub fn id(self) -> &'static str {
        match self {
            Rule::W1 => "W1",
            Rule::O1 => "O1",
            Rule::F1 => "F1",
            Rule::C1 => "C1",
            Rule::E1 => "E1",
            Rule::U1 => "U1",
            Rule::P1 => "P1",
            Rule::G1 => "G1",
            Rule::K1 => "K1",
            Rule::L1 => "L1",
            Rule::S1 => "S1",
            Rule::A0 => "A0",
        }
    }

    /// Parses a rule id as written inside `lint:allow(...)`.
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "W1" => Some(Rule::W1),
            "O1" => Some(Rule::O1),
            "F1" => Some(Rule::F1),
            "C1" => Some(Rule::C1),
            "E1" => Some(Rule::E1),
            "U1" => Some(Rule::U1),
            "P1" => Some(Rule::P1),
            "G1" => Some(Rule::G1),
            "K1" => Some(Rule::K1),
            "L1" => Some(Rule::L1),
            "S1" => Some(Rule::S1),
            "A0" => Some(Rule::A0),
            _ => None,
        }
    }
}

/// Whether a file is product source or test-context source. Files under
/// `tests/`, `benches/`, or `examples/` are test context wholesale;
/// `#[cfg(test)] mod` regions inside source files are detected per
/// token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library/binary source.
    Source,
    /// Integration tests, benches, examples.
    TestFile,
}

/// Where a file lives, for rule scoping.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Crate directory name under `crates/` (`sim`, `faas-core`, …) or
    /// `"root"` for the workspace-root package.
    pub crate_name: String,
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Source vs test context.
    pub file_kind: FileKind,
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable explanation with the fix direction.
    pub message: String,
}

/// Crates whose output feeds reports/goldens: O1 scope.
const REPORT_CRATES: [&str; 5] = ["sim", "policies", "faas-core", "trace", "metrics"];
/// Crates doing time/memory arithmetic that must not silently truncate.
const ARITH_CRATES: [&str; 5] = ["sim", "faas-core", "trace", "metrics", "core"];
/// Crates that must stay free of ambient entropy.
const ENTROPY_CRATES: [&str; 5] = ["sim", "policies", "faas-core", "core", "trace"];
/// Crates whose hot paths must use `expect` with an invariant message.
const HOT_PATH_CRATES: [&str; 2] = ["faas-core", "sim"];

/// Methods that observe hash-collection iteration order.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "into_iter",
];

/// Analyzes one file: lexes, runs every in-scope rule, applies
/// justified suppressions, and reports bad suppressions as [`Rule::A0`].
pub fn analyze_file(ctx: &FileContext, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let in_test = test_spans(&lexed.tokens, ctx.file_kind);
    let mut violations = Vec::new();

    rule_w1(ctx, &lexed.tokens, &mut violations);
    rule_o1(ctx, &lexed.tokens, &in_test, &mut violations);
    rule_f1(&lexed.tokens, &mut violations);
    rule_c1(ctx, &lexed.tokens, &in_test, &mut violations);
    rule_e1(ctx, &lexed.tokens, &in_test, &mut violations);
    rule_u1(ctx, &lexed.tokens, &mut violations);
    rule_p1(ctx, &lexed.tokens, &in_test, &mut violations);
    rule_g1(&lexed.tokens, &mut violations);

    let (allows, mut a0) = parse_allows(&lexed.comments);
    apply_suppressions(&lexed.tokens, &allows, &mut violations);
    violations.append(&mut a0);
    violations.sort_by_key(|v| (v.line, v.rule));
    violations
}

/// Marks which token indices sit inside a `#[cfg(test)] mod … { … }`
/// region. For [`FileKind::TestFile`] everything is test context.
pub(crate) fn test_spans(tokens: &[Token], kind: FileKind) -> Vec<bool> {
    let mut flags = vec![kind == FileKind::TestFile; tokens.len()];
    if kind == FileKind::TestFile {
        return flags;
    }
    let t = |i: usize| tokens.get(i).map(|t| t.text.as_str()).unwrap_or("");
    let mut i = 0;
    while i < tokens.len() {
        // #[cfg(test)]
        let is_cfg_test = t(i) == "#"
            && t(i + 1) == "["
            && t(i + 2) == "cfg"
            && t(i + 3) == "("
            && t(i + 4) == "test"
            && t(i + 5) == ")"
            && t(i + 6) == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Scan past any further attributes to the item; only `mod`
        // blocks get span treatment (a cfg(test) `use` has no body).
        let mut j = i + 7;
        while t(j) == "#" && t(j + 1) == "[" {
            let mut k = j + 2;
            let mut depth = 1;
            while k < tokens.len() && depth > 0 {
                match t(k) {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
                k += 1;
            }
            j = k;
        }
        if t(j) != "mod" {
            i = j.max(i + 1);
            continue;
        }
        // Find the opening brace, then its match.
        let mut k = j;
        while k < tokens.len() && t(k) != "{" {
            k += 1;
        }
        let start = k;
        let mut depth = 0usize;
        while k < tokens.len() {
            match t(k) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        for f in flags.iter_mut().take(k.min(tokens.len())).skip(start) {
            *f = true;
        }
        i = k.max(i + 1);
    }
    flags
}

/// W1: wall-clock reads. Allowed zones: all of `crates/live` (it *is*
/// the wall-clock substrate) and the testkit bench harness.
fn rule_w1(ctx: &FileContext, tokens: &[Token], out: &mut Vec<Violation>) {
    let allowed = ctx.crate_name == "live"
        || (ctx.crate_name == "testkit" && ctx.rel_path.ends_with("bench.rs"));
    if allowed {
        return;
    }
    for tok in tokens {
        if tok.kind == TokenKind::Ident && (tok.text == "Instant" || tok.text == "SystemTime") {
            out.push(Violation {
                rule: Rule::W1,
                line: tok.line,
                message: format!(
                    "wall-clock `{}` outside crates/live / testkit::bench; \
                     sim time must come from the event clock",
                    tok.text
                ),
            });
        }
    }
}

/// O1: iteration over `HashMap`/`HashSet` in report-feeding crates.
///
/// Pass 1 collects identifiers declared with a hash-collection type
/// (`name: HashMap<…>` fields/params and `let name = HashMap::new()`
/// style bindings). Pass 2 flags `name.iter()`-family calls and
/// `for … in [&][mut] [self.]name` loops over those identifiers.
fn rule_o1(ctx: &FileContext, tokens: &[Token], in_test: &[bool], out: &mut Vec<Violation>) {
    if !REPORT_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let t = |i: usize| tokens.get(i).map(|t| t.text.as_str()).unwrap_or("");
    let mut names: Vec<String> = Vec::new();
    for i in 0..tokens.len() {
        if t(i) != "HashMap" && t(i) != "HashSet" {
            continue;
        }
        // `name : [&][mut] HashMap` (field, param, or annotated let).
        let mut j = i;
        while j > 0 && (t(j - 1) == "&" || t(j - 1) == "mut") {
            j -= 1;
        }
        if j >= 2 && t(j - 1) == ":" && tokens[j - 2].kind == TokenKind::Ident {
            names.push(tokens[j - 2].text.clone());
            continue;
        }
        // `let [mut] name = HashMap::new()` / `with_capacity` / `from`.
        if t(i + 1) == ":" && t(i + 2) == ":" {
            let mut k = i;
            let floor = k.saturating_sub(6);
            while k > floor {
                if t(k - 1) == "let" {
                    let mut n = k; // token after `let`
                    if t(n) == "mut" {
                        n += 1;
                    }
                    if tokens.get(n).map(|t| t.kind) == Some(TokenKind::Ident) {
                        names.push(tokens[n].text.clone());
                    }
                    break;
                }
                k -= 1;
            }
        }
    }
    names.sort();
    names.dedup();
    if names.is_empty() {
        return;
    }
    let is_tracked = |s: &str| names.iter().any(|n| n == s);
    for i in 0..tokens.len() {
        if in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        // name.iter() / self.name.keys() / name.drain() …
        if tokens[i].kind == TokenKind::Ident
            && ITER_METHODS.contains(&t(i))
            && t(i + 1) == "("
            && i >= 2
            && t(i - 1) == "."
            && tokens[i - 2].kind == TokenKind::Ident
            && is_tracked(t(i - 2))
        {
            out.push(Violation {
                rule: Rule::O1,
                line: tokens[i].line,
                message: format!(
                    "unordered hash-collection iteration `{}.{}()` on a report-feeding \
                     path; use BTreeMap/BTreeSet or sort before iterating",
                    t(i - 2),
                    t(i)
                ),
            });
        }
        // for pat in [&][mut] path.to.name { — walk the ident/`.` chain
        // after `in`; the loop iterates the chain's last ident.
        if t(i) == "in" {
            let mut j = i + 1;
            while t(j) == "&" || t(j) == "mut" {
                j += 1;
            }
            let mut last_ident = None;
            while j < tokens.len() {
                if tokens[j].kind == TokenKind::Ident {
                    last_ident = Some(j);
                    j += 1;
                } else if t(j) == "." && tokens.get(j + 1).map(|t| t.kind) == Some(TokenKind::Ident)
                {
                    j += 1;
                } else {
                    break;
                }
            }
            if let (Some(li), "{") = (last_ident, t(j)) {
                let j = li;
                if is_tracked(t(j)) && !in_test.get(j).copied().unwrap_or(false) {
                    out.push(Violation {
                        rule: Rule::O1,
                        line: tokens[j].line,
                        message: format!(
                            "unordered `for … in {}` over a hash collection on a \
                             report-feeding path; use BTreeMap/BTreeSet or sort first",
                            t(j)
                        ),
                    });
                }
            }
        }
    }
}

/// F1: any `partial_cmp` call site (the two `fn partial_cmp` trait
/// impl definitions are exempt). Applies everywhere, tests included —
/// a NaN-unsafe comparator in a differential-oracle test is still a
/// NaN-unsafe comparator.
fn rule_f1(tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind == TokenKind::Ident && tok.text == "partial_cmp" {
            let prev = i.checked_sub(1).map(|j| tokens[j].text.as_str());
            if prev == Some("fn") {
                continue; // PartialOrd impl, not a call site
            }
            out.push(Violation {
                rule: Rule::F1,
                line: tok.line,
                message: "float comparison via `partial_cmp`; use `f64::total_cmp` \
                          (total order, no NaN unwrap)"
                    .to_string(),
            });
        }
    }
}

/// Idents that mark an expression as time/memory arithmetic for C1.
fn is_time_mem_marker(ident: &str) -> bool {
    ident.ends_with("_ms")
        || ident.ends_with("_mb")
        || ident.ends_with("_at")
        || ident.contains("micros")
        || ident.contains("millis")
        || ident.contains("secs")
        || ident.contains("mem")
        || ident.contains("bytes")
}

/// C1: `… as u64|usize|f64` where the expression (up to 8 tokens back,
/// stopping at a statement boundary) mentions a time/memory identifier.
fn rule_c1(ctx: &FileContext, tokens: &[Token], in_test: &[bool], out: &mut Vec<Violation>) {
    if !ARITH_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let t = |i: usize| tokens.get(i).map(|t| t.text.as_str()).unwrap_or("");
    for i in 0..tokens.len() {
        if t(i) != "as" || in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let target = t(i + 1);
        if !matches!(target, "u64" | "usize" | "f64") {
            continue;
        }
        let floor = i.saturating_sub(8);
        let mut marker = None;
        for j in (floor..i).rev() {
            let txt = t(j);
            if matches!(txt, ";" | "{" | "}" | "=") {
                break;
            }
            if tokens[j].kind == TokenKind::Ident && is_time_mem_marker(txt) {
                marker = Some(txt.to_string());
                break;
            }
        }
        if let Some(m) = marker {
            out.push(Violation {
                rule: Rule::C1,
                line: tokens[i].line,
                message: format!(
                    "lossy `as {target}` cast on time/memory arithmetic (near `{m}`); \
                     use a checked conversion or widen the type"
                ),
            });
        }
    }
}

/// E1: ambient entropy in sim paths — hash-randomization types and
/// environment reads both make runs machine-dependent.
fn rule_e1(ctx: &FileContext, tokens: &[Token], in_test: &[bool], out: &mut Vec<Violation>) {
    if !ENTROPY_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let t = |i: usize| tokens.get(i).map(|t| t.text.as_str()).unwrap_or("");
    for (i, tok) in tokens.iter().enumerate() {
        if in_test.get(i).copied().unwrap_or(false) || tok.kind != TokenKind::Ident {
            continue;
        }
        let flagged = match tok.text.as_str() {
            "RandomState" | "DefaultHasher" => Some(tok.text.clone()),
            "env" if t(i + 1) == ":" && t(i + 2) == ":" => {
                let m = t(i + 3);
                if m.starts_with("var") || m == "vars" {
                    Some(format!("env::{m}"))
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(what) = flagged {
            out.push(Violation {
                rule: Rule::E1,
                line: tok.line,
                message: format!(
                    "ambient entropy `{what}` in a sim path; seed explicitly via \
                     testkit or thread configuration through SimConfig"
                ),
            });
        }
    }
}

/// U1: `.unwrap()` in the pool/engine hot-path crates (tests included:
/// oracle tests panicking without an invariant message cost real
/// debugging time).
fn rule_u1(ctx: &FileContext, tokens: &[Token], out: &mut Vec<Violation>) {
    if !HOT_PATH_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let t = |i: usize| tokens.get(i).map(|t| t.text.as_str()).unwrap_or("");
    for (i, tok) in tokens.iter().enumerate() {
        if tok.text == "unwrap" && t(i + 1) == "(" && i >= 1 && t(i - 1) == "." {
            out.push(Violation {
                rule: Rule::U1,
                line: tok.line,
                message: "`unwrap()` in a pool/engine hot path; use \
                          `expect(\"<violated invariant>\")` naming the invariant"
                    .to_string(),
            });
        }
    }
}

/// P1: `println!` / `eprintln!` in library code. Observability belongs
/// in the `faas_obs` recorder (or returned data the caller renders);
/// ad-hoc stdout writes from a library can't be disabled, captured, or
/// diffed. Exempt: binaries (`src/bin/`, `src/main.rs`) — a CLI's whole
/// job is printing — plus test context and the two crates whose product
/// *is* terminal output (`testkit`'s bench harness, the linter itself).
fn rule_p1(ctx: &FileContext, tokens: &[Token], in_test: &[bool], out: &mut Vec<Violation>) {
    if ctx.file_kind == FileKind::TestFile
        || ctx.crate_name == "testkit"
        || ctx.crate_name == "lint"
        || ctx.rel_path.contains("/src/bin/")
        || ctx.rel_path.ends_with("src/main.rs")
    {
        return;
    }
    let t = |i: usize| tokens.get(i).map(|t| t.text.as_str()).unwrap_or("");
    for (i, tok) in tokens.iter().enumerate() {
        if in_test.get(i).copied().unwrap_or(false) || tok.kind != TokenKind::Ident {
            continue;
        }
        if (tok.text == "println" || tok.text == "eprintln") && t(i + 1) == "!" {
            out.push(Violation {
                rule: Rule::P1,
                line: tok.line,
                message: format!(
                    "`{}!` in library code; record through faas_obs (or return \
                     data for the caller to render) instead of writing to the \
                     terminal",
                    tok.text
                ),
            });
        }
    }
}

/// G1: a lock-guard binding live across an `.await` point. The guard
/// pins the lock (or poisons determinism-adjacent invariants) for an
/// unbounded suspension: any other task contending the lock deadlocks
/// against the suspended holder. Applies to every crate, tests
/// included — a deadlock in an oracle test still hangs CI. Flow
/// semantics (births, `drop` kills, block scoping, re-acquisition)
/// live in [`crate::parser::walk_body`].
fn rule_g1(tokens: &[Token], out: &mut Vec<Violation>) {
    let fns = fn_items(tokens);
    for k in 0..fns.len() {
        let skip = nested_spans(&fns, k);
        walk_body(tokens, fns[k].body, &skip, |e, live| {
            let Event::Await { line } = e else { return };
            if live.is_empty() {
                return;
            }
            let mut names: Vec<String> = live
                .iter()
                .map(|g| format!("`{}` (line {})", g.name, g.line))
                .collect();
            names.sort();
            out.push(Violation {
                rule: Rule::G1,
                line: *line,
                message: format!(
                    "lock guard {} is live across this `.await`; drop it (or scope \
                     it out) before suspending",
                    names.join(", ")
                ),
            });
        });
    }
}

/// A parsed, justified `lint:allow` directive.
#[derive(Debug)]
pub(crate) struct Allow {
    rules: Vec<Rule>,
    /// Line of the directive comment.
    line: u32,
    /// Last line of the directive comment (block comments).
    end_line: u32,
}

/// Parses `lint:allow(R1[,R2…]): justification` directives out of
/// comments. Directives with no justification, an empty justification,
/// an unknown rule, or an attempt to allow `A0` are themselves
/// violations (A0).
pub(crate) fn parse_allows(comments: &[Comment]) -> (Vec<Allow>, Vec<Violation>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        // Doc comments (`///`, `//!`, `/** */`, `/*! */`) are rendered
        // documentation — the grammar is *described* there, never used.
        // Directives must live in plain comments.
        if c.text.starts_with('/') || c.text.starts_with('!') || c.text.starts_with('*') {
            continue;
        }
        let Some(at) = c.text.find("lint:allow") else {
            continue;
        };
        let rest = &c.text[at + "lint:allow".len()..];
        let mut fail = |why: &str| {
            bad.push(Violation {
                rule: Rule::A0,
                line: c.line,
                message: format!("bad lint:allow directive: {why}"),
            });
        };
        let Some(open) = rest.find('(') else {
            fail("missing rule list `(RULE, …)`");
            continue;
        };
        let Some(close) = rest.find(')') else {
            fail("unclosed rule list");
            continue;
        };
        if rest[..open].trim() != "" || close < open {
            fail("malformed rule list");
            continue;
        }
        let mut rules = Vec::new();
        let mut ok = true;
        for part in rest[open + 1..close].split(',') {
            match Rule::parse(part.trim()) {
                Some(Rule::A0) => {
                    fail("A0 (unjustified allow) can never itself be allowed");
                    ok = false;
                    break;
                }
                Some(r) => rules.push(r),
                None => {
                    fail(&format!("unknown rule `{}`", part.trim()));
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let justification = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if justification.is_empty() {
            fail("missing justification — write `lint:allow(RULE): <why this is safe>`");
            continue;
        }
        allows.push(Allow {
            rules,
            line: c.line,
            end_line: c.end_line,
        });
    }
    (allows, bad)
}

/// Applies justified allows: a directive suppresses its rules on the
/// directive's own line (trailing-comment form) or on the first line
/// containing code within three lines below it (comment-above form).
pub(crate) fn apply_suppressions(
    tokens: &[Token],
    allows: &[Allow],
    violations: &mut Vec<Violation>,
) {
    if allows.is_empty() {
        return;
    }
    let mut code_lines: Vec<u32> = tokens.iter().map(|t| t.line).collect();
    code_lines.sort_unstable();
    code_lines.dedup();
    let has_code = |l: u32| code_lines.binary_search(&l).is_ok();
    violations.retain(|v| {
        !allows.iter().any(|a| {
            if !a.rules.contains(&v.rule) {
                return false;
            }
            if has_code(a.line) {
                // Trailing-comment form: only the directive's own line.
                return v.line == a.line;
            }
            // Comment-above form: first code line within 3 lines below.
            let mut target = None;
            for l in a.end_line + 1..=a.end_line + 3 {
                if has_code(l) {
                    target = Some(l);
                    break;
                }
            }
            target == Some(v.line)
        })
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(crate_name: &str, rel: &str, kind: FileKind) -> FileContext {
        FileContext {
            crate_name: crate_name.to_string(),
            rel_path: rel.to_string(),
            file_kind: kind,
        }
    }

    fn rules_of(v: &[Violation]) -> Vec<Rule> {
        v.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn w1_fires_outside_allowed_zone_only() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        let v = analyze_file(&ctx("sim", "crates/sim/src/x.rs", FileKind::Source), src);
        assert_eq!(rules_of(&v), vec![Rule::W1]);
        let v = analyze_file(&ctx("live", "crates/live/src/x.rs", FileKind::Source), src);
        assert!(v.is_empty());
        let v = analyze_file(
            &ctx("testkit", "crates/testkit/src/bench.rs", FileKind::Source),
            src,
        );
        assert!(v.is_empty());
    }

    #[test]
    fn o1_catches_method_and_for_loops() {
        let src = "
            use std::collections::HashMap;
            struct S { m: HashMap<u32, u32> }
            fn f(s: &S) {
                for (k, v) in &s.m {}
                let _ = s.m.values().count();
            }
        ";
        // `s.m` receiver: token before `.` is `m`? the chain is s . m . values —
        // receiver ident before `values` is `m`, tracked via field decl.
        let v = analyze_file(&ctx("sim", "crates/sim/src/x.rs", FileKind::Source), src);
        assert!(rules_of(&v).contains(&Rule::O1), "got {v:?}");
    }

    #[test]
    fn o1_ignores_membership_and_other_crates() {
        let src = "
            use std::collections::HashSet;
            fn f(keep: &HashSet<u32>) -> bool { keep.contains(&3) }
        ";
        let v = analyze_file(
            &ctx("trace", "crates/trace/src/x.rs", FileKind::Source),
            src,
        );
        assert!(v.is_empty(), "{v:?}");
        let iter_src = "
            use std::collections::HashMap;
            fn f(m: &HashMap<u32, u32>) { for x in m.keys() {} }
        ";
        let v = analyze_file(
            &ctx("testkit", "crates/testkit/src/x.rs", FileKind::Source),
            iter_src,
        );
        assert!(v.is_empty(), "O1 is scoped to report-feeding crates");
    }

    #[test]
    fn o1_skips_cfg_test_modules() {
        let src = "
            use std::collections::HashMap;
            #[cfg(test)]
            mod tests {
                use super::*;
                #[test]
                fn t() {
                    let m: HashMap<u32, u32> = HashMap::new();
                    for x in m.keys() {}
                }
            }
        ";
        let v = analyze_file(&ctx("sim", "crates/sim/src/x.rs", FileKind::Source), src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn f1_flags_calls_not_impls() {
        let src = "
            impl PartialOrd for X {
                fn partial_cmp(&self, o: &Self) -> Option<Ordering> { None }
            }
            fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }
        ";
        let v = analyze_file(
            &ctx("metrics", "crates/metrics/src/x.rs", FileKind::Source),
            src,
        );
        assert_eq!(rules_of(&v), vec![Rule::F1]);
    }

    #[test]
    fn c1_needs_a_time_mem_marker() {
        let flagged = "fn f(t: T) -> usize { t.arrival.as_secs_f64() as usize }";
        let v = analyze_file(
            &ctx("trace", "crates/trace/src/x.rs", FileKind::Source),
            flagged,
        );
        assert_eq!(rules_of(&v), vec![Rule::C1]);
        let clean = "fn f(n: u32) -> u64 { n as u64 }";
        let v = analyze_file(
            &ctx("trace", "crates/trace/src/x.rs", FileKind::Source),
            clean,
        );
        assert!(v.is_empty());
    }

    #[test]
    fn e1_flags_env_and_hashers() {
        let src = "fn f() { let v = std::env::var(\"X\"); }";
        let v = analyze_file(&ctx("sim", "crates/sim/src/x.rs", FileKind::Source), src);
        assert_eq!(rules_of(&v), vec![Rule::E1]);
        let src = "use std::collections::hash_map::RandomState;";
        let v = analyze_file(
            &ctx("policies", "crates/policies/src/x.rs", FileKind::Source),
            src,
        );
        assert_eq!(rules_of(&v), vec![Rule::E1]);
    }

    #[test]
    fn u1_only_in_hot_path_crates() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }";
        let v = analyze_file(
            &ctx("faas-core", "crates/faas-core/src/x.rs", FileKind::Source),
            src,
        );
        assert_eq!(rules_of(&v), vec![Rule::U1]);
        let v = analyze_file(
            &ctx("metrics", "crates/metrics/src/x.rs", FileKind::Source),
            src,
        );
        assert!(v.is_empty());
    }

    #[test]
    fn justified_allow_suppresses_same_line_and_next_line() {
        let trailing = "fn f() { let t = Instant::now(); } // lint:allow(W1): CLI progress only\n";
        let v = analyze_file(
            &ctx("bench", "crates/bench/src/x.rs", FileKind::Source),
            trailing,
        );
        assert!(v.is_empty(), "{v:?}");
        let above = "
            // lint:allow(W1): CLI progress only
            fn f() { let t = Instant::now(); }
        ";
        let v = analyze_file(
            &ctx("bench", "crates/bench/src/x.rs", FileKind::Source),
            above,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn bare_allow_is_a0_and_does_not_suppress() {
        let src = "
            // lint:allow(W1)
            fn f() { let t = Instant::now(); }
        ";
        let v = analyze_file(
            &ctx("bench", "crates/bench/src/x.rs", FileKind::Source),
            src,
        );
        let rules = rules_of(&v);
        assert!(rules.contains(&Rule::A0), "{v:?}");
        assert!(rules.contains(&Rule::W1), "bare allow must not suppress");
    }

    #[test]
    fn unknown_rule_in_allow_is_a0() {
        let src = "// lint:allow(Z9): whatever\nfn f() {}\n";
        let v = analyze_file(&ctx("sim", "crates/sim/src/x.rs", FileKind::Source), src);
        assert_eq!(rules_of(&v), vec![Rule::A0]);
    }

    #[test]
    fn allow_does_not_leak_past_target_line() {
        let src = "
            // lint:allow(W1): only the next line
            fn f() { let t = Instant::now(); }
            fn g() { let u = Instant::now(); }
        ";
        let v = analyze_file(
            &ctx("bench", "crates/bench/src/x.rs", FileKind::Source),
            src,
        );
        assert_eq!(rules_of(&v), vec![Rule::W1]);
    }
}
