//! A comment- and string-aware Rust lexer.
//!
//! `cidre-lint` deliberately does not parse Rust (no `syn`, no external
//! crates — the workspace is hermetic, see DESIGN.md §3). The rules in
//! [`crate::rules`] only need a token stream that cannot be fooled by
//! `"Instant::now"` inside a string literal or a commented-out
//! `partial_cmp`. This lexer provides exactly that: identifiers,
//! punctuation, literals, and lifetimes, each tagged with a 1-based
//! line number, plus every comment (for `lint:allow` directives).
//!
//! The grammar corners that matter and are handled:
//! * nested block comments `/* /* */ */`;
//! * string escapes (`"\""`), raw strings `r#"…"#` with any number of
//!   hashes, byte/raw-byte strings;
//! * char literals vs lifetimes (`'a'` vs `'a`);
//! * numeric literals with underscores, type suffixes, and exponents
//!   (`1_000u64`, `2.5e-3`) — lexed as single tokens so a lookbehind
//!   never lands mid-number.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`Instant`, `for`, `as`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `(`, `&`, …).
    Punct,
    /// String/char/byte/numeric literal, content opaque to rules.
    Literal,
    /// A lifetime or loop label (`'a`, `'outer`).
    Lifetime,
}

/// One lexed token with its source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexeme kind.
    pub kind: TokenKind,
    /// The token text. For [`TokenKind::Punct`] this is one character;
    /// for literals it is the raw source slice.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// A comment (line or block) with the line it starts on. Text excludes
/// the delimiters (`//`, `/*`, `*/`) but keeps inner whitespace.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the `//` or `/*`.
    pub line: u32,
    /// 1-based line of the comment's last character (equals `line` for
    /// line comments; block comments can span lines).
    pub end_line: u32,
    /// Comment body without delimiters.
    pub text: String,
}

/// The output of [`lex`]: tokens plus comments, both in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens.
    pub tokens: Vec<Token>,
    /// All comments, for suppression-directive parsing.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source. Never fails: unrecognised bytes are skipped so a
/// half-written fixture cannot wedge the analyzer.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Lexed {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_string_ahead() => self.raw_string(),
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.pos += 1; // consume 'b', then the char literal
                    self.char_literal();
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    self.pos += 1;
                    self.string_literal();
                }
                b'"' => self.string_literal(),
                b'\'' => self.quote(),
                b if b.is_ascii_digit() => self.number(),
                b if b == b'_' || b.is_ascii_alphabetic() => self.ident(),
                _ => {
                    self.push(TokenKind::Punct, (b as char).to_string(), self.line);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        self.pos += 2;
        let from = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[from..self.pos]).into_owned();
        self.out.comments.push(Comment {
            line: start_line,
            end_line: start_line,
            text,
        });
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        self.pos += 2;
        let from = self.pos;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            match (self.bytes[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let to = self.pos.saturating_sub(2).max(from);
        let text = String::from_utf8_lossy(&self.bytes[from..to]).into_owned();
        self.out.comments.push(Comment {
            line: start_line,
            end_line: self.line,
            text,
        });
    }

    /// Detects `r"`, `r#`, `br"`, `br#` at the cursor.
    fn raw_string_ahead(&self) -> bool {
        let mut i = self.pos;
        if self.bytes[i] == b'b' {
            i += 1;
        }
        if self.bytes.get(i) != Some(&b'r') {
            return false;
        }
        matches!(self.bytes.get(i + 1), Some(b'"') | Some(b'#'))
    }

    fn raw_string(&mut self) {
        let start_line = self.line;
        let from = self.pos;
        if self.bytes[self.pos] == b'b' {
            self.pos += 1;
        }
        self.pos += 1; // 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) != Some(b'"') {
            // `r#ident` (raw identifier): rewind the hashes and lex as ident.
            self.pos = from;
            self.ident_raw();
            return;
        }
        self.pos += 1; // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b'"') => {
                    let mut ok = true;
                    for k in 0..hashes {
                        if self.peek(1 + k) != Some(b'#') {
                            ok = false;
                            break;
                        }
                    }
                    self.pos += 1;
                    if ok {
                        self.pos += hashes;
                        break;
                    }
                }
                Some(_) => self.pos += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[from..self.pos]).into_owned();
        self.push(TokenKind::Literal, text, start_line);
    }

    fn string_literal(&mut self) {
        let start_line = self.line;
        let from = self.pos;
        self.pos += 1; // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\\') => self.pos += 2,
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => self.pos += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[from..self.pos]).into_owned();
        self.push(TokenKind::Literal, text, start_line);
    }

    /// `'` starts either a char literal or a lifetime.
    fn quote(&mut self) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime =
            matches!(next, Some(c) if c == b'_' || c.is_ascii_alphabetic()) && after != Some(b'\'');
        if is_lifetime {
            let from = self.pos;
            self.pos += 1;
            while matches!(self.peek(0), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) {
                self.pos += 1;
            }
            let text = String::from_utf8_lossy(&self.bytes[from..self.pos]).into_owned();
            self.push(TokenKind::Lifetime, text, self.line);
        } else {
            self.char_literal();
        }
    }

    fn char_literal(&mut self) {
        let from = self.pos;
        self.pos += 1; // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\\') => self.pos += 2,
                Some(b'\'') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\n') => break, // malformed; bail at line end
                Some(_) => self.pos += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[from..self.pos]).into_owned();
        self.push(TokenKind::Literal, text, self.line);
    }

    fn number(&mut self) {
        let from = self.pos;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else if c == b'.'
                && matches!(self.peek(1), Some(d) if d.is_ascii_digit())
                && self.peek(1) != Some(b'.')
            {
                // `1.5` but not the range `1..n`.
                self.pos += 1;
            } else if (c == b'+' || c == b'-')
                && matches!(self.bytes.get(self.pos - 1), Some(b'e') | Some(b'E'))
            {
                // `2.5e-3`.
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[from..self.pos]).into_owned();
        self.push(TokenKind::Literal, text, self.line);
    }

    fn ident(&mut self) {
        let from = self.pos;
        while matches!(self.peek(0), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[from..self.pos]).into_owned();
        self.push(TokenKind::Ident, text, self.line);
    }

    /// `r#ident` raw identifiers: lex as a plain ident (the `r#` is not
    /// part of the name for rule-matching purposes).
    fn ident_raw(&mut self) {
        self.pos += 2; // r#
        self.ident();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            // Instant::now here is commentary
            /* and SystemTime here too */
            let s = "Instant::now inside a string";
            let r = r#"partial_cmp raw"#;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(!ids.contains(&"partial_cmp".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "let a = 1;\n// lint:allow(W1): because\nlet b = 2;";
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 1);
        assert_eq!(lx.comments[0].line, 2);
        assert!(lx.comments[0].text.contains("lint:allow(W1)"));
    }

    #[test]
    fn nested_block_comment_terminates() {
        let src = "/* outer /* inner */ still outer */ fn after() {}";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "after"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }";
        let lx = lex(src);
        let lifetimes: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let lits: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lits, vec!["'x'", "'\\n'"]);
    }

    #[test]
    fn numbers_lex_as_single_tokens() {
        let src = "let x = 1_000u64 + 2.5e-3; let r = 1..n;";
        let lx = lex(src);
        let lits: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lits, vec!["1_000u64", "2.5e-3", "1"]);
    }

    #[test]
    fn line_numbers_advance_through_everything() {
        let src = "a\n\"multi\nline\"\nb";
        let lx = lex(src);
        let b = lx.tokens.iter().find(|t| t.text == "b").expect("b lexed");
        assert_eq!(b.line, 4);
    }

    #[test]
    fn raw_identifier_is_ident() {
        let ids = idents("let r#type = 3;");
        assert!(ids.contains(&"type".to_string()));
    }
}
