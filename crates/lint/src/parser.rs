//! A brace-tree parser and flow walker over [`crate::lexer`] output.
//!
//! Same philosophy as the lexer: no `syn`, no external crates, no type
//! information — just enough structure for the flow-sensitive rules
//! (G1/K1/L1/S1, DESIGN.md §13). Three layers:
//!
//! * [`fn_items`] — the brace tree: every `fn` item with its body token
//!   span and a qualified name (`Type::name` inside `impl` blocks, with
//!   `impl Trait for Type` resolving to `Type`);
//! * [`walk_body`] — a linear flow walk of one body that tracks
//!   lock-guard liveness (a `let` binding whose initializer ends in
//!   `.lock()` / zero-arg `.read()` / `.write()`, optionally chained
//!   through the poison adapters `expect`/`unwrap`/`unwrap_or_else`)
//!   through block scopes, `drop(name)` kills, and `name = …lock()…`
//!   re-acquisition, and reports acquisitions, `.await` points, and
//!   calls with the set of guards live at each event;
//! * callers ([`crate::rules`] G1, [`crate::conc`] K1/L1/S1) interpret
//!   the events.
//!
//! Known, deliberate approximations (the analyzer is a linter, not a
//! borrow checker): loop back-edges are not modelled (a guard
//! re-acquired at the bottom of a `loop` is not live at its top),
//! guards bound by destructuring patterns (`match m.lock() { Ok(g) =>
//! … }`) are invisible, and a guard held only as a statement temporary
//! (`*m.lock().expect("…") = x`) is not tracked. The workspace idiom —
//! bind, use, `drop` or fall off the block — is exactly what *is*
//! tracked.

use crate::lexer::{Token, TokenKind};

/// One `fn` item found in a token stream.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Bare function name.
    pub name: String,
    /// `Type::name` when defined inside an `impl` block, else `name`.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token indices of the body's `{` and its matching `}`.
    pub body: (usize, usize),
}

impl FnInfo {
    /// The impl type of a qualified name (`"Inner::cancel"` → `Some("Inner")`).
    pub fn impl_type(&self) -> Option<&str> {
        self.qual.split_once("::").map(|(t, _)| t)
    }
}

fn text(tokens: &[Token], i: usize) -> &str {
    tokens.get(i).map(|t| t.text.as_str()).unwrap_or("")
}

fn is_ident(tokens: &[Token], i: usize) -> bool {
    tokens.get(i).map(|t| t.kind) == Some(TokenKind::Ident)
}

/// Index of the `}` matching the `{` at `open` (or the last token if
/// unbalanced — a half-written file must not wedge the analyzer).
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        match text(tokens, i) {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Skips a generic argument list starting at `<`, returning the index
/// just past the matching `>`. `->` never decrements (the `>` of an
/// arrow is preceded by `-`).
fn skip_angles(tokens: &[Token], start: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < tokens.len() {
        match text(tokens, i) {
            "<" => depth += 1,
            ">" if text(tokens, i.wrapping_sub(1)) != "-" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            "{" | ";" => return i, // malformed header; bail before the body
            _ => {}
        }
        i += 1;
    }
    i
}

/// Reads a type path (`crate::foo::Bar<T>`), returning its last path
/// ident and the index just past what was consumed. `&`/`mut` prefixes
/// are skipped; a non-path type (tuple, slice) yields `None`.
fn path_last_ident(tokens: &[Token], start: usize) -> (Option<String>, usize) {
    let mut i = start;
    while matches!(text(tokens, i), "&" | "mut")
        || tokens.get(i).map(|t| t.kind) == Some(TokenKind::Lifetime)
    {
        i += 1;
    }
    let mut last = None;
    loop {
        if !is_ident(tokens, i) {
            break;
        }
        last = Some(tokens[i].text.clone());
        i += 1;
        if text(tokens, i) == "<" {
            i = skip_angles(tokens, i);
        }
        if text(tokens, i) == ":" && text(tokens, i + 1) == ":" {
            i += 2;
        } else {
            break;
        }
    }
    (last, i)
}

/// An `impl` block: the self type's last path ident and the body span.
#[derive(Debug)]
struct ImplSpan {
    type_name: Option<String>,
    open: usize,
    close: usize,
}

/// True when the `impl` at `i` starts an item (vs `impl Trait` in type
/// position, whose preceding token is `->`, `(`, `,`, `<`, `=`, …).
fn impl_starts_item(tokens: &[Token], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    matches!(text(tokens, i - 1), "}" | ";" | "]" | "unsafe")
}

fn impl_spans(tokens: &[Token]) -> Vec<ImplSpan> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if text(tokens, i) != "impl" || !impl_starts_item(tokens, i) {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if text(tokens, j) == "<" {
            j = skip_angles(tokens, j);
        }
        // First path: the trait in `impl Trait for Type`, or the self
        // type in an inherent impl.
        let (first, after) = path_last_ident(tokens, j);
        j = after;
        let mut type_name = first;
        if text(tokens, j) == "for" {
            let (second, after_ty) = path_last_ident(tokens, j + 1);
            type_name = second;
            j = after_ty;
        }
        // Skip any where clause to the body.
        while j < tokens.len() && text(tokens, j) != "{" && text(tokens, j) != ";" {
            j += 1;
        }
        if text(tokens, j) != "{" {
            i = j.max(i + 1);
            continue;
        }
        let close = match_brace(tokens, j);
        spans.push(ImplSpan {
            type_name,
            open: j,
            close,
        });
        // Continue scanning *inside* the impl body for nothing — fns
        // are found by the separate fn scan; move past the header only.
        i = j + 1;
    }
    spans
}

/// Finds every `fn` item with a body. Trait-method declarations
/// (ending in `;`) are skipped; nested fns are reported as their own
/// items (callers exclude nested spans via [`nested_spans`]).
pub fn fn_items(tokens: &[Token]) -> Vec<FnInfo> {
    let impls = impl_spans(tokens);
    let mut fns = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if text(tokens, i) != "fn" || !is_ident(tokens, i + 1) {
            i += 1;
            continue;
        }
        let name = tokens[i + 1].text.clone();
        let line = tokens[i].line;
        // Signatures contain no `{`; the first `{` or `;` ends them.
        let mut j = i + 2;
        while j < tokens.len() && text(tokens, j) != "{" && text(tokens, j) != ";" {
            j += 1;
        }
        if text(tokens, j) != "{" {
            i = j.max(i + 1);
            continue;
        }
        let close = match_brace(tokens, j);
        let impl_type = impls
            .iter()
            .rfind(|s| s.open < i && i < s.close)
            .and_then(|s| s.type_name.clone());
        let qual = match impl_type {
            Some(t) => format!("{t}::{name}"),
            None => name.clone(),
        };
        fns.push(FnInfo {
            name,
            qual,
            line,
            body: (j, close),
        });
        i += 2; // continue inside the body: nested fns are items too
    }
    fns
}

/// Body spans of fns strictly nested inside `fns[me]`, for exclusion
/// so tokens are attributed to their innermost fn only.
pub fn nested_spans(fns: &[FnInfo], me: usize) -> Vec<(usize, usize)> {
    let (s, e) = fns[me].body;
    fns.iter()
        .enumerate()
        .filter(|(k, f)| *k != me && f.body.0 > s && f.body.1 < e)
        .map(|(_, f)| f.body)
        .collect()
}

/// A live lock-guard binding.
#[derive(Debug, Clone)]
pub struct Guard {
    /// Bound variable name.
    pub name: String,
    /// Receiver ident right before the acquiring `.lock()` call
    /// (`self.state.lock()` → `state`; empty when not an ident).
    pub recv: String,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// Block depth the binding lives in (internal to the walker).
    depth: usize,
}

/// Flow events, delivered in token order. Each comes with the guards
/// live *before* the event takes effect.
#[derive(Debug)]
pub enum Event<'a> {
    /// A new guard binding committed; `live` excludes the new guard.
    Acquire(&'a Guard),
    /// An `.await` suspension point.
    Await { line: u32 },
    /// A call or macro invocation by (last-segment) name.
    Call {
        name: &'a str,
        line: u32,
        is_macro: bool,
    },
}

/// The lock-acquiring method names. `read`/`write` only count with an
/// empty argument list, which distinguishes `RwLock` from `io::Read`.
fn acquire_method(tokens: &[Token], i: usize) -> bool {
    text(tokens, i) == "."
        && matches!(text(tokens, i + 1), "lock" | "read" | "write")
        && text(tokens, i + 2) == "("
        && text(tokens, i + 3) == ")"
}

/// Index of the `)` matching the `(` at `open`.
fn match_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        match text(tokens, i) {
            "(" => depth += 1,
            ")" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Given the `)` index of an acquiring call, skips poison adapters and
/// answers whether the chain *ends* there — i.e. the value being bound
/// is the guard itself, not a field or method result pulled out of a
/// statement temporary.
fn chain_yields_guard(tokens: &[Token], close: usize) -> bool {
    let mut k = close;
    while text(tokens, k + 1) == "."
        && matches!(text(tokens, k + 2), "expect" | "unwrap" | "unwrap_or_else")
        && text(tokens, k + 3) == "("
    {
        k = match_paren(tokens, k + 3);
    }
    text(tokens, k + 1) != "."
}

/// Keywords that can directly precede `(` without being a call.
fn is_call_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while" | "for" | "match" | "return" | "in" | "as" | "move" | "loop" | "else"
    )
}

/// A `let`/assignment whose right-hand side is being scanned for an
/// acquisition at its own depth.
#[derive(Debug)]
struct Pending {
    name: String,
    depth: usize,
    /// `if let` / `while let` bindings commit at the block `{`, plain
    /// ones at `;`.
    cond: bool,
    acq: Option<(String, u32)>, // (recv, line)
}

/// Walks one fn body, tracking guard liveness and firing [`Event`]s.
/// `skip` lists nested-fn body spans to exclude.
pub fn walk_body(
    tokens: &[Token],
    body: (usize, usize),
    skip: &[(usize, usize)],
    mut on_event: impl FnMut(&Event<'_>, &[Guard]),
) {
    let (open, close) = body;
    let mut live: Vec<Guard> = Vec::new();
    let mut pending: Vec<Pending> = Vec::new();
    let mut depth = 1usize; // inside the body braces
    let mut i = open + 1;
    while i < close {
        if let Some(&(_, e)) = skip.iter().find(|&&(s, _)| s == i) {
            i = e + 1;
            continue;
        }
        let t = text(tokens, i);
        match t {
            "{" => {
                // An `if let`/`while let` binding commits into the new
                // block's scope.
                if let Some(p) = pending.last() {
                    if p.cond && p.depth == depth {
                        let p = pending.pop().expect("pending non-empty");
                        if let Some((recv, line)) = p.acq {
                            let g = Guard {
                                name: p.name,
                                recv,
                                line,
                                depth: depth + 1,
                            };
                            on_event(&Event::Acquire(&g), &live);
                            live.push(g);
                        }
                    }
                }
                depth += 1;
                i += 1;
                continue;
            }
            "}" => {
                live.retain(|g| g.depth < depth);
                pending.retain(|p| p.depth < depth);
                depth = depth.saturating_sub(1);
                i += 1;
                continue;
            }
            ";" => {
                if let Some(p) = pending.last() {
                    if p.depth == depth && !p.cond {
                        let p = pending.pop().expect("pending non-empty");
                        if let Some((recv, line)) = p.acq {
                            // A plain re-binding of a name drops the
                            // old value only at scope end, but a plain
                            // assignment replaces it now; either way
                            // the new guard supersedes for tracking.
                            live.retain(|g| g.name != p.name);
                            let g = Guard {
                                name: p.name,
                                recv,
                                line,
                                depth,
                            };
                            on_event(&Event::Acquire(&g), &live);
                            live.push(g);
                        }
                    }
                }
                i += 1;
                continue;
            }
            "let" => {
                let cond = matches!(text(tokens, i.wrapping_sub(1)), "if" | "while");
                let mut j = i + 1;
                if text(tokens, j) == "mut" {
                    j += 1;
                }
                let simple = is_ident(tokens, j)
                    && (text(tokens, j + 1) == "=" || text(tokens, j + 1) == ":");
                if simple {
                    let name = tokens[j].text.clone();
                    // Skip a type ascription to the `=` (or give up at
                    // the statement end for `let g;`).
                    let mut k = j + 1;
                    if text(tokens, k) == ":" {
                        let mut angle = 0i32;
                        while k < close {
                            match text(tokens, k) {
                                "<" => angle += 1,
                                ">" if text(tokens, k - 1) != "-" => angle -= 1,
                                "=" if angle == 0 => break,
                                ";" => break,
                                _ => {}
                            }
                            k += 1;
                        }
                    }
                    // A leading `*` on the RHS copies *out of* the
                    // guard temporary — the binding is plain data.
                    if text(tokens, k) == "="
                        && text(tokens, k + 1) != "="
                        && text(tokens, k + 1) != "*"
                    {
                        pending.push(Pending {
                            name,
                            depth,
                            cond,
                            acq: None,
                        });
                        i = k + 1;
                        continue;
                    }
                }
                i = j;
                continue;
            }
            _ => {}
        }
        // Acquisition inside a pending RHS at the binding's depth.
        if acquire_method(tokens, i) {
            if let Some(p) = pending.last_mut() {
                if p.depth == depth && p.acq.is_none() && chain_yields_guard(tokens, i + 3) {
                    let recv = if is_ident(tokens, i.wrapping_sub(1)) {
                        tokens[i - 1].text.clone()
                    } else {
                        String::new()
                    };
                    p.acq = Some((recv, tokens[i + 1].line));
                }
            }
            i += 4;
            continue;
        }
        // drop(name) of a live guard: a release, not a call.
        if t == "drop"
            && text(tokens, i + 1) == "("
            && is_ident(tokens, i + 2)
            && text(tokens, i + 3) == ")"
            && live.iter().any(|g| g.name == text(tokens, i + 2))
        {
            let victim = text(tokens, i + 2).to_string();
            live.retain(|g| g.name != victim);
            i += 4;
            continue;
        }
        // Assignment re-acquisition: `name = …lock()…;` revives (or
        // creates) a guard under an existing binding.
        if is_ident(tokens, i)
            && text(tokens, i + 1) == "="
            && text(tokens, i + 2) != "="
            && text(tokens, i + 2) != ">" // match arm `pat => …`
            && text(tokens, i + 2) != "*" // deref copy, not a rebind
            && !matches!(text(tokens, i.wrapping_sub(1)), "." | "=" | "!" | "<" | ">" | ":")
        {
            // Only scan the RHS when the ident is (or was) guard-like:
            // any tracked name, to keep plain assignments cheap.
            pending.push(Pending {
                name: tokens[i].text.clone(),
                depth,
                cond: false,
                acq: None,
            });
            i += 2;
            continue;
        }
        // `.await` point.
        if t == "await" && text(tokens, i.wrapping_sub(1)) == "." {
            on_event(
                &Event::Await {
                    line: tokens[i].line,
                },
                &live,
            );
            i += 1;
            continue;
        }
        // Calls and macro invocations.
        if is_ident(tokens, i) && !is_call_keyword(t) && text(tokens, i.wrapping_sub(1)) != "fn" {
            if text(tokens, i + 1) == "(" {
                on_event(
                    &Event::Call {
                        name: t,
                        line: tokens[i].line,
                        is_macro: false,
                    },
                    &live,
                );
            } else if text(tokens, i + 1) == "!" && matches!(text(tokens, i + 2), "(" | "[" | "{") {
                on_event(
                    &Event::Call {
                        name: t,
                        line: tokens[i].line,
                        is_macro: true,
                    },
                    &live,
                );
                // Step over the macro bang so `{` delimiters of the
                // macro body still balance via the main loop.
                i += 2;
                continue;
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns_of(src: &str) -> (Vec<Token>, Vec<FnInfo>) {
        let lexed = lex(src);
        let fns = fn_items(&lexed.tokens);
        (lexed.tokens, fns)
    }

    #[test]
    fn qualifies_fns_by_impl_type() {
        let src = "
            struct Inner;
            impl Inner { fn cancel(&self) {} }
            impl<T> Drop for Sender<T> { fn drop(&mut self) {} }
            impl Future for Recv<'_, u32> {
                fn poll(&mut self) -> u8 { 0 }
            }
            fn free() {}
        ";
        let (_, fns) = fns_of(src);
        let quals: Vec<&str> = fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(
            quals,
            vec!["Inner::cancel", "Sender::drop", "Recv::poll", "free"]
        );
    }

    #[test]
    fn return_position_impl_is_not_an_impl_block() {
        let src = "
            fn make() -> impl Iterator<Item = u32> { std::iter::empty() }
            fn after() {}
        ";
        let (_, fns) = fns_of(src);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[1].qual, "after");
    }

    #[test]
    fn nested_fn_spans_are_reported_and_excludable() {
        let src = "fn outer() { fn inner() { helper(); } other(); }";
        let (tokens, fns) = fns_of(src);
        assert_eq!(fns.len(), 2);
        let outer = fns.iter().position(|f| f.name == "outer").expect("outer");
        let skip = nested_spans(&fns, outer);
        assert_eq!(skip.len(), 1);
        let mut calls = Vec::new();
        walk_body(&tokens, fns[outer].body, &skip, |e, _| {
            if let Event::Call { name, .. } = e {
                calls.push(name.to_string());
            }
        });
        assert_eq!(calls, vec!["other"]);
    }

    /// Collects (event description, live guard names) for assertions.
    fn trace(src: &str) -> Vec<(String, Vec<String>)> {
        let (tokens, fns) = fns_of(src);
        let mut out = Vec::new();
        for (k, f) in fns.iter().enumerate() {
            let skip = nested_spans(&fns, k);
            walk_body(&tokens, f.body, &skip, |e, live| {
                let desc = match e {
                    Event::Acquire(g) => format!("acq:{}:{}", g.name, g.recv),
                    Event::Await { .. } => "await".to_string(),
                    Event::Call { name, is_macro, .. } => {
                        format!("call:{}{}", name, if *is_macro { "!" } else { "" })
                    }
                };
                out.push((desc, live.iter().map(|g| g.name.clone()).collect()));
            });
        }
        out
    }

    #[test]
    fn guard_lives_until_drop_or_block_end() {
        let src = "
            fn f(&self) {
                let st = self.state.lock().expect(\"poisoned\");
                use_it(&st);
                drop(st);
                after();
                {
                    let inner = self.state.lock().expect(\"poisoned\");
                    touch(&inner);
                }
                outside();
            }
        ";
        let t = trace(src);
        let live_at = |call: &str| -> Vec<String> {
            t.iter()
                .find(|(d, _)| d == call)
                .map(|(_, l)| l.clone())
                .expect("event present")
        };
        assert_eq!(live_at("call:use_it"), vec!["st"]);
        assert!(live_at("call:after").is_empty(), "drop released st");
        assert_eq!(live_at("call:touch"), vec!["inner"]);
        assert!(live_at("call:outside").is_empty(), "block end released");
    }

    #[test]
    fn statement_temporaries_and_field_pulls_are_not_guards() {
        // The chain continues past the poison adapter: the bound value
        // is not the guard.
        let src = "
            fn f(&self) {
                let w = self.state.lock().expect(\"p\").waker.take();
                after();
            }
            fn g(&self) {
                let snapshot = *self.state.lock().expect(\"p\");
                copied();
            }
            fn h(&self) {
                let mut n = 0;
                n = *self.state.lock().expect(\"p\");
                reassigned(n);
            }
        ";
        let t = trace(src);
        for call in ["call:after", "call:copied", "call:reassigned"] {
            let (_, live) = t.iter().find(|(d, _)| d == call).expect("call");
            assert!(live.is_empty(), "{call}: {t:?}");
        }
    }

    #[test]
    fn reassignment_revives_a_guard() {
        let src = "
            fn f(&self) {
                let mut st = shared.state.lock().expect(\"p\");
                drop(st);
                mid();
                st = shared.state.lock().expect(\"p\");
                held(&st);
            }
        ";
        let t = trace(src);
        let (_, at_mid) = t.iter().find(|(d, _)| d == "call:mid").expect("mid");
        assert!(at_mid.is_empty());
        let (_, at_held) = t.iter().find(|(d, _)| d == "call:held").expect("held");
        assert_eq!(at_held, &vec!["st".to_string()]);
    }

    #[test]
    fn if_let_guard_is_scoped_to_its_block() {
        let src = "
            fn f(&self) {
                if let g = self.cell.lock().expect(\"p\") {
                    inside();
                }
                outside();
            }
        ";
        let t = trace(src);
        let (_, at_in) = t.iter().find(|(d, _)| d == "call:inside").expect("in");
        assert_eq!(at_in, &vec!["g".to_string()]);
        let (_, at_out) = t.iter().find(|(d, _)| d == "call:outside").expect("out");
        assert!(at_out.is_empty());
    }

    #[test]
    fn await_and_macro_events_fire() {
        let src = "
            async fn f(&self) {
                let g = self.m.lock().expect(\"p\");
                self.rx.recv().await;
                note!(x);
            }
        ";
        let t = trace(src);
        let (_, at_await) = t.iter().find(|(d, _)| d == "await").expect("await");
        assert_eq!(at_await, &vec!["g".to_string()]);
        assert!(t.iter().any(|(d, _)| d == "call:note!"));
    }

    #[test]
    fn zero_arg_read_write_acquire_but_io_read_does_not() {
        let src = "
            fn f(&self) {
                let g = self.map.read();
                r1(&g);
            }
            fn io(&self, buf: &mut [u8]) {
                let n = self.file.read(buf);
                r2(n);
            }
        ";
        let t = trace(src);
        let (_, at_r1) = t.iter().find(|(d, _)| d == "call:r1").expect("r1");
        assert_eq!(at_r1, &vec!["g".to_string()]);
        let (_, at_r2) = t.iter().find(|(d, _)| d == "call:r2").expect("r2");
        assert!(at_r2.is_empty(), "io read takes an argument");
    }
}
