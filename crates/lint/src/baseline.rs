//! The ratchet baseline: committed per-(rule, crate) violation counts.
//!
//! `lint-baseline.toml` pins the number of *accepted pre-existing*
//! violations. The gate demands exact equality with the live scan:
//!
//! * live > baseline — a new violation crept in: **fail**, fix it or
//!   justify it with `lint:allow`;
//! * live < baseline — someone fixed a violation but left the baseline
//!   loose: **fail**, run `cidre-lint --write-baseline` to ratchet
//!   down. This is what makes the ratchet one-way: counts can never
//!   silently climb back up to a stale ceiling.
//!
//! The format is a hand-rolled TOML subset (tables + `key = integer`),
//! parsed here without external crates.

use std::collections::BTreeMap;

use crate::rules::Rule;

/// Per-(rule, crate) accepted violation counts. `BTreeMap` keeps the
/// serialized form canonical, so regenerating the baseline on an
/// unchanged tree is byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `counts[rule][crate] = accepted violations`.
    pub counts: BTreeMap<Rule, BTreeMap<String, usize>>,
}

impl Baseline {
    /// Builds a baseline from live scan counts, dropping zero entries.
    pub fn from_counts(counts: &BTreeMap<(Rule, String), usize>) -> Self {
        let mut b = Baseline::default();
        for (&(rule, ref krate), &n) in counts {
            if n > 0 {
                b.counts.entry(rule).or_default().insert(krate.clone(), n);
            }
        }
        b
    }

    /// The accepted count for `(rule, crate)`; absent entries are 0.
    pub fn get(&self, rule: Rule, krate: &str) -> usize {
        self.counts
            .get(&rule)
            .and_then(|m| m.get(krate))
            .copied()
            .unwrap_or(0)
    }

    /// Serializes to the canonical committed form.
    pub fn to_toml(&self) -> String {
        let mut out = String::from(
            "# cidre-lint ratchet baseline — accepted pre-existing violations\n\
             # per (rule, crate). Counts may only go DOWN: new violations fail\n\
             # CI, and fixing one requires `cidre-lint --write-baseline` so the\n\
             # ceiling ratchets with you. See DESIGN.md §8.\n",
        );
        for (rule, crates) in &self.counts {
            if crates.is_empty() {
                continue;
            }
            out.push('\n');
            out.push('[');
            out.push_str(rule.id());
            out.push_str("]\n");
            for (krate, n) in crates {
                out.push_str(&format!("{krate} = {n}\n"));
            }
        }
        out
    }

    /// Parses the committed form. Returns `Err` with a description on
    /// any malformed line so a hand-edited baseline fails loudly.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut b = Baseline::default();
        let mut current: Option<Rule> = None;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let rule = Rule::parse(name.trim())
                    .ok_or_else(|| format!("line {}: unknown rule table [{name}]", i + 1))?;
                if rule == Rule::A0 {
                    return Err(format!(
                        "line {}: A0 (unjustified allow) can never be baselined",
                        i + 1
                    ));
                }
                current = Some(rule);
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `crate = count`", i + 1));
            };
            let rule =
                current.ok_or_else(|| format!("line {}: entry before any [RULE] table", i + 1))?;
            let krate = key.trim();
            if krate.is_empty()
                || !krate
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
            {
                return Err(format!("line {}: bad crate key `{krate}`", i + 1));
            }
            let n: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("line {}: bad count `{}`", i + 1, value.trim()))?;
            if n == 0 {
                return Err(format!(
                    "line {}: zero entries must be omitted (canonical form)",
                    i + 1
                ));
            }
            let prev = b
                .counts
                .entry(rule)
                .or_default()
                .insert(krate.to_string(), n);
            if prev.is_some() {
                return Err(format!("line {}: duplicate entry for `{krate}`", i + 1));
            }
        }
        Ok(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_canonical() {
        let mut counts = BTreeMap::new();
        counts.insert((Rule::O1, "sim".to_string()), 2);
        counts.insert((Rule::O1, "trace".to_string()), 3);
        counts.insert((Rule::C1, "metrics".to_string()), 1);
        counts.insert((Rule::F1, "bench".to_string()), 0); // dropped
        let b = Baseline::from_counts(&counts);
        let text = b.to_toml();
        let again = Baseline::parse(&text).expect("canonical form parses");
        assert_eq!(b, again);
        assert_eq!(again.to_toml(), text, "serialization is a fixed point");
        assert_eq!(b.get(Rule::O1, "sim"), 2);
        assert_eq!(b.get(Rule::F1, "bench"), 0);
        assert_eq!(b.get(Rule::W1, "nowhere"), 0);
    }

    #[test]
    fn rejects_a0_zero_and_garbage() {
        assert!(Baseline::parse("[A0]\nsim = 1\n").is_err());
        assert!(Baseline::parse("[O1]\nsim = 0\n").is_err());
        assert!(Baseline::parse("[O1]\nsim == 1\n").is_err());
        assert!(Baseline::parse("sim = 1\n").is_err(), "entry before table");
        assert!(Baseline::parse("[Z9]\n").is_err(), "unknown rule");
        assert!(Baseline::parse("[O1]\nsim = 1\nsim = 2\n").is_err(), "dup");
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let b = Baseline::parse("# header\n\n[U1]\nfaas-core = 4\n").expect("parses");
        assert_eq!(b.get(Rule::U1, "faas-core"), 4);
    }
}
