//! `cidre-lint` — in-tree determinism & safety analyzer.
//!
//! The reproduction's claim to the paper's numbers rests on
//! bit-identical determinism: the differential oracle, the pinned CSV
//! goldens, and the `FaultPlan::none() ≡ default` guarantee all assume
//! the sim substrate never acquires hidden nondeterminism. Runtime
//! tests notice *some* regressions; this analyzer enforces the domain
//! rules clippy cannot see — no wall-clock in sim, no unordered hash
//! iteration feeding a report, no NaN-unsafe float sorts — statically,
//! on every CI run, with a ratcheting committed baseline.
//!
//! Hermetic like the rest of the workspace: a hand-rolled lexer, no
//! `syn`, no external crates. See DESIGN.md §8 for the rule catalogue,
//! the `lint:allow` grammar, and the ratchet policy.

pub mod baseline;
pub mod conc;
pub mod lexer;
pub mod locks;
pub mod parser;
pub mod report;
pub mod rules;
pub mod scan;

pub use baseline::Baseline;
pub use conc::{analyze_workspace, SourceFile};
pub use locks::{LockSpec, LocksConfig};
pub use report::to_json;
pub use rules::{analyze_file, FileContext, FileKind, Rule, Violation};
pub use scan::{classify, scan_workspace, ScanResult};

use std::collections::BTreeMap;
use std::path::Path;

/// Outcome of checking a live scan against the committed baseline.
#[derive(Debug, Default)]
pub struct GateReport {
    /// (rule, crate, live, accepted) where live > accepted.
    pub new_violations: Vec<(Rule, String, usize, usize)>,
    /// (rule, crate, live, accepted) where live < accepted — the
    /// baseline is stale and must be ratcheted down.
    pub stale_entries: Vec<(Rule, String, usize, usize)>,
    /// Count of A0 findings (never baselinable).
    pub bad_allows: usize,
}

impl GateReport {
    /// True when the gate passes.
    pub fn is_clean(&self) -> bool {
        self.new_violations.is_empty() && self.stale_entries.is_empty() && self.bad_allows == 0
    }
}

/// Compares a live scan against a baseline. Exact equality per
/// (rule, crate) is required in both directions; see [`baseline`].
pub fn check_gate(result: &ScanResult, baseline: &Baseline) -> GateReport {
    let mut report = GateReport::default();
    // Union of keys from both sides.
    let mut keys: BTreeMap<(Rule, String), (usize, usize)> = BTreeMap::new();
    for (&(rule, ref krate), &live) in &result.counts {
        if rule == Rule::A0 {
            report.bad_allows += live;
            continue;
        }
        keys.entry((rule, krate.clone())).or_default().0 = live;
    }
    for (&rule, crates) in &baseline.counts {
        for (krate, &accepted) in crates {
            keys.entry((rule, krate.clone())).or_default().1 = accepted;
        }
    }
    for ((rule, krate), (live, accepted)) in keys {
        match live.cmp(&accepted) {
            std::cmp::Ordering::Greater => {
                report.new_violations.push((rule, krate, live, accepted))
            }
            std::cmp::Ordering::Less => report.stale_entries.push((rule, krate, live, accepted)),
            std::cmp::Ordering::Equal => {}
        }
    }
    report
}

/// Scans `root` and serializes the live counts as a fresh baseline
/// (what `--write-baseline` writes).
pub fn fresh_baseline(root: &Path) -> Result<String, String> {
    let result = scan_workspace(root)?;
    let live: BTreeMap<(Rule, String), usize> = result
        .counts
        .iter()
        .filter(|((rule, _), _)| *rule != Rule::A0)
        .map(|(k, &v)| (k.clone(), v))
        .collect();
    Ok(Baseline::from_counts(&live).to_toml())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with(counts: &[(Rule, &str, usize)]) -> ScanResult {
        let mut r = ScanResult::default();
        for &(rule, krate, n) in counts {
            r.counts.insert((rule, krate.to_string()), n);
        }
        r
    }

    #[test]
    fn gate_passes_on_exact_match() {
        let result = result_with(&[(Rule::O1, "sim", 2)]);
        let mut counts = BTreeMap::new();
        counts.insert((Rule::O1, "sim".to_string()), 2);
        let b = Baseline::from_counts(&counts);
        assert!(check_gate(&result, &b).is_clean());
    }

    #[test]
    fn gate_fails_on_new_violation_and_on_stale_baseline() {
        let mut counts = BTreeMap::new();
        counts.insert((Rule::O1, "sim".to_string()), 2);
        let b = Baseline::from_counts(&counts);

        let worse = result_with(&[(Rule::O1, "sim", 3)]);
        let g = check_gate(&worse, &b);
        assert_eq!(g.new_violations, vec![(Rule::O1, "sim".to_string(), 3, 2)]);

        let better = result_with(&[(Rule::O1, "sim", 1)]);
        let g = check_gate(&better, &b);
        assert_eq!(g.stale_entries, vec![(Rule::O1, "sim".to_string(), 1, 2)]);

        let fixed = result_with(&[]);
        let g = check_gate(&fixed, &b);
        assert_eq!(g.stale_entries, vec![(Rule::O1, "sim".to_string(), 0, 2)]);
    }

    #[test]
    fn a0_is_always_fatal_even_with_empty_baseline() {
        let result = result_with(&[(Rule::A0, "sim", 1)]);
        let g = check_gate(&result, &Baseline::default());
        assert_eq!(g.bad_allows, 1);
        assert!(!g.is_clean());
    }
}
