//! `--format=json`: a machine-readable scan + gate report.
//!
//! Hand-rolled serialization (no serde — the workspace is hermetic),
//! byte-deterministic by construction: findings follow the scanner's
//! path-sorted file order, counts and gate entries follow the
//! `BTreeMap` key order, and nothing timestamps or randomizes. ci.sh
//! runs the analyzer twice and `cmp`s the two reports — any
//! nondeterminism in the analyzer itself fails the gate.

use crate::{GateReport, Rule, ScanResult};

/// Escapes a string for a JSON double-quoted literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes the scan and gate outcome as a single JSON object.
pub fn to_json(result: &ScanResult, gate: &GateReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"findings\": [",
        result.files_scanned
    ));
    let mut first = true;
    for file in &result.files {
        for v in &file.violations {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"crate\": \"{}\", \"file\": \"{}\", \
                 \"line\": {}, \"message\": \"{}\"}}",
                v.rule.id(),
                esc(&file.crate_name),
                esc(&file.rel_path),
                v.line,
                esc(&v.message)
            ));
        }
    }
    out.push_str(if first { "],\n" } else { "\n  ],\n" });
    out.push_str("  \"counts\": [");
    first = true;
    for ((rule, krate), n) in &result.counts {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"crate\": \"{}\", \"count\": {n}}}",
            rule.id(),
            esc(krate)
        ));
    }
    out.push_str(if first { "],\n" } else { "\n  ],\n" });
    let live: usize = result
        .counts
        .iter()
        .filter(|((r, _), _)| *r != Rule::A0)
        .map(|(_, n)| n)
        .sum();
    out.push_str(&format!("  \"live_findings\": {live},\n"));
    out.push_str(&format!(
        "  \"gate\": {{\"clean\": {}, \"new_violations\": [",
        gate.is_clean()
    ));
    first = true;
    for (rule, krate, live, accepted) in &gate.new_violations {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"crate\": \"{}\", \"live\": {live}, \
             \"accepted\": {accepted}}}",
            rule.id(),
            esc(krate)
        ));
    }
    out.push_str(if first { "], " } else { "\n  ], " });
    out.push_str("\"stale_entries\": [");
    first = true;
    for (rule, krate, live, accepted) in &gate.stale_entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"crate\": \"{}\", \"live\": {live}, \
             \"accepted\": {accepted}}}",
            rule.id(),
            esc(krate)
        ));
    }
    out.push_str(if first { "], " } else { "\n  ], " });
    out.push_str(&format!("\"bad_allows\": {}}}\n}}\n", gate.bad_allows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::FileReport;
    use crate::{check_gate, Baseline, Violation};

    #[test]
    fn escapes_json_metacharacters() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
        assert_eq!(esc("plain"), "plain");
    }

    #[test]
    fn report_shape_round_trips_through_a_strict_checker() {
        let mut result = ScanResult {
            files_scanned: 2,
            ..ScanResult::default()
        };
        result.counts.insert((Rule::C1, "sim".to_string()), 1);
        result.files.push(FileReport {
            rel_path: "crates/sim/src/x.rs".to_string(),
            crate_name: "sim".to_string(),
            violations: vec![Violation {
                rule: Rule::C1,
                line: 7,
                message: "say \"why\"".to_string(),
            }],
        });
        let gate = check_gate(&result, &Baseline::default());
        let json = to_json(&result, &gate);
        // Structural spot-checks: quoted message escaped, counts and
        // gate present, balanced braces/brackets.
        assert!(json.contains("\"say \\\"why\\\"\""), "{json}");
        assert!(json.contains("\"files_scanned\": 2"));
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"new_violations\": ["));
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
        let b_opens = json.matches('[').count();
        let b_closes = json.matches(']').count();
        assert_eq!(b_opens, b_closes, "{json}");
    }

    #[test]
    fn empty_report_is_valid() {
        let result = ScanResult::default();
        let gate = check_gate(&result, &Baseline::default());
        let json = to_json(&result, &gate);
        assert!(json.contains("\"findings\": []"), "{json}");
        assert!(json.contains("\"clean\": true"), "{json}");
    }
}
