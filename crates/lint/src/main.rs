//! CLI: `cargo run -p cidre-lint [-- --root <dir>] [--write-baseline]
//! [--verbose] [--format=text|json]`
//!
//! Exit codes: 0 clean, 1 gate failure (new violation, stale baseline,
//! or bad allow), 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use cidre_lint::{check_gate, fresh_baseline, scan_workspace, to_json, Baseline, Rule};

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut verbose = false;
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--write-baseline" => write_baseline = true,
            "--verbose" | "-v" => verbose = true,
            "--format=text" => format = Format::Text,
            "--format=json" => format = Format::Json,
            "--help" | "-h" => {
                eprintln!(
                    "cidre-lint: determinism & safety analyzer\n\
                     \n\
                     USAGE: cidre-lint [--root <dir>] [--write-baseline] [--verbose]\n\
                     \x20                [--format=text|json]\n\
                     \n\
                     Scans every .rs file in the workspace, applies the rule set\n\
                     (W1 wall-clock, O1 hash iteration, F1 partial_cmp, C1 lossy\n\
                     casts, E1 ambient entropy, U1 unwrap in hot paths, P1 library\n\
                     printing, G1 guard across await, K1 wake under lock, L1\n\
                     lock-order cycles, S1 conductor confinement — the last three\n\
                     seeded from lint-locks.toml), honours\n\
                     justified `// lint:allow(RULE[,RULE…]): why` comments, and gates\n\
                     the result against lint-baseline.toml (exact match required).\n\
                     --write-baseline regenerates the baseline from the live scan.\n\
                     --format=json emits the scan + gate as deterministic JSON."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    // Default root: the workspace that contains this crate, so
    // `cargo run -p cidre-lint` works from anywhere inside it.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });
    let baseline_path = root.join("lint-baseline.toml");

    if write_baseline {
        let text = match fresh_baseline(&root) {
            Ok(t) => t,
            Err(e) => return fail(&e),
        };
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            return fail(&format!("writing {}: {e}", baseline_path.display()));
        }
        println!("cidre-lint: wrote {}", baseline_path.display());
        return ExitCode::SUCCESS;
    }

    let result = match scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => return fail(&format!("{}: {e}", baseline_path.display())),
        },
        Err(e) => {
            return fail(&format!(
                "{}: {e}\nrun `cidre-lint --write-baseline` to create it",
                baseline_path.display()
            ))
        }
    };

    let gate = check_gate(&result, &baseline);
    if format == Format::Json {
        print!("{}", to_json(&result, &gate));
        return if gate.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if verbose || !gate.is_clean() {
        for file in &result.files {
            for v in &file.violations {
                println!("{} {}:{} {}", v.rule.id(), file.rel_path, v.line, v.message);
            }
        }
    }
    println!(
        "cidre-lint: scanned {} files, {} live finding(s) across {} (rule, crate) bucket(s)",
        result.files_scanned,
        result
            .counts
            .iter()
            .filter(|((r, _), _)| *r != Rule::A0)
            .map(|(_, n)| n)
            .sum::<usize>(),
        result.counts.len()
    );
    if gate.is_clean() {
        println!("cidre-lint: gate clean (baseline exactly matched)");
        return ExitCode::SUCCESS;
    }
    for (rule, krate, live, accepted) in &gate.new_violations {
        eprintln!(
            "cidre-lint: NEW violation(s): rule {} in crate `{krate}`: live {live} > accepted {accepted} \
             — fix them or add `// lint:allow({}): <why>`",
            rule.id(),
            rule.id()
        );
    }
    for (rule, krate, live, accepted) in &gate.stale_entries {
        eprintln!(
            "cidre-lint: STALE baseline: rule {} in crate `{krate}`: live {live} < accepted {accepted} \
             — run `cargo run -p cidre-lint -- --write-baseline` to ratchet down",
            rule.id()
        );
    }
    if gate.bad_allows > 0 {
        eprintln!(
            "cidre-lint: {} bad lint:allow directive(s) (missing justification / unknown rule) — \
             these are never baselinable",
            gate.bad_allows
        );
    }
    ExitCode::FAILURE
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("cidre-lint: {msg} (try --help)");
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("cidre-lint: {msg}");
    ExitCode::from(2)
}
