//! Workspace walker: finds every `.rs` file, derives its
//! [`FileContext`], runs the per-file rules and the seeded workspace
//! concurrency pass, and aggregates per-(rule, crate) counts for the
//! ratchet.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::conc::{analyze_workspace, SourceFile};
use crate::locks::LocksConfig;
use crate::rules::{analyze_file, FileContext, FileKind, Rule, Violation};

/// One file's findings, workspace-relative.
#[derive(Debug)]
pub struct FileReport {
    /// `/`-separated path relative to the workspace root.
    pub rel_path: String,
    /// Crate key used in the baseline.
    pub crate_name: String,
    /// Violations surviving suppression.
    pub violations: Vec<Violation>,
}

/// Aggregated scan output.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Per-file findings, sorted by path.
    pub files: Vec<FileReport>,
    /// Live counts per (rule, crate), zero entries omitted.
    pub counts: BTreeMap<(Rule, String), usize>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Directories never scanned: build output, VCS, experiment output,
/// and the lint fixture corpus (whose files are violations on purpose).
fn skip_dir(rel: &str) -> bool {
    rel == "target"
        || rel == ".git"
        || rel == "results"
        || rel == "crates/lint/fixtures"
        || rel.starts_with('.')
}

/// Derives the baseline crate key and test-ness from a relative path.
///
/// Crate key is the directory name under `crates/` (`sim`,
/// `faas-core`, …) or `"root"` for the workspace-root package. Files
/// under any `tests/`, `benches/`, or `examples/` directory are test
/// context; everything else is source.
pub fn classify(rel: &str) -> FileContext {
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("root")
        .to_string();
    let test_markers = ["tests/", "benches/", "examples/"];
    let is_test = test_markers
        .iter()
        .any(|m| rel.starts_with(m) || rel.contains(&format!("/{m}")));
    FileContext {
        crate_name,
        rel_path: rel.to_string(),
        file_kind: if is_test {
            FileKind::TestFile
        } else {
            FileKind::Source
        },
    }
}

/// Scans the workspace rooted at `root`: the per-file rules on every
/// `.rs` file, then the workspace concurrency pass (K1/L1/S1) seeded
/// from `<root>/lint-locks.toml` — a missing seed file leaves those
/// rules silent; a malformed one is fatal. I/O errors on individual
/// files are fatal too: a lint gate that silently skips unreadable
/// files is not a gate.
pub fn scan_workspace(root: &Path) -> Result<ScanResult, String> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    let locks_path = root.join("lint-locks.toml");
    let cfg = match std::fs::read_to_string(&locks_path) {
        Ok(text) => {
            LocksConfig::parse(&text).map_err(|e| format!("{}: {e}", locks_path.display()))?
        }
        Err(_) => LocksConfig::default(),
    };

    let mut sources: Vec<SourceFile> = Vec::new();
    let mut per_file: Vec<Vec<Violation>> = Vec::new();
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .map_err(|_| "walk escaped root".to_string())?
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let ctx = classify(&rel);
        per_file.push(analyze_file(&ctx, &src));
        sources.push(SourceFile { ctx, src });
    }
    for (idx, v) in analyze_workspace(&sources, &cfg)? {
        per_file[idx].push(v);
    }

    let mut result = ScanResult {
        files_scanned: sources.len(),
        ..ScanResult::default()
    };
    for (file, mut violations) in sources.into_iter().zip(per_file) {
        violations.sort_by_key(|v| (v.line, v.rule));
        for v in &violations {
            *result
                .counts
                .entry((v.rule, file.ctx.crate_name.clone()))
                .or_insert(0) += 1;
        }
        if !violations.is_empty() {
            result.files.push(FileReport {
                rel_path: file.ctx.rel_path,
                crate_name: file.ctx.crate_name,
                violations,
            });
        }
    }
    Ok(result)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walking {}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .map_err(|_| "walk escaped root".to_string())?
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let ty = entry
            .file_type()
            .map_err(|e| format!("stat {}: {e}", path.display()))?;
        if ty.is_dir() {
            if !skip_dir(&rel) {
                walk(root, &path, out)?;
            }
        } else if ty.is_file() && rel.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_derives_crate_and_testness() {
        let c = classify("crates/sim/src/engine.rs");
        assert_eq!(c.crate_name, "sim");
        assert_eq!(c.file_kind, FileKind::Source);
        let c = classify("crates/sim/tests/oracle_edges.rs");
        assert_eq!(c.crate_name, "sim");
        assert_eq!(c.file_kind, FileKind::TestFile);
        let c = classify("tests/determinism.rs");
        assert_eq!(c.crate_name, "root");
        assert_eq!(c.file_kind, FileKind::TestFile);
        let c = classify("examples/quickstart.rs");
        assert_eq!(c.file_kind, FileKind::TestFile);
        let c = classify("src/lib.rs");
        assert_eq!(c.crate_name, "root");
        assert_eq!(c.file_kind, FileKind::Source);
        let c = classify("crates/bench/benches/figures.rs");
        assert_eq!(c.crate_name, "bench");
        assert_eq!(c.file_kind, FileKind::TestFile);
    }

    #[test]
    fn fixture_corpus_and_target_are_skipped() {
        assert!(skip_dir("target"));
        assert!(skip_dir("crates/lint/fixtures"));
        assert!(skip_dir(".git"));
        assert!(!skip_dir("crates/lint/src"));
        assert!(!skip_dir("crates"));
    }
}
