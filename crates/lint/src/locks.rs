//! `lint-locks.toml` — the seed data for the workspace concurrency
//! rules (K1/L1/S1, DESIGN.md §13), parsed with the same hand-rolled
//! TOML-subset philosophy as [`crate::baseline`].
//!
//! Schema (all keys shown; unknown sections or keys are errors so a
//! typo cannot silently disable a rule):
//!
//! ```toml
//! [k1]
//! scope = ["crates/live/src/exec/"]        # path substrings
//!
//! [[lock]]                                  # one table per named lock
//! name  = "arena"                           # unique
//! files = ["crates/live/src/exec/task.rs"]  # path suffixes
//! field = "state"                           # receiver ident before .lock()
//! impls = ["Inner"]                         # optional impl-type filter
//!
//! [s1]
//! entry = ["ShardCore::run_until"]          # shard-execution entry fns
//! scope = ["crates/sim/src/shard.rs"]       # call-graph universe
//! conductor_only = ["on_admit", "obs"]      # forbidden names (fns or macros)
//! ```
//!
//! A missing file yields [`LocksConfig::default`]: every workspace
//! rule that needs seed data is silent, and only the seed-free G1
//! runs.

/// One named lock for L1's acquisition-order graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LockSpec {
    /// Display name used in the order graph (`arena`, `reactor`, …).
    pub name: String,
    /// Workspace-relative path suffixes where this lock is acquired.
    pub files: Vec<String>,
    /// Receiver ident immediately before the acquiring `.lock()`.
    pub field: String,
    /// Impl types whose methods acquire this lock; empty = any.
    pub impls: Vec<String>,
}

impl LockSpec {
    /// Whether an acquisition at (`rel_path`, impl `ty`, receiver
    /// `recv`) is this lock.
    pub fn matches(&self, rel_path: &str, ty: Option<&str>, recv: &str) -> bool {
        recv == self.field
            && self.files.iter().any(|f| rel_path.ends_with(f.as_str()))
            && (self.impls.is_empty() || ty.is_some_and(|t| self.impls.iter().any(|i| i == t)))
    }
}

/// The parsed seed file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LocksConfig {
    /// Path substrings under K1 (wake-under-lock) analysis.
    pub k1_scope: Vec<String>,
    /// Named locks for L1.
    pub locks: Vec<LockSpec>,
    /// S1 shard-execution entry points (`Type::fn` or bare names).
    pub s1_entries: Vec<String>,
    /// Path substrings forming S1's call-graph universe.
    pub s1_scope: Vec<String>,
    /// Names (fns or macros) only the conductor may call.
    pub s1_conductor_only: Vec<String>,
}

/// Which table a key-value line belongs to.
#[derive(Debug, PartialEq)]
enum Section {
    None,
    K1,
    Lock,
    S1,
}

/// Parses a TOML string value: `"…"` (no escapes needed — paths and
/// identifiers only).
fn parse_string(raw: &str, line_no: usize) -> Result<String, String> {
    let v = raw.trim();
    let inner = v
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("line {line_no}: expected a double-quoted string, got `{v}`"))?;
    if inner.contains('"') || inner.contains('\\') {
        return Err(format!(
            "line {line_no}: escapes are not supported in `{inner}`"
        ));
    }
    Ok(inner.to_string())
}

/// Parses `["a", "b", …]` (the `[` already seen; may span lines via
/// the caller's accumulation).
fn parse_array(raw: &str, line_no: usize) -> Result<Vec<String>, String> {
    let v = raw.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("line {line_no}: expected `[\"…\", …]`, got `{v}`"))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(part, line_no)?);
    }
    Ok(out)
}

impl LocksConfig {
    /// Parses the committed form; any malformed or unknown construct
    /// fails loudly.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut cfg = LocksConfig::default();
        let mut section = Section::None;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((i, raw)) = lines.next() {
            let line_no = i + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                section = match header.strip_suffix(']') {
                    Some("k1") => Section::K1,
                    Some("s1") => Section::S1,
                    Some("[lock]") => {
                        cfg.locks.push(LockSpec::default());
                        Section::Lock
                    }
                    _ => return Err(format!("line {line_no}: unknown table `{line}`")),
                };
                continue;
            }
            let Some((key, mut value)) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            else {
                return Err(format!("line {line_no}: expected `key = value`"));
            };
            // Accumulate a multi-line array until the closing bracket.
            while value.starts_with('[') && !value.ends_with(']') {
                let Some((_, next)) = lines.next() else {
                    return Err(format!("line {line_no}: unterminated array for `{key}`"));
                };
                value.push(' ');
                value.push_str(strip_comment(next).trim());
            }
            match (&section, key.as_str()) {
                (Section::K1, "scope") => cfg.k1_scope = parse_array(&value, line_no)?,
                (Section::Lock, "name") => {
                    lock_mut(&mut cfg)?.name = parse_string(&value, line_no)?
                }
                (Section::Lock, "files") => {
                    lock_mut(&mut cfg)?.files = parse_array(&value, line_no)?
                }
                (Section::Lock, "field") => {
                    lock_mut(&mut cfg)?.field = parse_string(&value, line_no)?
                }
                (Section::Lock, "impls") => {
                    lock_mut(&mut cfg)?.impls = parse_array(&value, line_no)?
                }
                (Section::S1, "entry") => cfg.s1_entries = parse_array(&value, line_no)?,
                (Section::S1, "scope") => cfg.s1_scope = parse_array(&value, line_no)?,
                (Section::S1, "conductor_only") => {
                    cfg.s1_conductor_only = parse_array(&value, line_no)?
                }
                _ => return Err(format!("line {line_no}: unknown key `{key}` in this table")),
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Cross-field checks: locks need distinct names, a field, and at
    /// least one file; S1 needs its three lists together or not at all.
    fn validate(&self) -> Result<(), String> {
        let mut names: Vec<&str> = self.locks.iter().map(|l| l.name.as_str()).collect();
        names.sort_unstable();
        for w in names.windows(2) {
            if w[0] == w[1] && !w[0].is_empty() {
                return Err(format!("duplicate lock name `{}`", w[0]));
            }
        }
        for l in &self.locks {
            if l.name.is_empty() || l.field.is_empty() || l.files.is_empty() {
                return Err(format!(
                    "lock `{}` needs name, field, and at least one file",
                    l.name
                ));
            }
        }
        let s1_parts = [
            !self.s1_entries.is_empty(),
            !self.s1_scope.is_empty(),
            !self.s1_conductor_only.is_empty(),
        ];
        if s1_parts.iter().any(|&p| p) && !s1_parts.iter().all(|&p| p) {
            return Err(
                "[s1] needs entry, scope, and conductor_only together (or none)".to_string(),
            );
        }
        Ok(())
    }
}

fn strip_comment(line: &str) -> &str {
    // Values never contain `#` (validated: no escapes, identifiers and
    // paths only), so a bare split is safe.
    line.split('#').next().unwrap_or("")
}

fn lock_mut(cfg: &mut LocksConfig) -> Result<&mut LockSpec, String> {
    cfg.locks
        .last_mut()
        .ok_or_else(|| "lock key outside a [[lock]] table".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# seed data
[k1]
scope = ["crates/live/src/exec/"]

[[lock]]
name  = "arena"
files = ["task.rs"]
field = "state"
impls = ["Inner"]

[[lock]]
name  = "reactor"
files = ["reactor.rs"]
field = "state"

[s1]
entry = ["ShardCore::run_until"]
scope = ["crates/sim/src/shard.rs"]
conductor_only = [
    "on_admit",  # policy hook
    "obs",
]
"#;

    #[test]
    fn parses_the_full_schema() {
        let cfg = LocksConfig::parse(SAMPLE).expect("sample parses");
        assert_eq!(cfg.k1_scope, vec!["crates/live/src/exec/"]);
        assert_eq!(cfg.locks.len(), 2);
        assert_eq!(cfg.locks[0].name, "arena");
        assert_eq!(cfg.locks[0].impls, vec!["Inner"]);
        assert!(cfg.locks[1].impls.is_empty());
        assert_eq!(cfg.s1_entries, vec!["ShardCore::run_until"]);
        assert_eq!(cfg.s1_conductor_only, vec!["on_admit", "obs"]);
    }

    #[test]
    fn lock_matching_uses_file_field_and_impl() {
        let cfg = LocksConfig::parse(SAMPLE).expect("sample parses");
        let arena = &cfg.locks[0];
        assert!(arena.matches("crates/live/src/exec/task.rs", Some("Inner"), "state"));
        assert!(!arena.matches("crates/live/src/exec/task.rs", Some("Parker"), "state"));
        assert!(!arena.matches("crates/live/src/exec/task.rs", None, "state"));
        assert!(!arena.matches("crates/live/src/exec/mod.rs", Some("Inner"), "state"));
        let reactor = &cfg.locks[1];
        assert!(reactor.matches("crates/live/src/exec/reactor.rs", None, "state"));
        assert!(!reactor.matches("crates/live/src/exec/reactor.rs", None, "cell"));
    }

    #[test]
    fn rejects_unknown_tables_keys_and_bad_shapes() {
        assert!(LocksConfig::parse("[zz]\n").is_err());
        assert!(LocksConfig::parse("[k1]\nbogus = [\"x\"]\n").is_err());
        assert!(
            LocksConfig::parse("name = \"x\"\n").is_err(),
            "key outside table"
        );
        assert!(
            LocksConfig::parse("[[lock]]\nname = \"a\"\nfield = \"f\"\n").is_err(),
            "lock without files"
        );
        let dup = "[[lock]]\nname = \"a\"\nfiles = [\"x\"]\nfield = \"f\"\n\
                   [[lock]]\nname = \"a\"\nfiles = [\"y\"]\nfield = \"g\"\n";
        assert!(LocksConfig::parse(dup).is_err(), "duplicate lock name");
        assert!(
            LocksConfig::parse("[s1]\nentry = [\"E\"]\n").is_err(),
            "partial s1"
        );
        assert!(
            LocksConfig::parse("[s1]\nentry = [\"E\"\n").is_err(),
            "unterminated"
        );
    }

    #[test]
    fn missing_file_semantics_is_the_default() {
        let cfg = LocksConfig::default();
        assert!(cfg.k1_scope.is_empty() && cfg.locks.is_empty() && cfg.s1_entries.is_empty());
    }
}
