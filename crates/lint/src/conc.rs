//! The workspace concurrency pass: K1 (wake under an executor lock),
//! L1 (lock-acquisition-order cycles), and S1 (conductor confinement),
//! all seeded from `lint-locks.toml` ([`crate::locks`]) and built on
//! the brace-tree parser's flow walker ([`crate::parser`]).
//!
//! Unlike the per-file rules these need cross-file state — K1's
//! one-level wake set, L1's order graph, and S1's call graph all span
//! crates — so the pass runs once over every parsed file and hands its
//! findings back to the scanner, which merges them into the same
//! per-file reports, suppression grammar, and ratchet the token rules
//! use. Test context (test files and `#[cfg(test)]` modules) is out of
//! scope for all three: tests *are* conductors and hold locks on
//! purpose. See DESIGN.md §13 for rule semantics.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::lex;
use crate::locks::LocksConfig;
use crate::parser::{fn_items, nested_spans, walk_body, Event, FnInfo};
use crate::rules::{
    apply_suppressions, parse_allows, test_spans, FileContext, FileKind, Rule, Violation,
};

/// One workspace file handed to the pass.
#[derive(Debug)]
pub struct SourceFile {
    /// Scope/classification info.
    pub ctx: FileContext,
    /// Full source text.
    pub src: String,
}

/// A parsed file, shared by the three rules.
struct Parsed {
    tokens: Vec<crate::lexer::Token>,
    comments: Vec<crate::lexer::Comment>,
    fns: Vec<FnInfo>,
    /// Per-fn: is the body in test context?
    fn_in_test: Vec<bool>,
}

/// Runs K1/L1/S1 over the workspace. Returns `(file index, violation)`
/// pairs with each file's justified suppressions already applied.
/// Errors on seed-data rot (an S1 entry that resolves to no function).
pub fn analyze_workspace(
    files: &[SourceFile],
    cfg: &LocksConfig,
) -> Result<Vec<(usize, Violation)>, String> {
    let parsed: Vec<Parsed> = files
        .iter()
        .map(|f| {
            let lexed = lex(&f.src);
            let in_test = test_spans(&lexed.tokens, f.ctx.file_kind);
            let fns = fn_items(&lexed.tokens);
            let fn_in_test = fns
                .iter()
                .map(|fi| in_test.get(fi.body.0).copied().unwrap_or(false))
                .collect();
            Parsed {
                tokens: lexed.tokens,
                comments: lexed.comments,
                fns,
                fn_in_test,
            }
        })
        .collect();

    let mut violations: Vec<(usize, Violation)> = Vec::new();
    rule_k1(files, &parsed, cfg, &mut violations);
    rule_l1(files, &parsed, cfg, &mut violations);
    rule_s1(files, &parsed, cfg, &mut violations)?;

    // Per-file suppression with the shared grammar. A0s from bad
    // directives are already reported by `analyze_file` on the same
    // file, so only the allows are used here.
    let mut by_file: BTreeMap<usize, Vec<Violation>> = BTreeMap::new();
    for (idx, v) in violations {
        by_file.entry(idx).or_default().push(v);
    }
    let mut out = Vec::new();
    for (idx, mut vs) in by_file {
        let (allows, _bad) = parse_allows(&parsed[idx].comments);
        apply_suppressions(&parsed[idx].tokens, &allows, &mut vs);
        out.extend(vs.into_iter().map(|v| (idx, v)));
    }
    Ok(out)
}

/// Source (non-test) fns of one file that a scope-substring list
/// selects, as `(fn index)` — test files contribute nothing.
fn scoped_fns(files: &[SourceFile], parsed: &[Parsed], idx: usize, scope: &[String]) -> Vec<usize> {
    let ctx = &files[idx].ctx;
    if ctx.file_kind == FileKind::TestFile
        || !scope.iter().any(|s| ctx.rel_path.contains(s.as_str()))
    {
        return Vec::new();
    }
    (0..parsed[idx].fns.len())
        .filter(|&k| !parsed[idx].fn_in_test[k])
        .collect()
}

/// K1 — `wake()` / `wake_by_ref()` (or a call into a function that
/// wakes directly — one level deep) while any lock guard is live.
/// DESIGN.md §10 rule 1: a waker invoked under the arena/reactor lock
/// re-enters `schedule` and deadlocks or re-orders the run queue.
fn rule_k1(
    files: &[SourceFile],
    parsed: &[Parsed],
    cfg: &LocksConfig,
    out: &mut Vec<(usize, Violation)>,
) {
    if cfg.k1_scope.is_empty() {
        return;
    }
    // Pass 1: which in-scope fns wake directly?
    let mut wakers: BTreeSet<String> = BTreeSet::new();
    for idx in 0..files.len() {
        for k in scoped_fns(files, parsed, idx, &cfg.k1_scope) {
            let p = &parsed[idx];
            let skip = nested_spans(&p.fns, k);
            let mut wakes = false;
            walk_body(&p.tokens, p.fns[k].body, &skip, |e, _| {
                if let Event::Call {
                    name,
                    is_macro: false,
                    ..
                } = e
                {
                    if matches!(*name, "wake" | "wake_by_ref") {
                        wakes = true;
                    }
                }
            });
            if wakes {
                wakers.insert(p.fns[k].name.clone());
            }
        }
    }
    // Pass 2: flag wake-reaching calls under a live guard.
    for idx in 0..files.len() {
        for k in scoped_fns(files, parsed, idx, &cfg.k1_scope) {
            let p = &parsed[idx];
            let skip = nested_spans(&p.fns, k);
            walk_body(&p.tokens, p.fns[k].body, &skip, |e, live| {
                let Event::Call {
                    name,
                    line,
                    is_macro: false,
                } = e
                else {
                    return;
                };
                if live.is_empty() {
                    return;
                }
                let held = live
                    .iter()
                    .map(|g| g.name.as_str())
                    .collect::<Vec<_>>()
                    .join("`, `");
                if matches!(*name, "wake" | "wake_by_ref") {
                    out.push((
                        idx,
                        Violation {
                            rule: Rule::K1,
                            line: *line,
                            message: format!(
                                "`{name}()` while guard `{held}` is held; wakers re-enter \
                                 the executor — drop the guard first (DESIGN.md §10 rule 1)"
                            ),
                        },
                    ));
                } else if wakers.contains(*name) {
                    out.push((
                        idx,
                        Violation {
                            rule: Rule::K1,
                            line: *line,
                            message: format!(
                                "`{name}()` wakes directly and is called while guard \
                                 `{held}` is held; drop the guard first (DESIGN.md §10 \
                                 rule 1, one level deep)"
                            ),
                        },
                    ));
                }
            });
        }
    }
}

/// L1 — the workspace lock-acquisition-order graph. Every acquisition
/// of a seeded lock while another seeded lock's guard is live adds an
/// edge; any edge on a cycle (including a self-edge: re-acquiring a
/// held lock) is a finding at the inner acquisition site.
fn rule_l1(
    files: &[SourceFile],
    parsed: &[Parsed],
    cfg: &LocksConfig,
    out: &mut Vec<(usize, Violation)>,
) {
    if cfg.locks.is_empty() {
        return;
    }
    let resolve = |rel: &str, ty: Option<&str>, recv: &str| -> Option<&str> {
        cfg.locks
            .iter()
            .find(|l| l.matches(rel, ty, recv))
            .map(|l| l.name.as_str())
    };
    // (holding, acquiring, file idx, line) — source order, so output
    // and cycle paths are deterministic.
    let mut edges: Vec<(String, String, usize, u32)> = Vec::new();
    for (idx, file) in files.iter().enumerate() {
        if file.ctx.file_kind == FileKind::TestFile {
            continue;
        }
        let p = &parsed[idx];
        for k in 0..p.fns.len() {
            if p.fn_in_test[k] {
                continue;
            }
            let fi = &p.fns[k];
            let ty = fi.impl_type();
            let skip = nested_spans(&p.fns, k);
            walk_body(&p.tokens, fi.body, &skip, |e, live| {
                let Event::Acquire(g) = e else { return };
                let Some(new) = resolve(&file.ctx.rel_path, ty, &g.recv) else {
                    return;
                };
                for held in live {
                    if let Some(old) = resolve(&file.ctx.rel_path, ty, &held.recv) {
                        edges.push((old.to_string(), new.to_string(), idx, g.line));
                    }
                }
            });
        }
    }
    // Adjacency over distinct edges; flag every edge instance that
    // lies on a cycle.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (old, new, _, _) in &edges {
        adj.entry(old.as_str()).or_default().insert(new.as_str());
    }
    for (old, new, idx, line) in &edges {
        let Some(path) = find_path(&adj, new, old) else {
            continue;
        };
        let chain = if old == new {
            format!("`{new}` is already held")
        } else {
            let mut names = path.clone();
            names.push(old.as_str());
            format!(
                "the reverse order `{}` exists elsewhere",
                names.join("` → `")
            )
        };
        out.push((
            *idx,
            Violation {
                rule: Rule::L1,
                line: *line,
                message: format!(
                    "acquiring lock `{new}` while holding `{old}` completes an \
                     acquisition-order cycle ({chain}); fix the ordering or drop first"
                ),
            },
        ));
    }
}

/// BFS path from `from` to `to` over the order graph (inclusive of
/// `from`, exclusive of `to`); `Some` means `to` is reachable.
fn find_path<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = VecDeque::from([from]);
    let mut seen = BTreeSet::from([from]);
    while let Some(u) = queue.pop_front() {
        if u == to {
            // Walk back to build the path.
            let mut path = Vec::new();
            let mut cur = u;
            while cur != from {
                path.push(cur);
                cur = prev[cur];
            }
            path.push(from);
            path.reverse();
            path.pop(); // exclusive of `to` == the final hop target
            return Some(path);
        }
        for &v in adj.get(u).into_iter().flatten() {
            if seen.insert(v) {
                prev.insert(v, u);
                queue.push_back(v);
            }
        }
    }
    None
}

/// S1 — conductor confinement: nothing reachable from a shard
/// execution entry point may call a conductor-only API (DESIGN.md §9).
/// The call graph is name-based over the configured scope files;
/// an entry that resolves to no function is seed-data rot and errors.
fn rule_s1(
    files: &[SourceFile],
    parsed: &[Parsed],
    cfg: &LocksConfig,
    out: &mut Vec<(usize, Violation)>,
) -> Result<(), String> {
    if cfg.s1_entries.is_empty() {
        return Ok(());
    }
    // Definitions and per-fn call lists over the scope.
    let mut by_bare: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    let mut by_qual: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    let mut calls: BTreeMap<(usize, usize), Vec<(String, u32)>> = BTreeMap::new();
    for idx in 0..files.len() {
        for k in scoped_fns(files, parsed, idx, &cfg.s1_scope) {
            let p = &parsed[idx];
            let fi = &p.fns[k];
            by_bare.entry(&fi.name).or_default().push((idx, k));
            by_qual.entry(&fi.qual).or_default().push((idx, k));
            let skip = nested_spans(&p.fns, k);
            let mut list = Vec::new();
            walk_body(&p.tokens, fi.body, &skip, |e, _| {
                if let Event::Call { name, line, .. } = e {
                    list.push((name.to_string(), *line));
                }
            });
            calls.insert((idx, k), list);
        }
    }
    let forbidden: BTreeSet<&str> = cfg.s1_conductor_only.iter().map(|s| s.as_str()).collect();
    let mut visited: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut queue: VecDeque<((usize, usize), String)> = VecDeque::new();
    for entry in &cfg.s1_entries {
        let defs = if entry.contains("::") {
            by_qual.get(entry.as_str())
        } else {
            by_bare.get(entry.as_str())
        };
        let defs = defs.ok_or_else(|| {
            format!(
                "lint-locks.toml: [s1] entry `{entry}` resolves to no function in scope \
                 — update the seed data"
            )
        })?;
        for &d in defs {
            if visited.insert(d) {
                queue.push_back((d, entry.clone()));
            }
        }
    }
    while let Some(((idx, k), entry)) = queue.pop_front() {
        let qual = parsed[idx].fns[k].qual.clone();
        for (name, line) in calls.get(&(idx, k)).into_iter().flatten() {
            if forbidden.contains(name.as_str()) {
                out.push((
                    idx,
                    Violation {
                        rule: Rule::S1,
                        line: *line,
                        message: format!(
                            "conductor-only API `{name}` called in `{qual}`, which is \
                             reachable from shard entry `{entry}`; shard execution may \
                             not touch policies/queues/faults/recorder (DESIGN.md §9)"
                        ),
                    },
                ));
            } else {
                for &d in by_bare.get(name.as_str()).into_iter().flatten() {
                    if visited.insert(d) {
                        queue.push_back((d, entry.clone()));
                    }
                }
            }
        }
    }
    Ok(())
}
