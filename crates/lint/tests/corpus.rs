//! Self-test over the fixture corpus in `fixtures/`.
//!
//! Each fixture holds, for one rule: positive cases that must fire,
//! justified `lint:allow` cases that must be suppressed, and a *bare*
//! allow that must both report `A0` and fail to suppress. The corpus is
//! excluded from workspace scans (`scan::skip_dir`), so these files can
//! be violations on purpose without touching the ratchet baseline.

use std::path::Path;

use cidre_lint::{
    analyze_file, analyze_workspace, classify, FileContext, FileKind, LocksConfig, Rule, SourceFile,
};

/// Analyzes one fixture under a caller-chosen crate context (rules are
/// crate-scoped, so each fixture picks a crate where only its own rule
/// family fires).
fn run(fixture: &str, crate_name: &str) -> Vec<(Rule, u32)> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(fixture);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    let ctx = FileContext {
        crate_name: crate_name.to_string(),
        rel_path: format!("crates/{crate_name}/src/fixture.rs"),
        file_kind: FileKind::Source,
    };
    analyze_file(&ctx, &src)
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

fn count(v: &[(Rule, u32)], rule: Rule) -> usize {
    v.iter().filter(|(r, _)| *r == rule).count()
}

#[test]
fn w1_corpus() {
    let v = run("w1.rs", "sim");
    // Two positives, one un-suppressed behind a bare allow; the two
    // justified allows (trailing + comment-above) are silent.
    assert_eq!(count(&v, Rule::W1), 3, "{v:?}");
    assert_eq!(count(&v, Rule::A0), 1, "{v:?}");
    assert_eq!(v.len(), 4, "no other rule may fire: {v:?}");
}

#[test]
fn o1_corpus() {
    let v = run("o1.rs", "sim");
    // values() call, for-loop over a field, for-loop over a local
    // HashSet, and the keys() call behind the bare allow.
    assert_eq!(count(&v, Rule::O1), 4, "{v:?}");
    assert_eq!(count(&v, Rule::A0), 1, "{v:?}");
    assert_eq!(v.len(), 5, "{v:?}");
}

#[test]
fn f1_corpus() {
    // Run as `metrics` so the unwrap in the positive case does not also
    // trip U1 (scoped to faas-core/sim).
    let v = run("f1.rs", "metrics");
    assert_eq!(count(&v, Rule::F1), 2, "{v:?}");
    assert_eq!(count(&v, Rule::A0), 1, "{v:?}");
    assert_eq!(v.len(), 3, "{v:?}");
}

#[test]
fn c1_corpus() {
    let v = run("c1.rs", "trace");
    // micros, mem_mb, and idle_ms casts; the secs cast is allowed, the
    // unmarked `n as u64` never fires.
    assert_eq!(count(&v, Rule::C1), 3, "{v:?}");
    assert_eq!(count(&v, Rule::A0), 1, "{v:?}");
    assert_eq!(v.len(), 4, "{v:?}");
}

#[test]
fn e1_corpus() {
    let v = run("e1.rs", "sim");
    // RandomState + DefaultHasher imports, the positive env read, and
    // the env read behind the bare allow.
    assert_eq!(count(&v, Rule::E1), 4, "{v:?}");
    assert_eq!(count(&v, Rule::A0), 1, "{v:?}");
    assert_eq!(v.len(), 5, "{v:?}");
}

#[test]
fn u1_corpus() {
    let v = run("u1.rs", "faas-core");
    assert_eq!(count(&v, Rule::U1), 2, "{v:?}");
    assert_eq!(count(&v, Rule::A0), 1, "{v:?}");
    assert_eq!(v.len(), 3, "{v:?}");
}

#[test]
fn p1_corpus() {
    let v = run("p1.rs", "sim");
    // Two positives plus the print behind the bare allow; the
    // cfg(test) print and both justified allows are silent.
    assert_eq!(count(&v, Rule::P1), 3, "{v:?}");
    assert_eq!(count(&v, Rule::A0), 1, "{v:?}");
    assert_eq!(v.len(), 4, "{v:?}");
}

#[test]
fn p1_exempts_binaries_and_terminal_crates() {
    use cidre_lint::analyze_file;
    let src = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join("p1.rs"),
    )
    .expect("fixture readable");
    // A binary target, a crate main.rs, and the crates whose product
    // is terminal output are all out of scope (A0 from the bare allow
    // still fires — suppression hygiene is never exempt).
    for (crate_name, rel_path) in [
        ("bench", "crates/bench/src/bin/experiments.rs"),
        ("lint", "crates/lint/src/main.rs"),
        ("lint", "crates/lint/src/rules.rs"),
        ("testkit", "crates/testkit/src/bench.rs"),
    ] {
        let ctx = FileContext {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            file_kind: FileKind::Source,
        };
        let v: Vec<(Rule, u32)> = analyze_file(&ctx, &src)
            .into_iter()
            .map(|v| (v.rule, v.line))
            .collect();
        assert_eq!(count(&v, Rule::P1), 0, "{rel_path}: {v:?}");
        assert_eq!(count(&v, Rule::A0), 1, "{rel_path}: {v:?}");
    }
}

/// Runs the workspace concurrency pass over one fixture under a
/// caller-chosen relative path and seed config.
fn run_workspace(fixture: &str, rel_path: &str, cfg_toml: &str) -> Vec<(Rule, u32)> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(fixture);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    let cfg = LocksConfig::parse(cfg_toml).expect("test seed config parses");
    let files = vec![SourceFile {
        ctx: FileContext {
            crate_name: "fixt".to_string(),
            rel_path: rel_path.to_string(),
            file_kind: FileKind::Source,
        },
        src,
    }];
    analyze_workspace(&files, &cfg)
        .expect("workspace pass succeeds")
        .into_iter()
        .map(|(_, v)| (v.rule, v.line))
        .collect()
}

#[test]
fn g1_corpus() {
    let v = run("g1.rs", "live");
    // Simple positive, the two-guard positive, and the await behind
    // the bare allow; both justified allows and the three negative
    // shapes (drop-first, scoped-out, deref copy) are silent.
    assert_eq!(count(&v, Rule::G1), 3, "{v:?}");
    assert_eq!(count(&v, Rule::A0), 1, "{v:?}");
    assert_eq!(v.len(), 4, "{v:?}");
}

#[test]
fn k1_corpus() {
    let cfg = "[k1]\nscope = [\"crates/fixt/\"]\n";
    let v = run_workspace("k1.rs", "crates/fixt/src/k1.rs", cfg);
    // Direct wake under guard, the one-level-deep call, and the call
    // behind the bare allow; `notify` itself (wake after drop), the
    // justified allow, and the multi-rule allow in `dual` are silent.
    assert_eq!(count(&v, Rule::K1), 3, "{v:?}");
    assert_eq!(v.len(), 3, "{v:?}");
    // The bare allow and the suppressed G1 in `dual` surface through
    // the per-file pass: exactly one A0, no G1.
    let f = run("k1.rs", "fixt");
    assert_eq!(count(&f, Rule::A0), 1, "{f:?}");
    assert_eq!(count(&f, Rule::G1), 0, "{f:?}");
}

#[test]
fn k1_is_silent_outside_its_scope() {
    let cfg = "[k1]\nscope = [\"crates/live/src/exec/\"]\n";
    let v = run_workspace("k1.rs", "crates/fixt/src/k1.rs", cfg);
    assert!(v.is_empty(), "{v:?}");
}

const L1_CFG: &str = "\
[[lock]]
name = \"alpha\"
files = [\"crates/fixt/src/l1.rs\"]
field = \"alpha\"

[[lock]]
name = \"beta\"
files = [\"crates/fixt/src/l1.rs\"]
field = \"beta\"
";

#[test]
fn l1_corpus() {
    let v = run_workspace("l1.rs", "crates/fixt/src/l1.rs", L1_CFG);
    // Both edges of the alpha/beta cycle, the re-entrant self-edge,
    // and the edge behind the bare allow; the justified allow and the
    // sequential `ordered` are silent.
    assert_eq!(count(&v, Rule::L1), 4, "{v:?}");
    assert_eq!(v.len(), 4, "{v:?}");
    let f = run("l1.rs", "fixt");
    assert_eq!(count(&f, Rule::A0), 1, "{f:?}");
    assert_eq!(f.len(), 1, "{f:?}");
}

#[test]
fn l1_reordering_two_acquisitions_breaks_a_clean_scan() {
    // Scratch sources, not fixture files: the same two functions, once
    // agreeing on alpha-before-beta (clean) and once with the second
    // function flipped (cycle). Deliberately reordering two lock
    // acquisitions must flip the scan from silent to failing.
    let agree = "
        fn one(t: &Two) {
            let a = t.alpha.lock().unwrap();
            let b = t.beta.lock().unwrap();
            drop(b);
            drop(a);
        }
        fn two(t: &Two) {
            let a = t.alpha.lock().unwrap();
            let b = t.beta.lock().unwrap();
            drop(b);
            drop(a);
        }
    ";
    let flipped = "
        fn one(t: &Two) {
            let a = t.alpha.lock().unwrap();
            let b = t.beta.lock().unwrap();
            drop(b);
            drop(a);
        }
        fn two(t: &Two) {
            let b = t.beta.lock().unwrap();
            let a = t.alpha.lock().unwrap();
            drop(a);
            drop(b);
        }
    ";
    let cfg = LocksConfig::parse(L1_CFG).expect("config parses");
    let scan = |src: &str| -> Vec<Rule> {
        let files = vec![SourceFile {
            ctx: FileContext {
                crate_name: "fixt".to_string(),
                rel_path: "crates/fixt/src/l1.rs".to_string(),
                file_kind: FileKind::Source,
            },
            src: src.to_string(),
        }];
        analyze_workspace(&files, &cfg)
            .expect("workspace pass succeeds")
            .into_iter()
            .map(|(_, v)| v.rule)
            .collect()
    };
    assert!(scan(agree).is_empty(), "consistent order must be silent");
    let v = scan(flipped);
    assert_eq!(v.len(), 2, "both cycle edges flagged: {v:?}");
    assert!(v.iter().all(|r| *r == Rule::L1), "{v:?}");
}

const S1_CFG: &str = "\
[s1]
entry = [\"shard_entry\"]
scope = [\"crates/fixt/\"]
conductor_only = [\"on_evict\", \"observe\"]
";

#[test]
fn s1_corpus() {
    let v = run_workspace("s1.rs", "crates/fixt/src/s1.rs", S1_CFG);
    // One hop (`step`), two hops (`advance`), and the call behind the
    // bare allow; the justified allow and the unreachable
    // `conductor_tick` are silent.
    assert_eq!(count(&v, Rule::S1), 3, "{v:?}");
    assert_eq!(v.len(), 3, "{v:?}");
    let f = run("s1.rs", "fixt");
    assert_eq!(count(&f, Rule::A0), 1, "{f:?}");
    assert_eq!(f.len(), 1, "{f:?}");
}

#[test]
fn s1_unresolvable_entry_is_seed_rot_and_errors() {
    let cfg = LocksConfig::parse(
        "[s1]\nentry = [\"gone_fn\"]\nscope = [\"crates/fixt/\"]\nconductor_only = [\"observe\"]\n",
    )
    .expect("config parses");
    let files = vec![SourceFile {
        ctx: classify("crates/fixt/src/s1.rs"),
        src: "fn present() {}\n".to_string(),
    }];
    let err = analyze_workspace(&files, &cfg).expect_err("must error");
    assert!(err.contains("gone_fn"), "{err}");
}

#[test]
fn multi_rule_allow_suppresses_each_listed_rule() {
    let src = "fn f() { let t = Instant::now(); } // lint:allow(W1,G1): fixture clock\n";
    let ctx = FileContext {
        crate_name: "sim".to_string(),
        rel_path: "crates/sim/src/x.rs".to_string(),
        file_kind: FileKind::Source,
    };
    let v = analyze_file(&ctx, src);
    assert!(v.is_empty(), "both rules listed, W1 suppressed: {v:?}");
}

#[test]
fn unknown_rule_in_multi_rule_list_poisons_the_directive() {
    // One bogus id invalidates the whole directive: A0 fires and
    // nothing is suppressed.
    let ctx = FileContext {
        crate_name: "sim".to_string(),
        rel_path: "crates/sim/src/x.rs".to_string(),
        file_kind: FileKind::Source,
    };
    for allow in ["lint:allow(W1,Z9): x", "lint:allow(W1,A0): x"] {
        let src = format!("fn f() {{ let t = Instant::now(); }} // {allow}\n");
        let v: Vec<(Rule, u32)> = analyze_file(&ctx, &src)
            .into_iter()
            .map(|v| (v.rule, v.line))
            .collect();
        assert_eq!(count(&v, Rule::A0), 1, "{allow}: {v:?}");
        assert_eq!(count(&v, Rule::W1), 1, "{allow}: {v:?}");
    }
}

#[test]
fn lint_crate_lints_itself_clean() {
    // The analyzer must hold itself to its own rules — zero findings
    // (and zero suppressions needed) across its sources.
    let src_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut checked = 0;
    for entry in std::fs::read_dir(&src_dir).expect("src dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().map(|e| e == "rs") != Some(true) {
            continue;
        }
        let name = path.file_name().expect("file name").to_string_lossy();
        let ctx = classify(&format!("crates/lint/src/{name}"));
        let src = std::fs::read_to_string(&path).expect("readable");
        let v = analyze_file(&ctx, &src);
        assert!(v.is_empty(), "crates/lint/src/{name}: {v:?}");
        checked += 1;
    }
    assert!(checked >= 8, "expected the full module set, saw {checked}");
}

#[test]
fn fixtures_are_silent_outside_their_scoped_crate() {
    // The same source, classified into a crate outside the rule's
    // scope, must not fire (W1/F1 apply everywhere and are exempt).
    assert_eq!(count(&run("o1.rs", "testkit"), Rule::O1), 0);
    assert_eq!(count(&run("c1.rs", "policies"), Rule::C1), 0);
    assert_eq!(count(&run("e1.rs", "bench"), Rule::E1), 0);
    assert_eq!(count(&run("u1.rs", "metrics"), Rule::U1), 0);
}
