//! Self-test over the fixture corpus in `fixtures/`.
//!
//! Each fixture holds, for one rule: positive cases that must fire,
//! justified `lint:allow` cases that must be suppressed, and a *bare*
//! allow that must both report `A0` and fail to suppress. The corpus is
//! excluded from workspace scans (`scan::skip_dir`), so these files can
//! be violations on purpose without touching the ratchet baseline.

use std::path::Path;

use cidre_lint::{analyze_file, FileContext, FileKind, Rule};

/// Analyzes one fixture under a caller-chosen crate context (rules are
/// crate-scoped, so each fixture picks a crate where only its own rule
/// family fires).
fn run(fixture: &str, crate_name: &str) -> Vec<(Rule, u32)> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(fixture);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    let ctx = FileContext {
        crate_name: crate_name.to_string(),
        rel_path: format!("crates/{crate_name}/src/fixture.rs"),
        file_kind: FileKind::Source,
    };
    analyze_file(&ctx, &src)
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

fn count(v: &[(Rule, u32)], rule: Rule) -> usize {
    v.iter().filter(|(r, _)| *r == rule).count()
}

#[test]
fn w1_corpus() {
    let v = run("w1.rs", "sim");
    // Two positives, one un-suppressed behind a bare allow; the two
    // justified allows (trailing + comment-above) are silent.
    assert_eq!(count(&v, Rule::W1), 3, "{v:?}");
    assert_eq!(count(&v, Rule::A0), 1, "{v:?}");
    assert_eq!(v.len(), 4, "no other rule may fire: {v:?}");
}

#[test]
fn o1_corpus() {
    let v = run("o1.rs", "sim");
    // values() call, for-loop over a field, for-loop over a local
    // HashSet, and the keys() call behind the bare allow.
    assert_eq!(count(&v, Rule::O1), 4, "{v:?}");
    assert_eq!(count(&v, Rule::A0), 1, "{v:?}");
    assert_eq!(v.len(), 5, "{v:?}");
}

#[test]
fn f1_corpus() {
    // Run as `metrics` so the unwrap in the positive case does not also
    // trip U1 (scoped to faas-core/sim).
    let v = run("f1.rs", "metrics");
    assert_eq!(count(&v, Rule::F1), 2, "{v:?}");
    assert_eq!(count(&v, Rule::A0), 1, "{v:?}");
    assert_eq!(v.len(), 3, "{v:?}");
}

#[test]
fn c1_corpus() {
    let v = run("c1.rs", "trace");
    // micros, mem_mb, and idle_ms casts; the secs cast is allowed, the
    // unmarked `n as u64` never fires.
    assert_eq!(count(&v, Rule::C1), 3, "{v:?}");
    assert_eq!(count(&v, Rule::A0), 1, "{v:?}");
    assert_eq!(v.len(), 4, "{v:?}");
}

#[test]
fn e1_corpus() {
    let v = run("e1.rs", "sim");
    // RandomState + DefaultHasher imports, the positive env read, and
    // the env read behind the bare allow.
    assert_eq!(count(&v, Rule::E1), 4, "{v:?}");
    assert_eq!(count(&v, Rule::A0), 1, "{v:?}");
    assert_eq!(v.len(), 5, "{v:?}");
}

#[test]
fn u1_corpus() {
    let v = run("u1.rs", "faas-core");
    assert_eq!(count(&v, Rule::U1), 2, "{v:?}");
    assert_eq!(count(&v, Rule::A0), 1, "{v:?}");
    assert_eq!(v.len(), 3, "{v:?}");
}

#[test]
fn p1_corpus() {
    let v = run("p1.rs", "sim");
    // Two positives plus the print behind the bare allow; the
    // cfg(test) print and both justified allows are silent.
    assert_eq!(count(&v, Rule::P1), 3, "{v:?}");
    assert_eq!(count(&v, Rule::A0), 1, "{v:?}");
    assert_eq!(v.len(), 4, "{v:?}");
}

#[test]
fn p1_exempts_binaries_and_terminal_crates() {
    use cidre_lint::analyze_file;
    let src = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join("p1.rs"),
    )
    .expect("fixture readable");
    // A binary target, a crate main.rs, and the crates whose product
    // is terminal output are all out of scope (A0 from the bare allow
    // still fires — suppression hygiene is never exempt).
    for (crate_name, rel_path) in [
        ("bench", "crates/bench/src/bin/experiments.rs"),
        ("lint", "crates/lint/src/main.rs"),
        ("lint", "crates/lint/src/rules.rs"),
        ("testkit", "crates/testkit/src/bench.rs"),
    ] {
        let ctx = FileContext {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            file_kind: FileKind::Source,
        };
        let v: Vec<(Rule, u32)> = analyze_file(&ctx, &src)
            .into_iter()
            .map(|v| (v.rule, v.line))
            .collect();
        assert_eq!(count(&v, Rule::P1), 0, "{rel_path}: {v:?}");
        assert_eq!(count(&v, Rule::A0), 1, "{rel_path}: {v:?}");
    }
}

#[test]
fn fixtures_are_silent_outside_their_scoped_crate() {
    // The same source, classified into a crate outside the rule's
    // scope, must not fire (W1/F1 apply everywhere and are exempt).
    assert_eq!(count(&run("o1.rs", "testkit"), Rule::O1), 0);
    assert_eq!(count(&run("c1.rs", "policies"), Rule::C1), 0);
    assert_eq!(count(&run("e1.rs", "bench"), Rule::E1), 0);
    assert_eq!(count(&run("u1.rs", "metrics"), Rule::U1), 0);
}
