//! The committed `lint-baseline.toml` must exactly match a live scan.
//!
//! This is the ratchet's anti-drift guarantee as a plain `cargo test`:
//! a change that introduces a violation — or fixes one without running
//! `cidre-lint --write-baseline` — fails here even if CI's lint step is
//! skipped.

use std::path::Path;

use cidre_lint::{check_gate, scan_workspace, Baseline};

#[test]
fn committed_baseline_matches_live_scan() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let text = std::fs::read_to_string(root.join("lint-baseline.toml"))
        .expect("lint-baseline.toml is committed at the workspace root");
    let baseline = Baseline::parse(&text).expect("committed baseline parses");
    let result = scan_workspace(&root).expect("workspace scan succeeds");
    let gate = check_gate(&result, &baseline);
    assert_eq!(gate.bad_allows, 0, "unjustified lint:allow in the tree");
    assert!(
        gate.new_violations.is_empty(),
        "new violations vs committed baseline: {:?}",
        gate.new_violations
    );
    assert!(
        gate.stale_entries.is_empty(),
        "baseline is stale (run `cargo run -p cidre-lint -- --write-baseline`): {:?}",
        gate.stale_entries
    );
}
