//! O1 fixture: unordered hash-collection iteration on a report path.
//! Scanned by `tests/corpus.rs` as `crates/sim/src/fixture.rs`.

use std::collections::{HashMap, HashSet};

struct Report {
    per_fn: HashMap<u32, u64>,
}

fn positive_method(r: &Report) -> Vec<u64> {
    r.per_fn.values().copied().collect()
}

fn positive_for_loop(r: &Report) {
    for (_k, _v) in &r.per_fn {}
}

fn positive_local() {
    let set: HashSet<u32> = HashSet::new();
    for _x in &set {}
}

fn suppressed(r: &Report) -> u64 {
    // lint:allow(O1): order-independent sum, iteration order is moot
    r.per_fn.values().sum()
}

// lint:allow(O1)
fn bare_allow_does_not_suppress(r: &Report) -> usize {
    r.per_fn.keys().count()
}

fn membership_is_fine(r: &Report) -> bool {
    r.per_fn.contains_key(&3)
}
