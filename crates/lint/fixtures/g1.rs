//! G1 fixture: lock guards live across `.await`.
//!
//! Not compiled — lexed and analyzed by `tests/corpus.rs`. Expected:
//! three G1 findings (simple positive, two-guard positive, and the one
//! behind the bare allow) plus one A0 for the bare allow; the two
//! justified allows and the three negative shapes are silent.

use std::sync::Mutex;

struct Shared {
    state: Mutex<u32>,
}

impl Shared {
    async fn positive(&self) {
        let st = self.state.lock().unwrap();
        step().await; // G1: `st` live across the suspension
        drop(st);
    }

    async fn two_guards(&self, other: &Shared) {
        let a = self.state.lock().unwrap();
        let b = other.state.lock().unwrap();
        step().await; // G1: one finding naming both `a` and `b`
        drop(b);
        drop(a);
    }

    async fn dropped_before_await(&self) {
        let st = self.state.lock().unwrap();
        drop(st);
        step().await; // silent: guard dead
    }

    async fn scoped_out(&self) {
        {
            let _st = self.state.lock().unwrap();
        }
        step().await; // silent: guard died with its block
    }

    async fn chain_temporary(&self) {
        let snapshot = *self.state.lock().unwrap();
        step().await; // silent: statement temporary, no bound guard
        let _ = snapshot;
    }

    async fn justified_above(&self) {
        let st = self.state.lock().unwrap();
        // lint:allow(G1): single-threaded fixture executor, no contention
        step().await;
        drop(st);
    }

    async fn justified_trailing(&self) {
        let st = self.state.lock().unwrap();
        step().await; // lint:allow(G1): guard protects fixture-local state only
        drop(st);
    }

    async fn bare_allow(&self) {
        let st = self.state.lock().unwrap();
        // lint:allow(G1)
        step().await; // G1 still fires; the directive itself is A0
        drop(st);
    }
}

async fn step() {}
