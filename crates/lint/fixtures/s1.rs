//! S1 fixture: conductor confinement.
//!
//! Not compiled — analyzed by `tests/corpus.rs` through
//! `analyze_workspace` with `shard_entry` as the entry point and
//! `on_evict`/`observe` as conductor-only names. Expected: three S1
//! findings (a direct forbidden call one hop from the entry, a
//! forbidden call two hops deep, and the one behind the bare allow);
//! the justified allow and the unreachable `conductor_tick` are
//! silent. The bare allow's A0 surfaces through `analyze_file`.

struct State {
    pending: Vec<u32>,
}

fn shard_entry(s: &mut State) {
    step(s);
    tidy(s);
}

fn step(s: &mut State) {
    advance(s);
    on_evict(s, 0); // S1: forbidden, one hop from the entry
}

fn advance(s: &mut State) {
    s.pending.push(1);
    observe(s); // S1: forbidden, two hops deep
}

fn tidy(s: &mut State) {
    // lint:allow(S1): fixture exercises the suppression path
    on_evict(s, 1);
    // lint:allow(S1)
    observe(s); // S1 still fires; the directive itself is A0
}

fn conductor_tick(s: &mut State) {
    on_evict(s, 2); // silent: not reachable from `shard_entry`
    observe(s);
}

fn on_evict(s: &mut State, _cid: u32) {
    s.pending.clear();
}

fn observe(s: &mut State) {
    s.pending.truncate(8);
}
