//! K1 fixture: waking a task while an executor lock guard is held.
//!
//! Not compiled — analyzed by `tests/corpus.rs` through
//! `analyze_workspace` with a config whose `[k1] scope` covers this
//! file. Expected: three K1 findings (direct wake under guard,
//! one-level-deep wake under guard, and the call behind the bare
//! allow); `notify` itself and the justified allow are silent. The
//! bare allow's A0 surfaces through `analyze_file`.

use std::sync::Mutex;
use std::task::Waker;

struct Shared {
    state: Mutex<State>,
}

struct State {
    waker: Option<Waker>,
}

fn wake_holder(shared: &Shared) {
    let st = shared.state.lock().unwrap();
    if let Some(w) = st.waker.as_ref() {
        w.wake_by_ref(); // K1: direct wake under `st`
    }
    drop(st);
}

fn notify(shared: &Shared) {
    let mut st = shared.state.lock().unwrap();
    let w = st.waker.take();
    drop(st);
    if let Some(w) = w {
        w.wake(); // silent: guard dropped before waking
    }
}

fn indirect(shared: &Shared) {
    let st = shared.state.lock().unwrap();
    notify(shared); // K1: `notify` wakes directly, one level deep
    drop(st);
}

fn justified(shared: &Shared) {
    let st = shared.state.lock().unwrap();
    // lint:allow(K1): fixture lock is never taken by the schedule path
    notify(shared);
    drop(st);
}

fn bare_allow(shared: &Shared) {
    let st = shared.state.lock().unwrap();
    // lint:allow(K1)
    notify(shared); // K1 still fires; the directive itself is A0
    drop(st);
}

async fn dual(shared: &Shared) {
    let st = shared.state.lock().unwrap();
    // lint:allow(G1,K1): one directive covers both rules on the next line
    notify(shared).await;
    drop(st);
}
