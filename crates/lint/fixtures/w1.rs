//! W1 fixture: wall-clock reads outside the allowed zones.
//! Scanned by `tests/corpus.rs` as sim source.

fn positive() {
    let _t = std::time::Instant::now();
    let _s = std::time::SystemTime::now();
}

fn suppressed_trailing() {
    let _t = std::time::Instant::now(); // lint:allow(W1): fixture shows a justified trailing allow
}

fn suppressed_above() {
    // lint:allow(W1): fixture shows a justified comment-above allow
    let _t = std::time::Instant::now();
}

fn bare_allow_does_not_suppress() {
    // lint:allow(W1)
    let _t = std::time::Instant::now();
}
