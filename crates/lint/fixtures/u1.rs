//! U1 fixture: `unwrap()` in pool/engine hot paths.
//! Scanned by `tests/corpus.rs` as `crates/sim/src/fixture.rs`.

fn positive(o: Option<u32>) -> u32 {
    o.unwrap()
}

fn suppressed(o: Option<u32>) -> u32 {
    o.unwrap() // lint:allow(U1): fixture shows a justified allow
}

// lint:allow(U1)
fn bare_allow_does_not_suppress(o: Option<u32>) -> u32 {
    o.unwrap()
}

fn expect_is_fine(o: Option<u32>) -> u32 {
    o.expect("fixture invariant: value present")
}
