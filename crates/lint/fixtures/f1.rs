//! F1 fixture: NaN-unsafe float comparison via `partial_cmp`.
//! Scanned by `tests/corpus.rs` as `crates/sim/src/fixture.rs`.

fn positive(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn suppressed(v: &mut Vec<f64>) {
    // lint:allow(F1): fixture shows a justified allow
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

// lint:allow(F1)
fn bare_allow_does_not_suppress(a: f64, b: f64) -> bool {
    a.partial_cmp(&b).is_some()
}

struct Wrapper(f64);

impl PartialOrd for Wrapper {
    // Definitions are exempt; only call sites fire.
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.0.total_cmp(&other.0))
    }
}

impl PartialEq for Wrapper {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0).is_eq()
    }
}
