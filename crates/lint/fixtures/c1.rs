//! C1 fixture: lossy casts on time/memory arithmetic.
//! Scanned by `tests/corpus.rs` as `crates/sim/src/fixture.rs`.

fn positive_time(arrival_micros: u128) -> usize {
    arrival_micros as usize
}

fn positive_mem(mem_mb: u32) -> f64 {
    mem_mb as f64
}

fn suppressed(duration_secs: f64) -> u64 {
    // lint:allow(C1): fixture shows a justified allow
    duration_secs as u64
}

// lint:allow(C1)
fn bare_allow_does_not_suppress(idle_ms: u128) -> u64 {
    idle_ms as u64
}

fn unmarked_cast_is_fine(n: u32) -> u64 {
    n as u64
}
