//! P1 fixture: terminal printing from library code.
//! Scanned by `tests/corpus.rs` as sim source.

fn positive() {
    println!("progress: {}", 1);
    eprintln!("warning: {}", 2);
}

fn suppressed_trailing() {
    println!("narration"); // lint:allow(P1): fixture shows a justified trailing allow
}

fn suppressed_above() {
    // lint:allow(P1): fixture shows a justified comment-above allow
    eprintln!("warning");
}

fn bare_allow_does_not_suppress() {
    // lint:allow(P1)
    println!("nope");
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_in_tests_are_fine() {
        println!("test output is exempt");
    }
}
