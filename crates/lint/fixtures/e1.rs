//! E1 fixture: ambient entropy in sim paths.
//! Scanned by `tests/corpus.rs` as sim source.

use std::collections::hash_map::RandomState;
use std::hash::DefaultHasher;

fn positive_env() -> Option<String> {
    std::env::var("CIDRE_SEED").ok()
}

fn suppressed() -> Option<String> {
    // lint:allow(E1): fixture shows a justified allow
    std::env::var("CIDRE_SEED").ok()
}

fn bare_allow_does_not_suppress() -> Option<String> {
    // lint:allow(E1)
    std::env::var("CIDRE_SEED").ok()
}
