//! L1 fixture: lock-acquisition-order cycles.
//!
//! Not compiled — analyzed by `tests/corpus.rs` through
//! `analyze_workspace` with a config naming the `alpha` and `beta`
//! fields as locks. `forward` and `backward` together create the
//! alpha→beta→alpha cycle, so both inner acquisitions are findings;
//! `reentrant` is a self-edge. Expected: four L1 findings (the cycle's
//! two edges, the self-edge, and the edge behind the bare allow); the
//! justified allow and the sequential `ordered` are silent. The bare
//! allow's A0 surfaces through `analyze_file`.

use std::sync::Mutex;

struct Two {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

fn forward(t: &Two) {
    let a = t.alpha.lock().unwrap();
    let b = t.beta.lock().unwrap(); // L1: alpha→beta closes the cycle
    drop(b);
    drop(a);
}

fn backward(t: &Two) {
    let b = t.beta.lock().unwrap();
    let a = t.alpha.lock().unwrap(); // L1: beta→alpha closes the cycle
    drop(a);
    drop(b);
}

fn reentrant(t: &Two) {
    let a1 = t.alpha.lock().unwrap();
    let a2 = t.alpha.lock().unwrap(); // L1: `alpha` is already held
    drop(a2);
    drop(a1);
}

fn justified(t: &Two) {
    let b = t.beta.lock().unwrap();
    // lint:allow(L1): fixture exercises the suppression path
    let a = t.alpha.lock().unwrap();
    drop(a);
    drop(b);
}

fn bare_allow(t: &Two) {
    let b = t.beta.lock().unwrap();
    // lint:allow(L1)
    let a = t.alpha.lock().unwrap(); // L1 still fires; the directive is A0
    drop(a);
    drop(b);
}

fn ordered(t: &Two) {
    let a = t.alpha.lock().unwrap();
    drop(a);
    let b = t.beta.lock().unwrap(); // silent: nothing else held
    drop(b);
}
