//! Speculative scaling: basic (BSS) and conditional (CSS, Algorithm 1).

use std::collections::HashMap;

use faas_metrics::SlidingWindow;
use faas_sim::{PolicyCtx, RequestInfo, ScaleDecision, Scaler, StartClass};
use faas_trace::{FunctionId, TimeDelta};

use crate::config::{CidreConfig, TeEstimator};

/// Basic speculative scaling: every blocked request both joins the
/// function's wait channel *and* triggers a cold start, racing the two
/// paths (§3.2). BSS gives the worst-case guarantee that no request waits
/// longer than its own cold start, at the price of cold starts that may
/// turn out wasted.
///
/// # Examples
///
/// ```
/// use cidre_core::BssScaler;
/// use faas_sim::Scaler;
/// assert_eq!(BssScaler.name(), "bss");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BssScaler;

impl Scaler for BssScaler {
    fn name(&self) -> &str {
        "bss"
    }

    fn on_blocked(&mut self, _req: &RequestInfo, _ctx: &PolicyCtx<'_>) -> ScaleDecision {
        ScaleDecision::Race
    }
}

/// Per-function CSS state: the BSS on/off trigger plus the sliding-window
/// statistics Algorithm 1 consumes.
#[derive(Debug)]
struct FnCssState {
    /// Whether the cold-start path is enabled for this function.
    bss_enabled: bool,
    /// Last observed idle time `Ti` of a speculatively provisioned
    /// container between finishing provisioning and first reuse, stored
    /// as `(recorded_at_us, ti_ms)`; `f64::INFINITY` when the last one
    /// was evicted without serving. Like every other Algorithm 1
    /// statistic, the hint expires with the configured sliding window
    /// (§3.2) — a `Ti` from outside the window must not keep flipping
    /// BSS state.
    ti: Option<(u64, f64)>,
    /// Windowed execution times (ms) for the `Te` estimate.
    te: SlidingWindow,
    /// Windowed delayed-warm-start waits (ms) for the `Td` estimate.
    td: SlidingWindow,
    /// Windowed observed cold-start waits (ms) for the `Tp` estimate.
    tp: SlidingWindow,
}

impl FnCssState {
    fn new(window: Option<TimeDelta>) -> Self {
        let w = window.map(|d| d.as_micros());
        Self {
            bss_enabled: true,
            ti: None,
            te: SlidingWindow::new(w),
            td: SlidingWindow::new(w),
            tp: SlidingWindow::new(w),
        }
    }
}

/// Conditional speculative scaling — the paper's Algorithm 1.
///
/// CSS starts in BSS mode (race every blocked request). Per function it
/// then classifies, from lightweight hints, whether cold starts are worth
/// their cost:
///
/// * With BSS **enabled**: if the last speculative container idled longer
///   than the function's expected execution time (`Ti > Te`), that cold
///   start was wasteful — disable the cold path and serve upcoming
///   blocked requests as pure delayed warm starts.
/// * With BSS **disabled**: if the delayed-warm-start cost exceeds the
///   provisioning time (`Td > Tp`), queueing has become more expensive
///   than a cold start — re-enable the cold path.
///
/// All statistics come from a sliding window (15 minutes by default,
/// §3.2; Fig. 18 varies it) and the `Te` estimator is configurable
/// (median by default; Fig. 17 varies it).
///
/// # Examples
///
/// ```
/// use cidre_core::{CidreConfig, CssScaler};
/// use faas_sim::Scaler;
/// let css = CssScaler::new(CidreConfig::default());
/// assert_eq!(css.name(), "css");
/// ```
#[derive(Debug)]
pub struct CssScaler {
    config: CidreConfig,
    fns: HashMap<FunctionId, FnCssState>,
}

impl CssScaler {
    /// Creates the scaler with the given configuration.
    pub fn new(config: CidreConfig) -> Self {
        Self {
            config,
            fns: HashMap::new(),
        }
    }

    /// Whether the cold-start path is currently enabled for `func`
    /// (functions never seen yet default to enabled).
    pub fn bss_enabled(&self, func: FunctionId) -> bool {
        self.fns.get(&func).map(|s| s.bss_enabled).unwrap_or(true)
    }

    fn state(&mut self, func: FunctionId) -> &mut FnCssState {
        let window = self.config.window;
        self.fns
            .entry(func)
            .or_insert_with(|| FnCssState::new(window))
    }

    fn estimate_te(config: &CidreConfig, st: &mut FnCssState, now_us: u64) -> Option<f64> {
        match config.te {
            TeEstimator::Mean => st.te.mean(now_us),
            TeEstimator::Percentile(p) => st.te.percentile(now_us, p),
        }
    }
}

impl Scaler for CssScaler {
    fn name(&self) -> &str {
        "css"
    }

    fn on_blocked(&mut self, req: &RequestInfo, ctx: &PolicyCtx<'_>) -> ScaleDecision {
        let now_us = ctx.now.as_micros();
        let profile_cold_ms = ctx.profile(req.func).cold_start.as_millis_f64();
        let config = self.config;
        let st = self.state(req.func);
        // The `Ti` hint ages out with the same window as the other
        // statistics; at `age == window` it is still considered fresh,
        // matching `SlidingWindow`'s cutoff semantics.
        if let (Some(w), Some((at, _))) = (config.window, st.ti) {
            if now_us.saturating_sub(at) > w.as_micros() {
                st.ti = None;
            }
        }
        if st.bss_enabled {
            // Lines 1–9: disable the cold path when the last speculative
            // container idled longer than the expected execution time.
            let te = Self::estimate_te(&config, st, now_us);
            match (st.ti, te) {
                (Some((_, ti)), Some(te)) if ti > te => {
                    st.bss_enabled = false;
                    ScaleDecision::WaitWarm
                }
                _ => ScaleDecision::Race,
            }
        } else {
            // Lines 10–18: re-enable the cold path when queueing costs
            // more than provisioning. `Td` is the paper's "duration that
            // CIDRE waits to find an idle container since the last
            // request arrives" — the most recent delayed-warm-start cost
            // (within the window), so a queue blow-up re-enables the cold
            // path immediately rather than after the median catches up.
            st.td.expire(now_us);
            let td = st.td.last();
            let tp = st.tp.median(now_us).unwrap_or(profile_cold_ms);
            match td {
                Some(td) if td > tp => {
                    st.bss_enabled = true;
                    ScaleDecision::Race
                }
                _ => ScaleDecision::WaitWarm,
            }
        }
    }

    fn on_start(
        &mut self,
        req: &RequestInfo,
        class: StartClass,
        wait: TimeDelta,
        exec: TimeDelta,
        ctx: &PolicyCtx<'_>,
    ) {
        let now_us = ctx.now.as_micros();
        let st = self.state(req.func);
        st.te.record(now_us, exec.as_millis_f64());
        match class {
            StartClass::DelayedWarm => st.td.record(now_us, wait.as_millis_f64()),
            StartClass::Cold => st.tp.record(now_us, wait.as_millis_f64()),
            StartClass::Warm => {}
        }
    }

    fn on_cold_outcome(&mut self, func: FunctionId, idle: Option<TimeDelta>, ctx: &PolicyCtx<'_>) {
        let now_us = ctx.now.as_micros();
        let st = self.state(func);
        let ti_ms = match idle {
            Some(d) => d.as_millis_f64(),
            // Evicted without ever serving: unconditionally wasted.
            None => f64::INFINITY,
        };
        st.ti = Some((now_us, ti_ms));
    }

    fn explain(&self) -> Option<String> {
        // Counting over the HashMap is iteration-order-independent,
        // keeping the note byte-identical across engines (DESIGN.md §12).
        let off = self.fns.values().filter(|s| !s.bss_enabled).count();
        Some(format!("bss_off={off}/{}", self.fns.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_sim::{ClusterState, RequestId};
    use faas_trace::{FunctionProfile, TimePoint};
    use std::collections::HashMap as Map;

    fn harness() -> (ClusterState, Map<faas_sim::ContainerId, Vec<TimePoint>>) {
        let profiles = vec![FunctionProfile::new(
            FunctionId(0),
            "f",
            128,
            TimeDelta::from_millis(200),
        )];
        (ClusterState::new(&[10_000], profiles, 1), Map::new())
    }

    fn req(at_ms: u64) -> RequestInfo {
        RequestInfo {
            id: RequestId(0),
            func: FunctionId(0),
            arrival: TimePoint::from_millis(at_ms),
        }
    }

    fn ctx_at<'a>(
        cl: &'a ClusterState,
        busy: &'a Map<faas_sim::ContainerId, Vec<TimePoint>>,
        ms: u64,
    ) -> PolicyCtx<'a> {
        PolicyCtx::new(TimePoint::from_millis(ms), cl, busy)
    }

    #[test]
    fn starts_in_bss_mode() {
        let (cl, busy) = harness();
        let mut css = CssScaler::new(CidreConfig::default());
        let d = css.on_blocked(&req(0), &ctx_at(&cl, &busy, 0));
        assert_eq!(d, ScaleDecision::Race);
        assert!(css.bss_enabled(FunctionId(0)));
    }

    #[test]
    fn wasted_cold_start_disables_bss() {
        let (cl, busy) = harness();
        let mut css = CssScaler::new(CidreConfig::default());
        // Record an execution history: Te ≈ 50 ms.
        css.on_start(
            &req(0),
            StartClass::Warm,
            TimeDelta::ZERO,
            TimeDelta::from_millis(50),
            &ctx_at(&cl, &busy, 0),
        );
        // Last speculative container idled 500 ms > Te.
        css.on_cold_outcome(
            FunctionId(0),
            Some(TimeDelta::from_millis(500)),
            &ctx_at(&cl, &busy, 1),
        );
        let d = css.on_blocked(&req(2), &ctx_at(&cl, &busy, 2));
        assert_eq!(d, ScaleDecision::WaitWarm);
        assert!(!css.bss_enabled(FunctionId(0)));
    }

    #[test]
    fn quick_reuse_keeps_bss() {
        let (cl, busy) = harness();
        let mut css = CssScaler::new(CidreConfig::default());
        css.on_start(
            &req(0),
            StartClass::Warm,
            TimeDelta::ZERO,
            TimeDelta::from_millis(50),
            &ctx_at(&cl, &busy, 0),
        );
        css.on_cold_outcome(
            FunctionId(0),
            Some(TimeDelta::from_millis(10)),
            &ctx_at(&cl, &busy, 1),
        );
        assert_eq!(
            css.on_blocked(&req(2), &ctx_at(&cl, &busy, 2)),
            ScaleDecision::Race
        );
    }

    #[test]
    fn eviction_without_use_counts_as_infinite_idle() {
        let (cl, busy) = harness();
        let mut css = CssScaler::new(CidreConfig::default());
        css.on_start(
            &req(0),
            StartClass::Warm,
            TimeDelta::ZERO,
            TimeDelta::from_millis(1_000),
            &ctx_at(&cl, &busy, 0),
        );
        css.on_cold_outcome(FunctionId(0), None, &ctx_at(&cl, &busy, 1));
        assert_eq!(
            css.on_blocked(&req(2), &ctx_at(&cl, &busy, 2)),
            ScaleDecision::WaitWarm
        );
    }

    #[test]
    fn long_queueing_reenables_bss() {
        let (cl, busy) = harness();
        let mut css = CssScaler::new(CidreConfig::default());
        // Disable first.
        css.on_start(
            &req(0),
            StartClass::Warm,
            TimeDelta::ZERO,
            TimeDelta::from_millis(10),
            &ctx_at(&cl, &busy, 0),
        );
        css.on_cold_outcome(
            FunctionId(0),
            Some(TimeDelta::from_millis(100)),
            &ctx_at(&cl, &busy, 1),
        );
        assert_eq!(
            css.on_blocked(&req(2), &ctx_at(&cl, &busy, 2)),
            ScaleDecision::WaitWarm
        );
        // Delayed warm starts now cost 900 ms > Tp (200 ms profile).
        css.on_start(
            &req(3),
            StartClass::DelayedWarm,
            TimeDelta::from_millis(900),
            TimeDelta::from_millis(10),
            &ctx_at(&cl, &busy, 3),
        );
        let d = css.on_blocked(&req(4), &ctx_at(&cl, &busy, 4));
        assert_eq!(d, ScaleDecision::Race);
        assert!(css.bss_enabled(FunctionId(0)));
    }

    #[test]
    fn cheap_queueing_keeps_bss_disabled() {
        let (cl, busy) = harness();
        let mut css = CssScaler::new(CidreConfig::default());
        css.on_start(
            &req(0),
            StartClass::Warm,
            TimeDelta::ZERO,
            TimeDelta::from_millis(10),
            &ctx_at(&cl, &busy, 0),
        );
        css.on_cold_outcome(
            FunctionId(0),
            Some(TimeDelta::from_millis(100)),
            &ctx_at(&cl, &busy, 1),
        );
        let _ = css.on_blocked(&req(2), &ctx_at(&cl, &busy, 2));
        // Delayed warm waits of 20 ms << 200 ms cold.
        css.on_start(
            &req(3),
            StartClass::DelayedWarm,
            TimeDelta::from_millis(20),
            TimeDelta::from_millis(10),
            &ctx_at(&cl, &busy, 3),
        );
        assert_eq!(
            css.on_blocked(&req(4), &ctx_at(&cl, &busy, 4)),
            ScaleDecision::WaitWarm
        );
    }

    #[test]
    fn measured_tp_overrides_profile() {
        let (cl, busy) = harness();
        let mut css = CssScaler::new(CidreConfig::default());
        // Disable BSS.
        css.on_start(
            &req(0),
            StartClass::Warm,
            TimeDelta::ZERO,
            TimeDelta::from_millis(10),
            &ctx_at(&cl, &busy, 0),
        );
        css.on_cold_outcome(
            FunctionId(0),
            Some(TimeDelta::from_millis(50)),
            &ctx_at(&cl, &busy, 1),
        );
        let _ = css.on_blocked(&req(2), &ctx_at(&cl, &busy, 2));
        // Observed cold waits of 2000 ms (memory pressure made cold starts
        // far more expensive than the 200 ms profile).
        css.on_start(
            &req(3),
            StartClass::Cold,
            TimeDelta::from_millis(2_000),
            TimeDelta::from_millis(10),
            &ctx_at(&cl, &busy, 3),
        );
        // A 900 ms queueing cost now should NOT re-enable (900 < 2000).
        css.on_start(
            &req(4),
            StartClass::DelayedWarm,
            TimeDelta::from_millis(900),
            TimeDelta::from_millis(10),
            &ctx_at(&cl, &busy, 4),
        );
        assert_eq!(
            css.on_blocked(&req(5), &ctx_at(&cl, &busy, 5)),
            ScaleDecision::WaitWarm
        );
    }

    #[test]
    fn te_estimator_percentile_matters() {
        let (cl, busy) = harness();
        // With p75, Te is larger, so a given Ti is less likely to trip the
        // "wasted" classification.
        let mut p25 =
            CssScaler::new(CidreConfig::default().te_estimator(TeEstimator::Percentile(25.0)));
        let mut p75 =
            CssScaler::new(CidreConfig::default().te_estimator(TeEstimator::Percentile(75.0)));
        for css in [&mut p25, &mut p75] {
            for (i, ms) in [10u64, 100, 1_000].iter().enumerate() {
                css.on_start(
                    &req(i as u64),
                    StartClass::Warm,
                    TimeDelta::ZERO,
                    TimeDelta::from_millis(*ms),
                    &ctx_at(&cl, &busy, i as u64),
                );
            }
            css.on_cold_outcome(
                FunctionId(0),
                Some(TimeDelta::from_millis(200)),
                &ctx_at(&cl, &busy, 5),
            );
        }
        // Ti=200: p25 Te=55 -> disable; p75 Te=550 -> keep racing.
        assert_eq!(
            p25.on_blocked(&req(6), &ctx_at(&cl, &busy, 6)),
            ScaleDecision::WaitWarm
        );
        assert_eq!(
            p75.on_blocked(&req(6), &ctx_at(&cl, &busy, 6)),
            ScaleDecision::Race
        );
    }

    #[test]
    fn window_expiry_forgets_history() {
        let (cl, busy) = harness();
        let mut css =
            CssScaler::new(CidreConfig::default().window(Some(TimeDelta::from_millis(100))));
        css.on_start(
            &req(0),
            StartClass::Warm,
            TimeDelta::ZERO,
            TimeDelta::from_millis(10),
            &ctx_at(&cl, &busy, 0),
        );
        css.on_cold_outcome(
            FunctionId(0),
            Some(TimeDelta::from_millis(500)),
            &ctx_at(&cl, &busy, 1),
        );
        // At t=10s, the Te window is empty: Algorithm 1 cannot establish
        // Ti > Te, so it keeps racing.
        assert_eq!(
            css.on_blocked(&req(10_000), &ctx_at(&cl, &busy, 10_000)),
            ScaleDecision::Race
        );
    }

    #[test]
    fn per_function_state_is_independent() {
        let profiles = vec![
            FunctionProfile::new(FunctionId(0), "a", 128, TimeDelta::from_millis(200)),
            FunctionProfile::new(FunctionId(1), "b", 128, TimeDelta::from_millis(200)),
        ];
        let cl = ClusterState::new(&[10_000], profiles, 1);
        let busy = Map::new();
        let mut css = CssScaler::new(CidreConfig::default());
        css.on_start(
            &req(0),
            StartClass::Warm,
            TimeDelta::ZERO,
            TimeDelta::from_millis(10),
            &ctx_at(&cl, &busy, 0),
        );
        css.on_cold_outcome(FunctionId(0), None, &ctx_at(&cl, &busy, 1));
        let _ = css.on_blocked(&req(2), &ctx_at(&cl, &busy, 2));
        assert!(!css.bss_enabled(FunctionId(0)));
        assert!(css.bss_enabled(FunctionId(1)));
    }
}
