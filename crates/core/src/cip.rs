//! Concurrency-informed priority (CIP) eviction — the paper's Eq. 3.

use std::collections::HashMap;

use faas_sim::{ContainerId, ContainerInfo, KeepAlive, PolicyCtx};

/// CIDRE's keep-alive policy. Each warm container's priority is
///
/// ```text
/// Priority(c) = Clock(c) + Freq(F(c)) * Cost(c) / (Size(c) * |F(c)|)
/// ```
///
/// (Eq. 3), combining container-level statistics (recency via the logical
/// clock, provisioning cost, memory footprint) with function-level
/// concurrency statistics: `Freq` is the function's average invocations
/// per minute over its lifetime (Eq. 4, which ages stale-but-once-hot
/// functions), and `|F(c)|` is its current number of warm containers —
/// functions hoarding many containers lose priority per container,
/// yielding the balanced evictions of §2.4's Observation 2.
///
/// Clock semantics follow §3.3: new containers admitted into a non-full
/// cache start at clock 0; a container admitted by evicting others
/// inherits the maximum priority among the evicted (a logical clock, so
/// priorities are monotone across replacement generations); a reused
/// container's clock absorbs its pre-update priority.
///
/// # Examples
///
/// ```
/// use cidre_core::CipKeepAlive;
/// use faas_sim::KeepAlive;
/// assert_eq!(CipKeepAlive::new().name(), "cip");
/// ```
#[derive(Debug, Default)]
pub struct CipKeepAlive {
    clocks: HashMap<ContainerId, f64>,
    /// Final priorities of recently evicted containers, keyed by id.
    /// Admissions look up *their own* victims (the `evicted` slice the
    /// engine reports) here; evictions that happen outside an admission
    /// — crash evictions, TTL-style expirations — also land here but are
    /// never mixed into an unrelated admission's inherited clock.
    evicted_prio: HashMap<ContainerId, f64>,
}

impl CipKeepAlive {
    /// Creates the policy with an empty clock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The container's current logical clock (0 if never set).
    pub fn clock(&self, id: ContainerId) -> f64 {
        self.clocks.get(&id).copied().unwrap_or(0.0)
    }

    /// Number of containers currently holding a logical clock. Every
    /// entry must correspond to a live container — evictions (including
    /// crash evictions) drop the clock — so tests use this to assert no
    /// orphaned clocks leak.
    pub fn tracked_clocks(&self) -> usize {
        self.clocks.len()
    }

    fn compute_priority(&self, c: &ContainerInfo, ctx: &PolicyCtx<'_>) -> f64 {
        let freq = ctx.freq_per_minute(c.func);
        let cost_ms = c.cold_start.as_millis_f64();
        let size_mb = f64::from(c.mem_mb.max(1));
        let k = ctx.warm_count(c.func).max(1) as f64;
        self.clock(c.id) + freq * cost_ms / (size_mb * k)
    }
}

impl KeepAlive for CipKeepAlive {
    fn name(&self) -> &str {
        "cip"
    }

    fn on_reuse(&mut self, container: &ContainerInfo, ctx: &PolicyCtx<'_>) {
        // Clock absorbs the pre-update priority (§3.3).
        let p = self.compute_priority(container, ctx);
        self.clocks.insert(container.id, p);
    }

    fn on_admit(
        &mut self,
        container: &ContainerInfo,
        evicted: &[ContainerInfo],
        ctx: &PolicyCtx<'_>,
    ) {
        // §3.3: inherit the maximum priority among *this admission's*
        // victims, taken from the `evicted` slice itself. Priorities are
        // looked up from the recorded `on_evict` values (computed at
        // eviction time, when the victim's function still counted it as
        // warm); a victim never reported through `on_evict` — a desynced
        // channel — falls back to recomputing from its snapshot rather
        // than silently contributing nothing.
        let clock = evicted
            .iter()
            .map(|v| {
                self.evicted_prio
                    .remove(&v.id)
                    .unwrap_or_else(|| self.compute_priority(v, ctx))
            })
            .fold(0.0, f64::max);
        // Entries not claimed by any admission (crash evictions, TTL
        // expirations) must not inflate a later admission's clock.
        self.evicted_prio.clear();
        self.clocks.insert(container.id, clock);
    }

    fn on_evict(&mut self, container: &ContainerInfo, ctx: &PolicyCtx<'_>) {
        let p = self.compute_priority(container, ctx);
        self.evicted_prio.insert(container.id, p);
        self.clocks.remove(&container.id);
    }

    fn priority(&self, container: &ContainerInfo, ctx: &PolicyCtx<'_>) -> f64 {
        self.compute_priority(container, ctx)
    }

    fn explain(&self) -> Option<String> {
        // Folding a max over the HashMap is iteration-order-independent,
        // keeping the note byte-identical across engines (DESIGN.md §12).
        let max_clock = self.clocks.values().fold(0.0f64, |a, &b| a.max(b));
        Some(format!(
            "clocks={} max_clock={max_clock:.3}",
            self.clocks.len()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_sim::{ClusterState, WorkerId};
    use faas_trace::{FunctionId, FunctionProfile, TimeDelta, TimePoint};
    use std::collections::HashMap as Map;

    fn cluster_with(counts: &[(u32, usize)]) -> ClusterState {
        // counts: (function id, number of warm containers)
        let profiles: Vec<FunctionProfile> = counts
            .iter()
            .map(|&(f, _)| {
                FunctionProfile::new(
                    FunctionId(f),
                    format!("f{f}"),
                    100,
                    TimeDelta::from_millis(200),
                )
            })
            .collect();
        let mut cl = ClusterState::new(&[100_000], profiles, 1);
        for &(f, n) in counts {
            for _ in 0..n {
                let id = cl.begin_provision(FunctionId(f), WorkerId(0), TimePoint::ZERO, false);
                cl.finish_provision(id, TimePoint::ZERO);
            }
        }
        cl
    }

    fn info(cl: &ClusterState, id: ContainerId) -> ContainerInfo {
        ContainerInfo::from(cl.container(id).expect("live"))
    }

    #[test]
    fn more_warm_containers_lower_priority() {
        // fn0 has 1 container, fn1 has 4; same freq => fn1's containers
        // have 4x smaller frequency term.
        let mut cl = cluster_with(&[(0, 1), (1, 4)]);
        let now = TimePoint::from_secs(60);
        cl.note_arrival(FunctionId(0), TimePoint::ZERO);
        cl.note_arrival(FunctionId(1), TimePoint::ZERO);
        let busy = Map::new();
        let ctx = PolicyCtx::new(now, &cl, &busy);
        let cip = CipKeepAlive::new();
        let p0 = cip.priority(&info(&cl, ContainerId(0)), &ctx);
        let p1 = cip.priority(&info(&cl, ContainerId(1)), &ctx);
        assert!(p0 > p1, "crowded function must rank lower: {p0} vs {p1}");
        assert!((p0 / p1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_decays_over_time() {
        let mut cl = cluster_with(&[(0, 1)]);
        cl.note_arrival(FunctionId(0), TimePoint::ZERO);
        let busy = Map::new();
        let cip = CipKeepAlive::new();
        let early = cip.priority(
            &info(&cl, ContainerId(0)),
            &PolicyCtx::new(TimePoint::from_secs(60), &cl, &busy),
        );
        let late = cip.priority(
            &info(&cl, ContainerId(0)),
            &PolicyCtx::new(TimePoint::from_secs(600), &cl, &busy),
        );
        assert!(
            early > late,
            "stale containers must decay: {early} vs {late}"
        );
    }

    #[test]
    fn reuse_inflates_clock() {
        let mut cl = cluster_with(&[(0, 1)]);
        cl.note_arrival(FunctionId(0), TimePoint::ZERO);
        let busy = Map::new();
        let mut cip = CipKeepAlive::new();
        let id = ContainerId(0);
        let ctx_now = TimePoint::from_secs(30);
        let before = {
            let ctx = PolicyCtx::new(ctx_now, &cl, &busy);
            cip.priority(&info(&cl, id), &ctx)
        };
        {
            let ctx = PolicyCtx::new(ctx_now, &cl, &busy);
            let i = info(&cl, id);
            cip.on_reuse(&i, &ctx);
        }
        let after = {
            let ctx = PolicyCtx::new(ctx_now, &cl, &busy);
            cip.priority(&info(&cl, id), &ctx)
        };
        assert!(after > before);
        assert!((cip.clock(id) - before).abs() < 1e-12);
    }

    #[test]
    fn admitted_with_eviction_inherits_max_evicted_priority() {
        let mut cl = cluster_with(&[(0, 2)]);
        cl.note_arrival(FunctionId(0), TimePoint::ZERO);
        let busy = Map::new();
        let mut cip = CipKeepAlive::new();
        let now = TimePoint::from_secs(10);
        let (v0, v1) = (ContainerId(0), ContainerId(1));
        let (i0, i1) = (info(&cl, v0), info(&cl, v1));
        let pmax = {
            let ctx = PolicyCtx::new(now, &cl, &busy);
            cip.priority(&i0, &ctx).max(cip.priority(&i1, &ctx))
        };
        {
            let ctx = PolicyCtx::new(now, &cl, &busy);
            cip.on_evict(&i0, &ctx);
            cip.on_evict(&i1, &ctx);
        }
        // Admit a new container for fn0.
        let new_id = {
            let id = cl.begin_provision(FunctionId(0), WorkerId(0), now, false);
            cl.finish_provision(id, now);
            id
        };
        {
            let ctx = PolicyCtx::new(now, &cl, &busy);
            let i = info(&cl, new_id);
            cip.on_admit(&i, &[i0, i1], &ctx);
        }
        assert!((cip.clock(new_id) - pmax).abs() < 1e-12);
    }

    #[test]
    fn admitted_without_eviction_starts_at_zero() {
        let mut cl = cluster_with(&[(0, 1)]);
        let busy = Map::new();
        let mut cip = CipKeepAlive::new();
        let ctx = PolicyCtx::new(TimePoint::ZERO, &cl, &busy);
        let i = info(&cl, ContainerId(0));
        cip.on_admit(&i, &[], &ctx);
        assert_eq!(cip.clock(ContainerId(0)), 0.0);
        let _ = &mut cl;
    }

    #[test]
    fn crash_eviction_outside_admission_does_not_inflate_clock() {
        // Regression: `on_admit` used to fold the max over every priority
        // reported through `on_evict` since the last admission. A crash
        // eviction (reported outside any admission) therefore leaked into
        // the next admission's inherited clock.
        let mut cl = cluster_with(&[(0, 2), (1, 1)]);
        cl.note_arrival(FunctionId(0), TimePoint::ZERO);
        cl.note_arrival(FunctionId(1), TimePoint::ZERO);
        let busy = Map::new();
        let mut cip = CipKeepAlive::new();
        let now = TimePoint::from_secs(10);
        // Pump fn1's container to a high priority via repeated reuse.
        let hot = ContainerId(2);
        for _ in 0..5 {
            let ctx = PolicyCtx::new(now, &cl, &busy);
            let i = info(&cl, hot);
            cip.on_reuse(&i, &ctx);
        }
        let p_hot = {
            let ctx = PolicyCtx::new(now, &cl, &busy);
            cip.priority(&info(&cl, hot), &ctx)
        };
        // Crash-evict the hot container — no admission follows it.
        {
            let ctx = PolicyCtx::new(now, &cl, &busy);
            let i = info(&cl, hot);
            cip.on_evict(&i, &ctx);
        }
        cl.evict(hot, now);
        // A later admission evicts one cold fn0 container.
        let victim = ContainerId(0);
        let vi = info(&cl, victim);
        let p_victim = {
            let ctx = PolicyCtx::new(now, &cl, &busy);
            cip.priority(&vi, &ctx)
        };
        assert!(p_hot > p_victim, "setup: crash victim must outrank");
        {
            let ctx = PolicyCtx::new(now, &cl, &busy);
            cip.on_evict(&vi, &ctx);
        }
        cl.evict(victim, now);
        let new_id = cl.begin_provision(FunctionId(0), WorkerId(0), now, false);
        cl.finish_provision(new_id, now);
        {
            let ctx = PolicyCtx::new(now, &cl, &busy);
            let i = info(&cl, new_id);
            cip.on_admit(&i, &[vi], &ctx);
        }
        // The inherited clock comes from this admission's victim only,
        // not from the unrelated crash eviction.
        assert!(
            (cip.clock(new_id) - p_victim).abs() < 1e-12,
            "clock {} leaked the crash victim's priority {p_hot}",
            cip.clock(new_id)
        );
    }

    #[test]
    fn admit_with_unreported_victim_recomputes_instead_of_zero() {
        // Regression: if the eviction channel desyncs in the other
        // direction (victims in the `evicted` slice that never went
        // through `on_evict`), the new container used to start at clock 0.
        let mut cl = cluster_with(&[(0, 1)]);
        cl.note_arrival(FunctionId(0), TimePoint::ZERO);
        let busy = Map::new();
        let mut cip = CipKeepAlive::new();
        let now = TimePoint::from_secs(60);
        let vi = info(&cl, ContainerId(0));
        let p = {
            let ctx = PolicyCtx::new(now, &cl, &busy);
            cip.priority(&vi, &ctx)
        };
        assert!(p > 0.0);
        cl.evict(ContainerId(0), now); // cluster-side only; on_evict never fires
        let new_id = cl.begin_provision(FunctionId(0), WorkerId(0), now, false);
        cl.finish_provision(new_id, now);
        {
            let ctx = PolicyCtx::new(now, &cl, &busy);
            let i = info(&cl, new_id);
            cip.on_admit(&i, &[vi], &ctx);
        }
        assert!(
            cip.clock(new_id) > 0.0,
            "unreported victim silently produced clock 0"
        );
    }

    #[test]
    fn eviction_drops_clock_with_no_orphans() {
        let mut cl = cluster_with(&[(0, 2)]);
        cl.note_arrival(FunctionId(0), TimePoint::ZERO);
        let busy = Map::new();
        let mut cip = CipKeepAlive::new();
        let now = TimePoint::from_secs(10);
        for id in [ContainerId(0), ContainerId(1)] {
            let ctx = PolicyCtx::new(now, &cl, &busy);
            let i = info(&cl, id);
            cip.on_reuse(&i, &ctx);
        }
        assert_eq!(cip.tracked_clocks(), 2);
        for id in [ContainerId(0), ContainerId(1)] {
            let ctx = PolicyCtx::new(now, &cl, &busy);
            let i = info(&cl, id);
            cip.on_evict(&i, &ctx);
        }
        assert_eq!(cip.tracked_clocks(), 0, "orphaned clocks after eviction");
    }

    #[test]
    fn cost_and_size_shape_priority() {
        // Higher cost/size ratio => higher priority, matching GDSF logic.
        let profiles = vec![
            FunctionProfile::new(FunctionId(0), "cheap", 1000, TimeDelta::from_millis(100)),
            FunctionProfile::new(FunctionId(1), "dear", 100, TimeDelta::from_millis(1000)),
        ];
        let mut cl = ClusterState::new(&[100_000], profiles, 1);
        let a = cl.begin_provision(FunctionId(0), WorkerId(0), TimePoint::ZERO, false);
        let b = cl.begin_provision(FunctionId(1), WorkerId(0), TimePoint::ZERO, false);
        cl.finish_provision(a, TimePoint::ZERO);
        cl.finish_provision(b, TimePoint::ZERO);
        cl.note_arrival(FunctionId(0), TimePoint::ZERO);
        cl.note_arrival(FunctionId(1), TimePoint::ZERO);
        let busy = Map::new();
        let ctx = PolicyCtx::new(TimePoint::from_secs(60), &cl, &busy);
        let cip = CipKeepAlive::new();
        assert!(cip.priority(&info(&cl, b), &ctx) > cip.priority(&info(&cl, a), &ctx));
    }
}
