//! CIDRE: concurrency-informed delayed reuse and eviction.
//!
//! This crate implements the paper's primary contribution on top of the
//! [`faas_sim`] policy traits:
//!
//! * [`CipKeepAlive`] — the concurrency-informed priority eviction policy
//!   (§3.3, Eq. 3): container-level recency/cost/size statistics combined
//!   with function-level invocation frequency and warm-container counts.
//! * [`BssScaler`] — basic speculative scaling (§3.2): race a delayed
//!   warm start against a cold start for every blocked request.
//! * [`CssScaler`] — conditional speculative scaling (Algorithm 1): a
//!   per-function hint-based classifier that disables the cold-start path
//!   when speculation is being wasted and re-enables it when queueing
//!   outgrows provisioning cost.
//!
//! [`cidre_stack`] assembles the full system (CIP + CSS); ablation
//! constructors provide the paper's Fig. 15 variants.
//!
//! # Examples
//!
//! ```
//! use cidre_core::{cidre_stack, CidreConfig};
//! use faas_sim::{run, SimConfig};
//! use faas_trace::gen;
//!
//! let trace = gen::azure(11).functions(10).minutes(1).build();
//! let report = run(&trace, &SimConfig::default(), cidre_stack(CidreConfig::default()));
//! assert_eq!(report.requests.len(), trace.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cip;
mod config;
mod css;

pub use cip::CipKeepAlive;
pub use config::{CidreConfig, TeEstimator};
pub use css::{BssScaler, CssScaler};

use faas_sim::{AlwaysCold, PolicyStack};

/// The complete CIDRE policy stack: CIP eviction + CSS scaling.
pub fn cidre_stack(config: CidreConfig) -> PolicyStack {
    PolicyStack::new(
        Box::new(CipKeepAlive::new()),
        Box::new(CssScaler::new(config)),
    )
}

/// The CIDRE_BSS variant evaluated throughout §5: CIP eviction + basic
/// speculative scaling.
pub fn cidre_bss_stack() -> PolicyStack {
    PolicyStack::new(Box::new(CipKeepAlive::new()), Box::new(BssScaler))
}

/// Ablation (Fig. 15): CIP eviction alone, with traditional always-cold
/// scaling.
pub fn cip_only_stack() -> PolicyStack {
    PolicyStack::new(Box::new(CipKeepAlive::new()), Box::new(AlwaysCold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_sim::{run, SimConfig, StartClass};
    use faas_trace::gen;

    #[test]
    fn stacks_have_expected_labels() {
        assert_eq!(cidre_stack(CidreConfig::default()).label(), "cip+css");
        assert_eq!(cidre_bss_stack().label(), "cip+bss");
        assert_eq!(cip_only_stack().label(), "cip+cold");
    }

    #[test]
    fn cidre_reduces_cold_starts_vs_always_cold() {
        let trace = gen::fc(42).functions(20).minutes(2).build();
        let cfg = SimConfig::default().workers_mb(vec![4096]);
        let cidre = run(&trace, &cfg, cidre_stack(CidreConfig::default()));
        let vanilla = run(&trace, &cfg, cip_only_stack());
        assert!(
            cidre.ratio(StartClass::Cold) < vanilla.ratio(StartClass::Cold),
            "CIDRE cold ratio {} must beat always-cold {}",
            cidre.ratio(StartClass::Cold),
            vanilla.ratio(StartClass::Cold)
        );
    }

    #[test]
    fn css_wastes_fewer_cold_starts_than_bss() {
        let trace = gen::fc(7).functions(20).minutes(2).build();
        let cfg = SimConfig::default().workers_mb(vec![4096]);
        let css = run(&trace, &cfg, cidre_stack(CidreConfig::default()));
        let bss = run(&trace, &cfg, cidre_bss_stack());
        assert!(
            css.containers_created <= bss.containers_created,
            "CSS created {} containers, BSS {}",
            css.containers_created,
            bss.containers_created
        );
    }
}
