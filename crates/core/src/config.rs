//! CIDRE configuration knobs (the paper's §5.5 sensitivity axes).

use faas_trace::TimeDelta;

/// How CSS estimates a function's expected execution time `Te` from its
/// history (Fig. 17 compares these).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TeEstimator {
    /// Arithmetic mean of windowed execution times.
    Mean,
    /// The given percentile (0–100) of windowed execution times; the
    /// paper settles on the median (50).
    Percentile(f64),
}

impl TeEstimator {
    /// The paper's default: the median.
    pub const MEDIAN: TeEstimator = TeEstimator::Percentile(50.0);
}

/// Configuration of the CIDRE policy stack.
///
/// # Examples
///
/// ```
/// use cidre_core::{CidreConfig, TeEstimator};
/// use faas_trace::TimeDelta;
///
/// let cfg = CidreConfig::default()
///     .window(Some(TimeDelta::from_minutes(10)))
///     .te_estimator(TeEstimator::Percentile(75.0));
/// assert_eq!(cfg.window, Some(TimeDelta::from_minutes(10)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CidreConfig {
    /// Sliding window over which `Te`, `Td`, and `Tp` statistics are
    /// collected; `None` keeps all history (Fig. 18). Default: 15 minutes,
    /// per §3.2.
    pub window: Option<TimeDelta>,
    /// The `Te` estimator (Fig. 17). Default: median.
    pub te: TeEstimator,
}

impl Default for CidreConfig {
    fn default() -> Self {
        Self {
            window: Some(TimeDelta::from_minutes(15)),
            te: TeEstimator::MEDIAN,
        }
    }
}

impl CidreConfig {
    /// Sets the statistics sliding window (`None` = unbounded).
    pub fn window(mut self, window: Option<TimeDelta>) -> Self {
        self.window = window;
        self
    }

    /// Sets the `Te` estimator.
    pub fn te_estimator(mut self, te: TeEstimator) -> Self {
        self.te = te;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let cfg = CidreConfig::default();
        assert_eq!(cfg.window, Some(TimeDelta::from_minutes(15)));
        assert_eq!(cfg.te, TeEstimator::Percentile(50.0));
    }

    #[test]
    fn builders_chain() {
        let cfg = CidreConfig::default()
            .window(None)
            .te_estimator(TeEstimator::Mean);
        assert_eq!(cfg.window, None);
        assert_eq!(cfg.te, TeEstimator::Mean);
    }
}
