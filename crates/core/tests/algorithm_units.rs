//! Unit tests pinning CIDRE's two algorithms to the paper's math:
//! Algorithm 1's BSS toggle transitions (the `Ti > Te` and `Td > Tp`
//! comparisons, including their strict-inequality boundaries) and the
//! CIP priority of Eq. 3 / frequency of Eq. 4 as exact arithmetic,
//! including logical-clock inheritance across an eviction batch.

use std::collections::HashMap;

use cidre_core::{CidreConfig, CipKeepAlive, CssScaler};
use faas_sim::{
    ClusterState, ContainerId, ContainerInfo, KeepAlive, PolicyCtx, RequestId, RequestInfo,
    ScaleDecision, Scaler, StartClass, WorkerId,
};
use faas_trace::{FunctionId, FunctionProfile, TimeDelta, TimePoint};

/// One function (id 0), 128 MB, 200 ms profile cold start, on a roomy
/// single worker.
fn one_fn_cluster() -> ClusterState {
    let profiles = vec![FunctionProfile::new(
        FunctionId(0),
        "f",
        128,
        TimeDelta::from_millis(200),
    )];
    ClusterState::new(&[10_000], profiles, 1)
}

fn req(at_ms: u64) -> RequestInfo {
    RequestInfo {
        id: RequestId(0),
        func: FunctionId(0),
        arrival: TimePoint::from_millis(at_ms),
    }
}

type Busy = HashMap<ContainerId, Vec<TimePoint>>;

fn ctx_at<'a>(cl: &'a ClusterState, busy: &'a Busy, ms: u64) -> PolicyCtx<'a> {
    PolicyCtx::new(TimePoint::from_millis(ms), cl, busy)
}

/// Records one warm execution of `exec_ms` so the `Te` window holds
/// exactly that value.
fn record_exec(css: &mut CssScaler, cl: &ClusterState, busy: &Busy, at_ms: u64, exec_ms: u64) {
    css.on_start(
        &req(at_ms),
        StartClass::Warm,
        TimeDelta::ZERO,
        TimeDelta::from_millis(exec_ms),
        &ctx_at(cl, busy, at_ms),
    );
}

// ---------------------------------------------------------------- CSS --

/// Algorithm 1 walks the full cycle: start racing (BSS on), a wasteful
/// speculative container (`Ti > Te`) turns the cold path off, a queueing
/// blow-up (`Td > Tp`) turns it back on, and a second wasteful cold
/// start turns it off again. The toggle is re-entrant, not one-shot.
#[test]
fn css_toggle_cycle_disable_reenable_disable() {
    let cl = one_fn_cluster();
    let busy = Busy::new();
    let mut css = CssScaler::new(CidreConfig::default());

    // BSS on: blocked requests race.
    assert_eq!(
        css.on_blocked(&req(0), &ctx_at(&cl, &busy, 0)),
        ScaleDecision::Race
    );

    // Te = 50 ms, last speculative container idled 500 ms: disable.
    record_exec(&mut css, &cl, &busy, 1, 50);
    css.on_cold_outcome(
        FunctionId(0),
        Some(TimeDelta::from_millis(500)),
        &ctx_at(&cl, &busy, 2),
    );
    assert_eq!(
        css.on_blocked(&req(3), &ctx_at(&cl, &busy, 3)),
        ScaleDecision::WaitWarm
    );
    assert!(!css.bss_enabled(FunctionId(0)));

    // A 900 ms delayed-warm wait (> 200 ms profile Tp): re-enable.
    css.on_start(
        &req(4),
        StartClass::DelayedWarm,
        TimeDelta::from_millis(900),
        TimeDelta::from_millis(50),
        &ctx_at(&cl, &busy, 4),
    );
    assert_eq!(
        css.on_blocked(&req(5), &ctx_at(&cl, &busy, 5)),
        ScaleDecision::Race
    );
    assert!(css.bss_enabled(FunctionId(0)));

    // The next speculative container idles 800 ms > Te: disable again.
    css.on_cold_outcome(
        FunctionId(0),
        Some(TimeDelta::from_millis(800)),
        &ctx_at(&cl, &busy, 6),
    );
    assert_eq!(
        css.on_blocked(&req(7), &ctx_at(&cl, &busy, 7)),
        ScaleDecision::WaitWarm
    );
    assert!(!css.bss_enabled(FunctionId(0)));
}

/// The disable comparison is strictly `Ti > Te`: an idle time exactly
/// equal to the expected execution time keeps the cold path on.
#[test]
fn css_ti_equal_te_boundary_keeps_racing() {
    let cl = one_fn_cluster();
    let busy = Busy::new();
    let mut css = CssScaler::new(CidreConfig::default());
    record_exec(&mut css, &cl, &busy, 0, 100); // Te = 100 ms exactly.
    css.on_cold_outcome(
        FunctionId(0),
        Some(TimeDelta::from_millis(100)), // Ti = 100 ms = Te.
        &ctx_at(&cl, &busy, 1),
    );
    assert_eq!(
        css.on_blocked(&req(2), &ctx_at(&cl, &busy, 2)),
        ScaleDecision::Race
    );
    assert!(css.bss_enabled(FunctionId(0)));
}

/// The re-enable comparison is strictly `Td > Tp`: a delayed-warm wait
/// exactly equal to the provisioning estimate keeps the cold path off.
#[test]
fn css_td_equal_tp_boundary_stays_disabled() {
    let cl = one_fn_cluster();
    let busy = Busy::new();
    let mut css = CssScaler::new(CidreConfig::default());
    // Disable: Te = 10 ms, Ti = 500 ms.
    record_exec(&mut css, &cl, &busy, 0, 10);
    css.on_cold_outcome(
        FunctionId(0),
        Some(TimeDelta::from_millis(500)),
        &ctx_at(&cl, &busy, 1),
    );
    assert_eq!(
        css.on_blocked(&req(2), &ctx_at(&cl, &busy, 2)),
        ScaleDecision::WaitWarm
    );
    // Td = 200 ms = the profile cold start backing Tp.
    css.on_start(
        &req(3),
        StartClass::DelayedWarm,
        TimeDelta::from_millis(200),
        TimeDelta::from_millis(10),
        &ctx_at(&cl, &busy, 3),
    );
    assert_eq!(
        css.on_blocked(&req(4), &ctx_at(&cl, &busy, 4)),
        ScaleDecision::WaitWarm
    );
    assert!(!css.bss_enabled(FunctionId(0)));
}

/// The `Ti` hint expires with the configured sliding window, exactly
/// like the statistics it is compared against (§3.2/Fig. 18): at
/// `age == window` it still counts (matching `SlidingWindow`'s cutoff,
/// which retains an entry exactly at the cutoff), one time unit later it
/// is gone and can no longer disable the cold path.
#[test]
fn css_ti_hint_expires_with_window() {
    let window_ms = 1_000u64;
    let cl = one_fn_cluster();
    let busy = Busy::new();
    let make =
        || CssScaler::new(CidreConfig::default().window(Some(TimeDelta::from_millis(window_ms))));

    // Age exactly == window: the hint is still fresh and disables BSS.
    let mut css = make();
    css.on_cold_outcome(
        FunctionId(0),
        Some(TimeDelta::from_millis(500)), // Ti = 500 ms.
        &ctx_at(&cl, &busy, 0),
    );
    record_exec(&mut css, &cl, &busy, window_ms, 50); // fresh Te = 50 ms.
    assert_eq!(
        css.on_blocked(&req(window_ms), &ctx_at(&cl, &busy, window_ms)),
        ScaleDecision::WaitWarm
    );
    assert!(!css.bss_enabled(FunctionId(0)));

    // One time unit past the window: the stale hint must not flip state.
    let mut css = make();
    css.on_cold_outcome(
        FunctionId(0),
        Some(TimeDelta::from_millis(500)),
        &ctx_at(&cl, &busy, 0),
    );
    record_exec(&mut css, &cl, &busy, window_ms + 1, 50);
    assert_eq!(
        css.on_blocked(&req(window_ms + 1), &ctx_at(&cl, &busy, window_ms + 1)),
        ScaleDecision::Race
    );
    assert!(css.bss_enabled(FunctionId(0)));
}

// ---------------------------------------------------------------- CIP --

/// Cluster with `n` warm containers of function 0 (`mem_mb`, `cold_ms`),
/// provisioned at t=0.
fn warm_cluster(n: usize, mem_mb: u32, cold_ms: u64) -> ClusterState {
    let profiles = vec![FunctionProfile::new(
        FunctionId(0),
        "f",
        mem_mb,
        TimeDelta::from_millis(cold_ms),
    )];
    let mut cl = ClusterState::new(&[100_000], profiles, 1);
    for _ in 0..n {
        let id = cl.begin_provision(FunctionId(0), WorkerId(0), TimePoint::ZERO, false);
        cl.finish_provision(id, TimePoint::ZERO);
    }
    cl
}

fn info(cl: &ClusterState, id: ContainerId) -> ContainerInfo {
    ContainerInfo::from(cl.container(id).expect("live"))
}

/// Eq. 3 with a zero clock reduces to `Freq * Cost / (Size * |F(c)|)`.
/// One arrival at t=0 observed at t=60 s gives Freq = 1/min (Eq. 4), so
/// with Cost = 200 ms, Size = 100 MB, |F(c)| = 1 the priority is
/// exactly 1 * 200 / (100 * 1) = 2.
#[test]
fn cip_priority_is_eq3_arithmetic() {
    let mut cl = warm_cluster(1, 100, 200);
    cl.note_arrival(FunctionId(0), TimePoint::ZERO);
    let busy = Busy::new();
    let cip = CipKeepAlive::new();
    let ctx = PolicyCtx::new(TimePoint::from_secs(60), &cl, &busy);
    let p = cip.priority(&info(&cl, ContainerId(0)), &ctx);
    assert!((p - 2.0).abs() < 1e-12, "got {p}");
    // Doubling the warm-container count halves the per-container share.
    let cl2 = {
        let mut c = warm_cluster(2, 100, 200);
        c.note_arrival(FunctionId(0), TimePoint::ZERO);
        c
    };
    let ctx2 = PolicyCtx::new(TimePoint::from_secs(60), &cl2, &busy);
    let p2 = cip.priority(&info(&cl2, ContainerId(0)), &ctx2);
    assert!((p2 - 1.0).abs() < 1e-12, "got {p2}");
}

/// Eq. 4 is invocations over minutes since first arrival: 3 arrivals at
/// t=0 observed at t=120 s give 1.5/min; observed 1 ms after the first
/// arrival the elapsed time clamps to one second, giving 180/min.
#[test]
fn cip_eq4_frequency_over_lifetime_and_clamp() {
    let mut cl = warm_cluster(1, 100, 200);
    for _ in 0..3 {
        cl.note_arrival(FunctionId(0), TimePoint::ZERO);
    }
    let busy = Busy::new();
    let cip = CipKeepAlive::new();
    let at_2min = PolicyCtx::new(TimePoint::from_secs(120), &cl, &busy);
    let p = cip.priority(&info(&cl, ContainerId(0)), &at_2min);
    assert!((p - 1.5 * 200.0 / 100.0).abs() < 1e-12, "got {p}");
    let at_1ms = PolicyCtx::new(TimePoint::from_millis(1), &cl, &busy);
    let p = cip.priority(&info(&cl, ContainerId(0)), &at_1ms);
    assert!((p - 180.0 * 200.0 / 100.0).abs() < 1e-9, "got {p}");
}

/// §3.3 clock inheritance: a container admitted by evicting others
/// starts its logical clock at the maximum evicted priority, and its own
/// priority stacks Eq. 3's frequency term on top of that clock.
#[test]
fn cip_clock_inheritance_is_max_evicted_plus_own_term() {
    let mut cl = warm_cluster(2, 100, 200);
    cl.note_arrival(FunctionId(0), TimePoint::ZERO);
    let busy = Busy::new();
    let mut cip = CipKeepAlive::new();
    let now = TimePoint::from_secs(60);
    // Both victims share k=2 and Freq=1/min: priority 1*200/(100*2) = 1.
    let (i0, i1) = (info(&cl, ContainerId(0)), info(&cl, ContainerId(1)));
    {
        let ctx = PolicyCtx::new(now, &cl, &busy);
        assert!((cip.priority(&i0, &ctx) - 1.0).abs() < 1e-12);
        cip.on_evict(&i0, &ctx);
        cip.on_evict(&i1, &ctx);
    }
    cl.evict(ContainerId(0), now);
    cl.evict(ContainerId(1), now);
    // Admit the replacement; it inherits clock = max(1, 1) = 1.
    let new_id = cl.begin_provision(FunctionId(0), WorkerId(0), now, false);
    cl.finish_provision(new_id, now);
    let new_info = info(&cl, new_id);
    {
        let ctx = PolicyCtx::new(now, &cl, &busy);
        cip.on_admit(&new_info, &[i0, i1], &ctx);
    }
    assert!((cip.clock(new_id) - 1.0).abs() < 1e-12);
    // Its priority is the inherited clock plus its own term: now the
    // function holds a single container, so 1 + 1*200/(100*1) = 3.
    let ctx = PolicyCtx::new(now, &cl, &busy);
    let p = cip.priority(&new_info, &ctx);
    assert!((p - 3.0).abs() < 1e-12, "got {p}");
}

/// Priorities flow from Eq. 3 into sorts and heap keys, so the float
/// comparator is part of the algorithm: `f64::total_cmp` (cidre-lint
/// rule F1) gives the IEEE-754 total order — no NaN unwrap, `-0.0`
/// strictly below `0.0` — and [`faas_core::OrdF64`] must agree with it
/// exactly, in both `Ord` and `Eq`.
#[test]
fn priority_comparator_total_orders_nan_and_signed_zero() {
    use faas_core::OrdF64;

    let mut v = vec![
        f64::NAN,
        1.0,
        f64::NEG_INFINITY,
        0.0,
        -0.0,
        f64::INFINITY,
        -1.0,
    ];
    v.sort_by(f64::total_cmp); // a partial_cmp().unwrap() here would panic
    assert_eq!(v[0], f64::NEG_INFINITY);
    assert_eq!(v[1], -1.0);
    assert!(v[2] == 0.0 && v[2].is_sign_negative(), "-0.0 before 0.0");
    assert!(v[3] == 0.0 && v[3].is_sign_positive());
    assert_eq!(v[4], 1.0);
    assert_eq!(v[5], f64::INFINITY);
    assert!(v[6].is_nan(), "positive NaN sorts last");

    // OrdF64 agrees with total_cmp on every non-NaN pair, and its Eq is
    // consistent with its Ord (-0.0 != 0.0 even though -0.0 == 0.0 as f64).
    let finite = [f64::NEG_INFINITY, -1.0, -0.0, 0.0, 1.0, f64::INFINITY];
    for &a in &finite {
        for &b in &finite {
            assert_eq!(
                OrdF64::new(a).cmp(&OrdF64::new(b)),
                a.total_cmp(&b),
                "OrdF64 disagrees with total_cmp on ({a}, {b})"
            );
            assert_eq!(
                OrdF64::new(a) == OrdF64::new(b),
                a.total_cmp(&b).is_eq(),
                "Eq inconsistent with Ord on ({a}, {b})"
            );
        }
    }
}

/// NaN priorities must never reach an eviction order silently: the
/// indexed path rejects them at `OrdF64` construction …
#[test]
#[should_panic(expected = "priorities must not be NaN")]
fn indexed_eviction_key_rejects_nan() {
    let _ = faas_core::OrdF64::new(f64::NAN);
}

/// … and the reference path panics with the same message, so swapping
/// scan modes cannot change NaN handling (the differential oracle
/// depends on this).
#[test]
#[should_panic(expected = "priorities must not be NaN")]
fn reference_eviction_sort_rejects_nan() {
    let _ = faas_sim::reference::sorted_eviction_candidates(vec![
        (1.0, ContainerId(0)),
        (f64::NAN, ContainerId(1)),
    ]);
}
