//! Simulator-fidelity tests: the same trace and policy stack replayed on
//! the live host must produce class ratios close to the deterministic
//! simulation, despite wall-clock asynchrony.

use std::sync::Mutex;

use cidre_core::{cidre_stack, CidreConfig};
use faas_live::{run_live, run_live_stats, LiveConfig};
use faas_policies::faascache_stack;
use faas_sim::{run, PolicyStack, SimConfig, StartClass};
use faas_trace::{gen, FunctionId, FunctionProfile, Invocation, TimeDelta, TimePoint, Trace};

/// Live runs race the wall clock; running several at once (the default
/// test harness is parallel) distorts their timing. Serialise them.
static LIVE_HOST: Mutex<()> = Mutex::new(());

fn compare(label: &str, mk: fn() -> PolicyStack, tolerance: f64) {
    // At 1:100 compression a 300 ms simulated cold start is 3 ms of real
    // time — large against OS sleep jitter, so event ordering stays
    // faithful; the one-minute trace replays in ~0.6 s. A loaded machine
    // can still clump arrivals, so allow a few attempts before declaring
    // divergence (wall-clock tests are checked on agreement, not luck:
    // a correctness bug fails all attempts identically).
    let _guard = LIVE_HOST.lock().unwrap_or_else(|p| p.into_inner());
    let trace = gen::azure(9)
        .functions(8)
        .minutes(1)
        .rate_per_function(0.5)
        .build();
    let sim_cfg = SimConfig::with_cache_gb(6);
    let live_cfg = LiveConfig::default().sim(sim_cfg.clone()).time_scale(0.01);
    let simulated = run(&trace, &sim_cfg, mk());

    let mut last_error = String::new();
    for _attempt in 0..3 {
        let live = run_live(&trace, &live_cfg, mk());
        assert_eq!(live.requests.len(), trace.len(), "{label}: conservation");
        last_error.clear();
        for class in [StartClass::Warm, StartClass::Cold, StartClass::DelayedWarm] {
            let s = simulated.ratio(class);
            let l = live.ratio(class);
            if (s - l).abs() > tolerance {
                last_error =
                    format!("{label}: {class:?} ratio diverged, sim {s:.3} vs live {l:.3}");
            }
        }
        // Wait-time distributions must also be close: earth mover's
        // distance below 100 simulated ms (cold starts are 200-2300 ms).
        let d = simulated
            .wait_cdf()
            .wasserstein_distance(&live.wait_cdf(), 100)
            .expect("both hosts served requests");
        if d >= 100.0 {
            last_error = format!("{label}: wait distributions diverged by {d:.1} ms");
        }
        if last_error.is_empty() {
            return;
        }
    }
    panic!("{last_error}");
}

#[test]
fn lru_matches_simulation() {
    compare("faascache", faascache_stack, 0.10);
}

#[test]
fn cidre_matches_simulation() {
    compare("cidre", || cidre_stack(CidreConfig::default()), 0.12);
}

#[test]
fn class_ratios_agree_at_high_concurrency() {
    // Thousands of requests in flight at once: 3000 requests arrive
    // over 10 simulated seconds, each executing for 15 simulated
    // seconds, so everything overlaps. On the old thread-per-request
    // host this would have needed 3000 OS threads; on the executor it
    // is 3000 suspended tasks. Class ratios must still track the
    // deterministic simulation, which bounds how far the event loop may
    // lag: at 1:20 compression arrivals are ~170 us of real time apart,
    // comfortably above per-event policy cost, while a 300 ms cold
    // start is 15 ms real — still dominant over scheduling jitter.
    let _guard = LIVE_HOST.lock().unwrap_or_else(|p| p.into_inner());
    const REQUESTS: usize = 3000;
    let profiles: Vec<FunctionProfile> = (0..8)
        .map(|i| {
            FunctionProfile::new(
                FunctionId(i),
                format!("f{i}"),
                128,
                TimeDelta::from_millis(300),
            )
        })
        .collect();
    let invs: Vec<Invocation> = (0..REQUESTS)
        .map(|i| Invocation {
            func: FunctionId((i % 8) as u32),
            arrival: TimePoint::from_micros(i as u64 * 10_000_000 / REQUESTS as u64),
            exec: TimeDelta::from_secs(15),
        })
        .collect();
    let trace = Trace::new(profiles, invs).expect("valid trace");
    let sim_cfg = SimConfig::with_cache_gb(100).container_threads(4);
    let live_cfg = LiveConfig::default().sim(sim_cfg.clone()).time_scale(0.05);
    let simulated = run(&trace, &sim_cfg, faascache_stack());

    let mut last_error = String::new();
    for _attempt in 0..3 {
        let (live, stats) = run_live_stats(&trace, &live_cfg, faascache_stack());
        assert_eq!(live.requests.len(), REQUESTS, "conservation");
        assert!(
            stats.peak_inflight >= (REQUESTS as u64) * 2 / 3,
            "the burst must actually overlap: peak_inflight {}",
            stats.peak_inflight
        );
        // The whole arrival schedule is spawned as suspended tasks up
        // front; most are still parked when the earliest ones fire.
        assert!(
            stats.peak_tasks >= REQUESTS / 2,
            "arrival schedule should sit in the task arena: peak_tasks {}",
            stats.peak_tasks
        );
        last_error.clear();
        for class in [StartClass::Warm, StartClass::Cold, StartClass::DelayedWarm] {
            let s = simulated.ratio(class);
            let l = live.ratio(class);
            if (s - l).abs() > 0.15 {
                last_error = format!("{class:?} ratio diverged, sim {s:.3} vs live {l:.3}");
            }
        }
        if last_error.is_empty() {
            return;
        }
    }
    panic!("{last_error}");
}

#[test]
fn live_cold_waits_cover_provisioning_latency() {
    let _guard = LIVE_HOST.lock().unwrap_or_else(|p| p.into_inner());
    let trace = gen::fc(4)
        .functions(6)
        .minutes(1)
        .rate_per_function(0.5)
        .build();
    let live_cfg = LiveConfig::default()
        .sim(SimConfig::with_cache_gb(6))
        .time_scale(0.002);
    let report = run_live(&trace, &live_cfg, faascache_stack());
    for r in report
        .requests
        .iter()
        .filter(|r| r.class == StartClass::Cold)
    {
        let cold = trace.function(r.func).expect("profile").cold_start;
        // Wall-clock waits can only overshoot the provisioning latency
        // (scheduling jitter), never undershoot it by more than the
        // measurement granularity.
        assert!(
            r.wait.as_millis_f64() >= cold.as_millis_f64() * 0.8,
            "cold wait {} ms vs provisioning {} ms",
            r.wait.as_millis_f64(),
            cold.as_millis_f64()
        );
    }
}
