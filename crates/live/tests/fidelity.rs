//! Simulator-fidelity tests: the same trace and policy stack replayed on
//! the live host must produce class ratios close to the deterministic
//! simulation, despite wall-clock asynchrony.

use std::sync::Mutex;

use cidre_core::{cidre_stack, CidreConfig};
use faas_live::{run_live, LiveConfig};
use faas_policies::faascache_stack;
use faas_sim::{run, PolicyStack, SimConfig, StartClass};
use faas_trace::gen;

/// Live runs race the wall clock; running several at once (the default
/// test harness is parallel) distorts their timing. Serialise them.
static LIVE_HOST: Mutex<()> = Mutex::new(());

fn compare(label: &str, mk: fn() -> PolicyStack, tolerance: f64) {
    // At 1:100 compression a 300 ms simulated cold start is 3 ms of real
    // time — large against OS sleep jitter, so event ordering stays
    // faithful; the one-minute trace replays in ~0.6 s. A loaded machine
    // can still clump arrivals, so allow a few attempts before declaring
    // divergence (wall-clock tests are checked on agreement, not luck:
    // a correctness bug fails all attempts identically).
    let _guard = LIVE_HOST.lock().expect("live-host lock");
    let trace = gen::azure(9)
        .functions(8)
        .minutes(1)
        .rate_per_function(0.5)
        .build();
    let sim_cfg = SimConfig::with_cache_gb(6);
    let live_cfg = LiveConfig::default().sim(sim_cfg.clone()).time_scale(0.01);
    let simulated = run(&trace, &sim_cfg, mk());

    let mut last_error = String::new();
    for _attempt in 0..3 {
        let live = run_live(&trace, &live_cfg, mk());
        assert_eq!(live.requests.len(), trace.len(), "{label}: conservation");
        last_error.clear();
        for class in [StartClass::Warm, StartClass::Cold, StartClass::DelayedWarm] {
            let s = simulated.ratio(class);
            let l = live.ratio(class);
            if (s - l).abs() > tolerance {
                last_error =
                    format!("{label}: {class:?} ratio diverged, sim {s:.3} vs live {l:.3}");
            }
        }
        // Wait-time distributions must also be close: earth mover's
        // distance below 100 simulated ms (cold starts are 200-2300 ms).
        let d = simulated
            .wait_cdf()
            .wasserstein_distance(&live.wait_cdf(), 100)
            .expect("both hosts served requests");
        if d >= 100.0 {
            last_error = format!("{label}: wait distributions diverged by {d:.1} ms");
        }
        if last_error.is_empty() {
            return;
        }
    }
    panic!("{last_error}");
}

#[test]
fn lru_matches_simulation() {
    compare("faascache", faascache_stack, 0.10);
}

#[test]
fn cidre_matches_simulation() {
    compare("cidre", || cidre_stack(CidreConfig::default()), 0.12);
}

#[test]
fn live_cold_waits_cover_provisioning_latency() {
    let _guard = LIVE_HOST.lock().expect("live-host lock");
    let trace = gen::fc(4)
        .functions(6)
        .minutes(1)
        .rate_per_function(0.5)
        .build();
    let live_cfg = LiveConfig::default()
        .sim(SimConfig::with_cache_gb(6))
        .time_scale(0.002);
    let report = run_live(&trace, &live_cfg, faascache_stack());
    for r in report
        .requests
        .iter()
        .filter(|r| r.class == StartClass::Cold)
    {
        let cold = trace.function(r.func).expect("profile").cold_start;
        // Wall-clock waits can only overshoot the provisioning latency
        // (scheduling jitter), never undershoot it by more than the
        // measurement granularity.
        assert!(
            r.wait.as_millis_f64() >= cold.as_millis_f64() * 0.8,
            "cold wait {} ms vs provisioning {} ms",
            r.wait.as_millis_f64(),
            cold.as_millis_f64()
        );
    }
}
