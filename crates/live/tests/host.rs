//! Integration tests of the programmable FaaS host.

use std::sync::Mutex;

use cidre_core::{cidre_stack, CidreConfig};
use faas_live::{FaasHost, Handler, LiveConfig};
use faas_sim::{baseline_lru_stack, SimConfig, StartClass};
use faas_trace::{FunctionId, FunctionProfile, TimeDelta};

/// Serialise host tests: they race the wall clock.
static LIVE_HOST: Mutex<()> = Mutex::new(());

fn sum_handler() -> Handler {
    std::sync::Arc::new(|payload: Vec<u8>| {
        let total: u64 = payload.iter().map(|&b| b as u64).sum();
        total.to_le_bytes().to_vec()
    })
}

fn slow_handler(real_ms: u64) -> Handler {
    std::sync::Arc::new(move |payload: Vec<u8>| {
        std::thread::sleep(std::time::Duration::from_millis(real_ms));
        payload
    })
}

fn profile(id: u32, cold_ms: u64) -> FunctionProfile {
    FunctionProfile::new(
        FunctionId(id),
        format!("f{id}"),
        128,
        TimeDelta::from_millis(cold_ms),
    )
}

#[test]
fn cold_then_warm_with_real_output() {
    let _guard = LIVE_HOST.lock().expect("live-host lock");
    let host = FaasHost::start(
        LiveConfig::default().time_scale(0.01),
        baseline_lru_stack(),
        vec![(profile(0, 100), sum_handler())],
    );
    let first = host
        .invoke(FunctionId(0), vec![1, 2, 3])
        .wait()
        .expect("served");
    assert_eq!(
        u64::from_le_bytes(first.output.clone().try_into().expect("8 bytes")),
        6
    );
    assert_eq!(first.class, StartClass::Cold);
    assert!(
        first.wait >= TimeDelta::from_millis(90),
        "cold wait {}",
        first.wait
    );

    let second = host
        .invoke(FunctionId(0), vec![10, 20])
        .wait()
        .expect("served");
    assert_eq!(second.class, StartClass::Warm);
    let report = host.shutdown();
    assert_eq!(report.requests.len(), 2);
    assert_eq!(report.containers_created, 1);
}

#[test]
fn traced_host_records_provenance() {
    use faas_obs::ObsEvent;
    let _guard = LIVE_HOST.lock().expect("live-host lock");
    let host = FaasHost::start_traced(
        LiveConfig::default().time_scale(0.01),
        baseline_lru_stack(),
        vec![(profile(0, 100), sum_handler())],
    );
    host.invoke(FunctionId(0), vec![1]).wait().expect("served");
    host.invoke(FunctionId(0), vec![2]).wait().expect("served");
    let (report, log) = host.shutdown_traced();
    assert_eq!(report.requests.len(), 2);
    let count = |pred: fn(&ObsEvent) -> bool| log.events().iter().filter(|e| pred(e)).count();
    assert_eq!(count(|e| matches!(e, ObsEvent::Start { .. })), 2);
    assert_eq!(count(|e| matches!(e, ObsEvent::Finish { .. })), 2);
    // The cold start left admission + provisioning provenance.
    assert!(count(|e| matches!(e, ObsEvent::Admit { .. })) >= 1);
    assert_eq!(count(|e| matches!(e, ObsEvent::ProvisionBegin { .. })), 1);
    // The untraced host returns an empty log from the same path.
    let untraced = FaasHost::start(
        LiveConfig::default().time_scale(0.01),
        baseline_lru_stack(),
        vec![(profile(0, 100), sum_handler())],
    );
    untraced
        .invoke(FunctionId(0), vec![1])
        .wait()
        .expect("served");
    let (_, empty) = untraced.shutdown_traced();
    assert!(empty.is_empty());
}

#[test]
fn concurrent_invocations_fan_out() {
    let _guard = LIVE_HOST.lock().expect("live-host lock");
    let host = FaasHost::start(
        LiveConfig::default().time_scale(0.01),
        baseline_lru_stack(),
        vec![(profile(0, 50), slow_handler(30))],
    );
    // Five concurrent invocations: the always-cold baseline provisions a
    // container per blocked request.
    let handles: Vec<_> = (0..5)
        .map(|i| host.invoke(FunctionId(0), vec![i]))
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let out = h.wait().expect("served");
        assert_eq!(
            out.output,
            vec![i as u8],
            "outputs must match their requests"
        );
    }
    let report = host.shutdown();
    assert_eq!(report.requests.len(), 5);
    assert!(
        report.containers_created >= 2,
        "concurrency forces extra containers"
    );
}

#[test]
fn cidre_turns_concurrent_blocked_requests_into_delayed_warm() {
    let _guard = LIVE_HOST.lock().expect("live-host lock");
    // Execution (30 ms real = 3 s simulated at 0.01) far below the cold
    // start (10 s simulated): CIDRE should queue on busy containers.
    let host = FaasHost::start(
        LiveConfig::default().time_scale(0.01),
        cidre_stack(CidreConfig::default()),
        vec![(profile(0, 10_000), slow_handler(30))],
    );
    let warmup = host.invoke(FunctionId(0), vec![0]).wait().expect("served");
    assert_eq!(warmup.class, StartClass::Cold);
    // Back-to-back pair: the first grabs the idle container, the second
    // races and should win via the busy container (3 s exec << 10 s cold).
    let a = host.invoke(FunctionId(0), vec![1]);
    let b = host.invoke(FunctionId(0), vec![2]);
    let (a, b) = (a.wait().expect("served"), b.wait().expect("served"));
    assert_eq!(a.class, StartClass::Warm);
    assert_eq!(
        b.class,
        StartClass::DelayedWarm,
        "b should reuse the busy container"
    );
    let report = host.shutdown();
    assert_eq!(report.requests.len(), 3);
}

#[test]
fn shutdown_drains_in_flight_work() {
    let _guard = LIVE_HOST.lock().expect("live-host lock");
    let host = FaasHost::start(
        LiveConfig::default().time_scale(0.01),
        baseline_lru_stack(),
        vec![(profile(0, 20), slow_handler(50))],
    );
    let pending: Vec<_> = (0..3)
        .map(|i| host.invoke(FunctionId(0), vec![i]))
        .collect();
    // Shut down immediately: the report must still cover all three.
    let report = host.shutdown();
    assert_eq!(report.requests.len(), 3);
    for h in pending {
        assert!(h.wait().is_some(), "handles resolve even after shutdown");
    }
}

#[test]
fn memory_pressure_evicts_on_live_host() {
    let _guard = LIVE_HOST.lock().expect("live-host lock");
    // One worker fits one container; two functions alternate.
    let config = LiveConfig::default()
        .sim(SimConfig::default().workers_mb(vec![200]))
        .time_scale(0.01);
    let host = FaasHost::start(
        config,
        baseline_lru_stack(),
        vec![
            (profile(0, 50), sum_handler()),
            (profile(1, 50), sum_handler()),
        ],
    );
    host.invoke(FunctionId(0), vec![1]).wait().expect("served");
    host.invoke(FunctionId(1), vec![1]).wait().expect("served");
    host.invoke(FunctionId(0), vec![1]).wait().expect("served");
    let report = host.shutdown();
    assert!(
        report.containers_evicted >= 2,
        "evictions {}",
        report.containers_evicted
    );
    assert_eq!(report.count(StartClass::Cold), 3);
}
