//! A real-time delay queue: schedule messages to fire at wall-clock
//! deadlines, delivered through a channel.

use std::collections::BinaryHeap;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A scheduled entry: fire `payload` at `deadline`.
struct Entry<T> {
    deadline: Instant,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest first.
        other
            .deadline
            .cmp(&self.deadline)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Handle for scheduling messages onto the timer thread.
///
/// Cloneable; the timer thread exits once every handle is dropped and
/// all pending deadlines have fired.
pub struct Timer<T> {
    state: Arc<(Mutex<TimerState<T>>, Condvar)>,
}

impl<T> Clone for Timer<T> {
    fn clone(&self) -> Self {
        let (lock, _) = &*self.state;
        lock.lock().expect("timer lock").handles += 1;
        Self {
            state: Arc::clone(&self.state),
        }
    }
}

struct TimerState<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    handles: usize,
}

impl<T: Send + 'static> Timer<T> {
    /// Spawns the timer thread; fired payloads are sent to `out`.
    pub fn spawn(out: Sender<T>) -> Self {
        let state = Arc::new((
            Mutex::new(TimerState {
                heap: BinaryHeap::new(),
                seq: 0,
                handles: 1,
            }),
            Condvar::new(),
        ));
        let thread_state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("faas-live-timer".into())
            .spawn(move || {
                let (lock, cvar) = &*thread_state;
                let mut guard = lock.lock().expect("timer lock");
                loop {
                    let now = Instant::now();
                    // Fire everything due.
                    while guard
                        .heap
                        .peek()
                        .map(|e| e.deadline <= now)
                        .unwrap_or(false)
                    {
                        let entry = guard.heap.pop().expect("peeked");
                        // Ignore send errors: the consumer may have left.
                        let _ = out.send(entry.payload);
                    }
                    if guard.handles == 0 && guard.heap.is_empty() {
                        return;
                    }
                    guard = match guard.heap.peek().map(|e| e.deadline) {
                        Some(next) => {
                            let wait = next.saturating_duration_since(Instant::now());
                            cvar.wait_timeout(guard, wait).expect("timer lock").0
                        }
                        None => cvar.wait(guard).expect("timer lock"),
                    };
                }
            })
            .expect("spawn timer thread");
        Self { state }
    }

    /// Schedules `payload` to fire at `deadline`.
    pub fn schedule(&self, deadline: Instant, payload: T) {
        let (lock, cvar) = &*self.state;
        let mut guard = lock.lock().expect("timer lock");
        let seq = guard.seq;
        guard.seq += 1;
        guard.heap.push(Entry {
            deadline,
            seq,
            payload,
        });
        cvar.notify_one();
    }
}

impl<T> Drop for Timer<T> {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.state;
        if let Ok(mut guard) = lock.lock() {
            guard.handles -= 1;
            cvar.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn fires_in_deadline_order() {
        let (tx, rx) = mpsc::channel();
        let timer = Timer::spawn(tx);
        let base = Instant::now();
        timer.schedule(base + Duration::from_millis(30), 3u32);
        timer.schedule(base + Duration::from_millis(10), 1);
        timer.schedule(base + Duration::from_millis(20), 2);
        let got: Vec<u32> = (0..3).map(|_| rx.recv().expect("fires")).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn immediate_deadlines_fire_fast() {
        let (tx, rx) = mpsc::channel();
        let timer = Timer::spawn(tx);
        timer.schedule(Instant::now(), "now");
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(1)).expect("fires"),
            "now"
        );
    }

    #[test]
    fn clone_handles_keep_timer_alive() {
        let (tx, rx) = mpsc::channel();
        let timer = Timer::spawn(tx);
        let clone = timer.clone();
        drop(timer);
        clone.schedule(Instant::now() + Duration::from_millis(5), 7u8);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).expect("fires"), 7);
    }

    #[test]
    fn pending_deadlines_fire_after_last_handle_drops() {
        let (tx, rx) = mpsc::channel();
        let timer = Timer::spawn(tx);
        timer.schedule(Instant::now() + Duration::from_millis(20), 9u8);
        drop(timer);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).expect("fires"), 9);
    }
}
