//! A real-time delay queue: schedule messages to fire at wall-clock
//! deadlines, delivered through a channel.
//!
//! Deadlines live in a [`crate::heap::DeadlineHeap`], so simultaneous
//! deadlines fire in insertion order (deterministic ties). All lock
//! acquisitions recover from poisoning: a thread that panics while
//! holding the timer lock (e.g. a panicking payload destructor on an
//! unwinding user thread) leaves the heap in a consistent state — every
//! mutation below is completed before the lock is released — so
//! survivors keep scheduling and pending deadlines keep firing instead
//! of every later `expect("timer lock")` silently killing the timer.

use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use crate::heap::DeadlineHeap;

/// Locks `mutex`, recovering the guard if a previous holder panicked.
///
/// Safe here because every critical section in this module keeps the
/// state consistent at all points where a panic can unwind (payload
/// drops and channel sends happen outside the lock).
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Handle for scheduling messages onto the timer thread.
///
/// Cloneable; the timer thread exits once every handle is dropped and
/// all pending deadlines have fired.
pub struct Timer<T> {
    state: Arc<(Mutex<TimerState<T>>, Condvar)>,
}

impl<T> Clone for Timer<T> {
    fn clone(&self) -> Self {
        let (lock, _) = &*self.state;
        lock_recover(lock).handles += 1;
        Self {
            state: Arc::clone(&self.state),
        }
    }
}

struct TimerState<T> {
    heap: DeadlineHeap<T>,
    handles: usize,
}

impl<T: Send + 'static> Timer<T> {
    /// Spawns the timer thread; fired payloads are sent to `out`.
    pub fn spawn(out: Sender<T>) -> Self {
        let state = Arc::new((
            Mutex::new(TimerState {
                heap: DeadlineHeap::new(),
                handles: 1,
            }),
            Condvar::new(),
        ));
        let thread_state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("faas-live-timer".into())
            .spawn(move || {
                let (lock, cvar) = &*thread_state;
                let mut guard = lock_recover(lock);
                loop {
                    let now = Instant::now();
                    // Drain everything due while holding the lock, but
                    // send (and, if the consumer left, drop) the
                    // payloads outside it: a panicking payload `Drop`
                    // must not poison the heap.
                    let mut due = Vec::new();
                    while let Some(payload) = guard.heap.pop_due(now) {
                        due.push(payload);
                    }
                    if !due.is_empty() {
                        drop(guard);
                        for payload in due {
                            // Ignore send errors: the consumer may have left.
                            let _ = out.send(payload);
                        }
                        guard = lock_recover(lock);
                        continue;
                    }
                    if guard.handles == 0 && guard.heap.is_empty() {
                        return;
                    }
                    guard = match guard.heap.next_deadline() {
                        Some(next) => {
                            let wait = next.saturating_duration_since(Instant::now());
                            cvar.wait_timeout(guard, wait)
                                .map(|(g, _)| g)
                                .unwrap_or_else(|poisoned| poisoned.into_inner().0)
                        }
                        None => cvar
                            .wait(guard)
                            .unwrap_or_else(|poisoned| poisoned.into_inner()),
                    };
                }
            })
            .expect("spawn timer thread");
        Self { state }
    }

    /// Schedules `payload` to fire at `deadline`. Payloads scheduled for
    /// the same instant fire in the order they were scheduled.
    pub fn schedule(&self, deadline: Instant, payload: T) {
        let (lock, cvar) = &*self.state;
        lock_recover(lock).heap.push(deadline, payload);
        cvar.notify_one();
    }
}

impl<T> Drop for Timer<T> {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.state;
        lock_recover(lock).handles -= 1;
        cvar.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn fires_in_deadline_order() {
        let (tx, rx) = mpsc::channel();
        let timer = Timer::spawn(tx);
        let base = Instant::now();
        timer.schedule(base + Duration::from_millis(30), 3u32);
        timer.schedule(base + Duration::from_millis(10), 1);
        timer.schedule(base + Duration::from_millis(20), 2);
        let got: Vec<u32> = (0..3).map(|_| rx.recv().expect("fires")).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn immediate_deadlines_fire_fast() {
        let (tx, rx) = mpsc::channel();
        let timer = Timer::spawn(tx);
        timer.schedule(Instant::now(), "now");
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(1)).expect("fires"),
            "now"
        );
    }

    #[test]
    fn equal_deadlines_fire_in_schedule_order() {
        // Regression: simultaneous deadlines used to surface in raw
        // heap order; the sequence-numbered entries pin insertion order.
        let (tx, rx) = mpsc::channel();
        let timer = Timer::spawn(tx);
        let deadline = Instant::now() + Duration::from_millis(20);
        for i in 0..32u32 {
            timer.schedule(deadline, i);
        }
        let got: Vec<u32> = (0..32)
            .map(|_| rx.recv_timeout(Duration::from_secs(1)).expect("fires"))
            .collect();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn zero_duration_deadlines_fire_in_schedule_order() {
        let (tx, rx) = mpsc::channel();
        let timer = Timer::spawn(tx);
        let now = Instant::now();
        for i in 0..8u32 {
            timer.schedule(now, i);
        }
        let got: Vec<u32> = (0..8)
            .map(|_| rx.recv_timeout(Duration::from_secs(1)).expect("fires"))
            .collect();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn clone_handles_keep_timer_alive() {
        let (tx, rx) = mpsc::channel();
        let timer = Timer::spawn(tx);
        let clone = timer.clone();
        drop(timer);
        clone.schedule(Instant::now() + Duration::from_millis(5), 7u8);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).expect("fires"), 7);
    }

    #[test]
    fn pending_deadlines_fire_after_last_handle_drops() {
        let (tx, rx) = mpsc::channel();
        let timer = Timer::spawn(tx);
        timer.schedule(Instant::now() + Duration::from_millis(20), 9u8);
        drop(timer);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).expect("fires"), 9);
    }

    #[test]
    fn survives_lock_poisoning() {
        // Regression: a panic while holding the timer lock used to make
        // every later `expect("timer lock")` panic in turn, silently
        // killing all future deadlines. Poison the lock deliberately
        // from a doomed thread, then check the timer still works —
        // no `should_panic` anywhere: the panic stays on the thread
        // that caused it.
        let (tx, rx) = mpsc::channel();
        let timer = Timer::spawn(tx);
        let state = Arc::clone(&timer.state);
        let doomed = std::thread::spawn(move || {
            let (lock, _) = &*state;
            let _guard = lock.lock().expect("first holder");
            panic!("poison the timer lock");
        });
        assert!(doomed.join().is_err(), "the doomed thread must panic");
        // Scheduling and firing both recover from the poisoned mutex.
        timer.schedule(Instant::now() + Duration::from_millis(5), 11u8);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).expect("fires"), 11);
        let clone = timer.clone();
        drop(timer);
        clone.schedule(Instant::now(), 12);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).expect("fires"), 12);
    }
}
