//! The deadline heap shared by the message [`crate::Timer`] and the
//! async executor's reactor ([`crate::exec`]).
//!
//! A [`DeadlineHeap`] orders entries by wall-clock deadline and breaks
//! ties by **insertion order** via a monotonically increasing sequence
//! number. Simultaneous deadlines therefore fire deterministically —
//! first scheduled, first fired — instead of in whatever order the
//! binary heap happens to surface them. Both wall-clock substrates
//! (the timer thread and the reactor thread) pop from this structure,
//! so the tie-break discipline is enforced in exactly one place.

use std::collections::BinaryHeap;
use std::time::Instant;

/// A scheduled entry: surface `payload` once `deadline` has passed.
struct Entry<T> {
    deadline: Instant,
    /// Insertion sequence; the deterministic tie-break for equal
    /// deadlines.
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse on both keys: BinaryHeap is a max-heap and we want the
        // earliest deadline first, oldest insertion first within a tie.
        other
            .deadline
            .cmp(&self.deadline)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Min-heap of `(deadline, payload)` entries with deterministic
/// insertion-order tie-breaking. See the [module docs](self).
pub(crate) struct DeadlineHeap<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> DeadlineHeap<T> {
    pub(crate) fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at `deadline`. Entries pushed with identical
    /// deadlines pop in push order.
    pub(crate) fn push(&mut self, deadline: Instant, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            deadline,
            seq,
            payload,
        });
    }

    /// Pops the earliest entry if its deadline is at or before `now`.
    pub(crate) fn pop_due(&mut self, now: Instant) -> Option<T> {
        if self.heap.peek().map(|e| e.deadline <= now).unwrap_or(false) {
            self.heap.pop().map(|e| e.payload)
        } else {
            None
        }
    }

    /// The earliest pending deadline, if any.
    pub(crate) fn next_deadline(&self) -> Option<Instant> {
        self.heap.peek().map(|e| e.deadline)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn equal_deadlines_pop_in_insertion_order() {
        let mut h = DeadlineHeap::new();
        let t = Instant::now();
        for i in 0..64u32 {
            h.push(t, i);
        }
        let popped: Vec<u32> = std::iter::from_fn(|| h.pop_due(t)).collect();
        assert_eq!(popped, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn zero_duration_entries_are_due_immediately() {
        let mut h = DeadlineHeap::new();
        let t = Instant::now();
        h.push(t + Duration::ZERO, "a");
        h.push(t, "b");
        assert_eq!(h.pop_due(t), Some("a"));
        assert_eq!(h.pop_due(t), Some("b"));
        assert_eq!(h.pop_due(t), None);
        assert!(h.is_empty());
    }

    #[test]
    fn interleaved_deadlines_order_by_time_then_sequence() {
        let mut h = DeadlineHeap::new();
        let t = Instant::now();
        let late = t + Duration::from_millis(10);
        h.push(late, 3u8);
        h.push(t, 1);
        h.push(late, 4);
        h.push(t, 2);
        let all: Vec<u8> = std::iter::from_fn(|| h.pop_due(late)).collect();
        assert_eq!(all, vec![1, 2, 3, 4]);
    }

    #[test]
    fn nothing_due_before_deadline() {
        let mut h = DeadlineHeap::new();
        let t = Instant::now();
        h.push(t + Duration::from_secs(60), ());
        assert_eq!(h.pop_due(t), None);
        assert_eq!(h.len(), 1);
        assert_eq!(h.next_deadline(), Some(t + Duration::from_secs(60)));
    }
}
