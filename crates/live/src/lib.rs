//! A live mini-FaaS host: the same policies, real threads, real clocks.
//!
//! The paper implements CIDRE inside OpenLambda and measures a running
//! system; the rest of this workspace reproduces that with a
//! deterministic discrete-event simulator ([`faas_sim`]). This crate is
//! the bridge between the two: it executes a trace against the **wall
//! clock** — arrivals injected by a real-time driver, provisioning and
//! execution latencies realised as actual timed delays, and an
//! orchestrator thread that reacts to events in whatever order the OS
//! delivers them.
//!
//! The same [`faas_sim::PolicyStack`] drives both hosts, so live runs
//! double as a fidelity check for the simulator: policy decisions here
//! race against genuine asynchrony instead of a deterministic virtual
//! clock, and the resulting class ratios should (and do — see the
//! integration tests) agree with simulation up to timing noise.
//!
//! Two modes are provided:
//!
//! * [`run_live`] — replay a [`faas_trace::Trace`] against the wall
//!   clock (execution latencies realised as timed delays).
//! * [`FaasHost`] — a programmable host: deploy real Rust handlers,
//!   invoke them from any thread, and receive outputs together with the
//!   warm / delayed-warm / cold outcome the policy produced.
//!
//! Time is compressed by [`LiveConfig::time_scale`] so a 30-minute trace
//! can replay in seconds; waits are reported in *simulated* time units
//! for direct comparison with [`faas_sim::SimReport`].
//!
//! Limitations relative to the simulator (documented, not hidden):
//! runs are **not deterministic** (that is the point), and timing
//! granularity is bounded by OS sleep precision, so heavily compressed
//! traces blur near-simultaneous events.
//!
//! # Examples
//!
//! ```
//! use faas_live::{run_live, LiveConfig};
//! use faas_sim::baseline_lru_stack;
//! use faas_trace::gen;
//!
//! let trace = gen::azure(3).functions(5).minutes(1).build();
//! // 1 simulated second = 1 real millisecond: the minute replays in 60 ms.
//! let config = LiveConfig::default().time_scale(0.001);
//! let report = run_live(&trace, &config, baseline_lru_stack());
//! assert_eq!(report.requests.len(), trace.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Emits a provenance event iff the recorder is enabled: the event
/// expression (and anything cloned to build it) is only evaluated when
/// recording, so `NoopRecorder` monomorphizations compile every
/// emission site to nothing. Same macro as the simulator's.
macro_rules! obs {
    ($rec:expr, $ev:expr) => {
        if $rec.enabled() {
            let ev = $ev;
            $rec.record(ev);
        }
    };
}

pub mod exec;
mod heap;
mod host;
mod runtime;
mod timer;

pub use host::{FaasHost, Handler, InvokeHandle, InvokeOutcome};
pub use runtime::{run_live, run_live_stats, run_live_traced, LiveConfig, LiveStats};
pub use timer::Timer;
