//! The reactor: one thread owning a [`DeadlineHeap`] of timer
//! registrations, waking task [`Waker`]s as deadlines pass.
//!
//! This is the executor's only time source. A [`Sleep`] future
//! registers `(deadline, slot)` on first poll; the reactor thread
//! sleeps until the earliest deadline (or a new registration cuts the
//! wait short), then fires every due slot **outside its own lock** so a
//! waker can freely take the executor's run-queue lock. Cancelled
//! sleeps (dropped `Sleep` futures) are lazily deleted: the slot stays
//! in the heap until its deadline pops, then fires nothing — the same
//! lazy-deletion discipline as `faas-core`'s eviction index.

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, Waker};
use std::time::Instant;

use crate::heap::DeadlineHeap;

/// One registered sleep: shared between the `Sleep` future (which
/// updates the waker and observes `fired`) and the reactor thread.
pub(crate) struct TimerSlot {
    cell: Mutex<TimerCell>,
}

struct TimerCell {
    fired: bool,
    cancelled: bool,
    waker: Option<Waker>,
}

impl TimerSlot {
    fn new(waker: Waker) -> Self {
        Self {
            cell: Mutex::new(TimerCell {
                fired: false,
                cancelled: false,
                waker: Some(waker),
            }),
        }
    }
}

pub(crate) struct ReactorShared {
    state: Mutex<ReactorState>,
    cvar: Condvar,
}

struct ReactorState {
    heap: DeadlineHeap<Arc<TimerSlot>>,
    /// Registrations currently in the heap (fired entries excluded,
    /// cancelled-but-unpopped entries included).
    live: usize,
    /// High-water mark of `live` — the "concurrent timers" statistic.
    peak: usize,
    /// Total timers actually fired (cancelled registrations that popped
    /// without waking anything are not counted).
    fires: u64,
    shutdown: bool,
}

impl ReactorShared {
    /// Registers a timer; returns `false` (nothing registered) if the
    /// reactor already shut down, so the caller resolves immediately
    /// instead of waiting on a thread that will never fire it.
    fn register(&self, deadline: Instant, slot: Arc<TimerSlot>) -> bool {
        let mut st = self.state.lock().expect("reactor state lock");
        if st.shutdown {
            return false;
        }
        st.heap.push(deadline, slot);
        st.live += 1;
        st.peak = st.peak.max(st.live);
        drop(st);
        self.cvar.notify_one();
        true
    }

    pub(crate) fn peak_timers(&self) -> usize {
        self.state.lock().expect("reactor state lock").peak
    }

    pub(crate) fn timer_fires(&self) -> u64 {
        self.state.lock().expect("reactor state lock").fires
    }
}

/// Handle owning the reactor thread; [`Reactor::stop`] joins it.
pub(crate) struct Reactor {
    shared: Arc<ReactorShared>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Reactor {
    pub(crate) fn start() -> Self {
        let shared = Arc::new(ReactorShared {
            state: Mutex::new(ReactorState {
                heap: DeadlineHeap::new(),
                live: 0,
                peak: 0,
                fires: 0,
                shutdown: false,
            }),
            cvar: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("faas-exec-reactor".into())
            .spawn(move || run_reactor(&thread_shared))
            .expect("spawn reactor thread");
        Self {
            shared,
            thread: Mutex::new(Some(thread)),
        }
    }

    pub(crate) fn shared(&self) -> &Arc<ReactorShared> {
        &self.shared
    }

    /// Stops and joins the reactor thread; pending timers never fire.
    /// Idempotent.
    pub(crate) fn stop(&self) {
        {
            let mut st = self.shared.state.lock().expect("reactor state lock");
            st.shutdown = true;
        }
        self.shared.cvar.notify_all();
        let joined = self.thread.lock().expect("reactor thread slot").take();
        if let Some(t) = joined {
            let _ = t.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.stop();
    }
}

fn run_reactor(shared: &ReactorShared) {
    let mut st = shared.state.lock().expect("reactor state lock");
    loop {
        if st.shutdown {
            return;
        }
        let now = Instant::now();
        let mut due: Vec<Arc<TimerSlot>> = Vec::new();
        while let Some(slot) = st.heap.pop_due(now) {
            st.live -= 1;
            due.push(slot);
        }
        if !due.is_empty() {
            // Fire outside the reactor lock: wakers take the executor's
            // run-queue lock, and lock nesting here would order the two
            // locks against every registration site.
            drop(st);
            let mut fired: u64 = 0;
            for slot in due {
                let waker = {
                    let mut cell = slot.cell.lock().expect("timer cell lock");
                    if cell.cancelled {
                        None
                    } else {
                        cell.fired = true;
                        fired += 1;
                        cell.waker.take()
                    }
                };
                if let Some(w) = waker {
                    w.wake();
                }
            }
            st = shared.state.lock().expect("reactor state lock");
            st.fires += fired;
            continue;
        }
        st = match st.heap.next_deadline() {
            Some(next) => {
                let wait = next.saturating_duration_since(Instant::now());
                shared
                    .cvar
                    .wait_timeout(st, wait)
                    .expect("reactor state lock")
                    .0
            }
            None => shared.cvar.wait(st).expect("reactor state lock"),
        };
    }
}

/// Future resolving once a wall-clock deadline passes. Created by
/// [`crate::exec::Handle::sleep_until`].
///
/// Dropping a `Sleep` before it fires cancels the registration (lazily:
/// the heap entry is discarded when its deadline pops). If the executor
/// shut down, polling resolves immediately rather than hanging forever.
pub struct Sleep {
    deadline: Instant,
    reactor: Weak<ReactorShared>,
    slot: Option<Arc<TimerSlot>>,
}

impl Sleep {
    pub(crate) fn new(deadline: Instant, reactor: Weak<ReactorShared>) -> Self {
        Self {
            deadline,
            reactor,
            slot: None,
        }
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match &this.slot {
            None => {
                if Instant::now() >= this.deadline {
                    return Poll::Ready(());
                }
                let Some(shared) = this.reactor.upgrade() else {
                    // Executor torn down: resolving beats hanging.
                    return Poll::Ready(());
                };
                let slot = Arc::new(TimerSlot::new(cx.waker().clone()));
                if !shared.register(this.deadline, Arc::clone(&slot)) {
                    // Reactor already shut down: resolve, don't hang.
                    return Poll::Ready(());
                }
                this.slot = Some(slot);
                Poll::Pending
            }
            Some(slot) => {
                let mut cell = slot.cell.lock().expect("timer cell lock");
                if cell.fired {
                    Poll::Ready(())
                } else {
                    cell.waker = Some(cx.waker().clone());
                    Poll::Pending
                }
            }
        }
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some(slot) = &self.slot {
            let mut cell = slot.cell.lock().expect("timer cell lock");
            if !cell.fired {
                cell.cancelled = true;
                cell.waker = None;
            }
        }
    }
}
