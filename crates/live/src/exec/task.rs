//! The task arena and worker pool: spawned futures live in slab slots,
//! wakers address them by `(slot, generation)`, and a fixed pool of OS
//! threads drains the run queue.
//!
//! Everything is safe Rust: wakers are built from [`std::task::Wake`]
//! (`Arc<WakeHandle>`), and futures are `Pin<Box<…>>`, so no raw-waker
//! vtables or pin gymnastics are needed. The state machine per task is
//! the classic four-state one:
//!
//! ```text
//! Idle ──wake──▶ Queued ──worker──▶ Running ──wake──▶ RunningNotified
//!  ▲                                   │ Pending            │ Pending
//!  └───────────────────────────────────┘ (requeue) ◀────────┘
//! ```
//!
//! A wake that lands while the task is `Running` marks it
//! `RunningNotified`; if the poll then returns `Pending`, the worker
//! re-queues instead of parking the task, so no wakeup is ever lost.
//! Slot generations make stale wakers (task finished, slot reused)
//! harmless. User code never runs while the arena lock is held: futures
//! are polled *and dropped* outside it, so a panicking poll or
//! destructor cannot poison the executor.

use std::collections::VecDeque;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, Wake, Waker};

use super::blocking::BlockingPool;
use super::reactor::Reactor;

pub(crate) type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// Where a task sits in its run/wake lifecycle.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RunState {
    /// Parked: not queued, not being polled; a wake queues it.
    Idle,
    /// In the run queue awaiting a worker.
    Queued,
    /// A worker is polling it right now.
    Running,
    /// Woken *while* being polled; re-queue on `Pending`.
    RunningNotified,
}

struct TaskCore {
    /// The future, boxed; `None` while a worker holds it for polling.
    future: Option<BoxFuture>,
    run: RunState,
    /// Set by [`super::JoinHandle::cancel`]; the worker drops the
    /// future at the next safe point.
    cancelled: bool,
    /// Cached waker identity for this slot occupancy.
    waker: Arc<WakeHandle>,
}

struct Slot {
    /// Bumped on every slot reuse; stale wakers compare and bail.
    gen: u64,
    core: Option<TaskCore>,
}

struct ExecState {
    slots: Vec<Slot>,
    free: Vec<usize>,
    run_queue: VecDeque<usize>,
    /// Live (spawned, not yet finished) async tasks.
    live: usize,
    /// High-water mark of `live`.
    peak: usize,
    shutdown: bool,
}

/// Shared executor core: arena + run queue + reactor + blocking pool.
pub(crate) struct Inner {
    state: Mutex<ExecState>,
    work: Condvar,
    pub(crate) reactor: Reactor,
    pub(crate) blocking: BlockingPool,
    /// First panic payload captured from a task or blocking job;
    /// re-raised by [`super::Executor::shutdown`].
    pub(crate) panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Inner {
    pub(crate) fn new(blocking_cap: usize) -> Self {
        Self {
            state: Mutex::new(ExecState {
                slots: Vec::new(),
                free: Vec::new(),
                run_queue: VecDeque::new(),
                live: 0,
                peak: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            reactor: Reactor::start(),
            blocking: BlockingPool::new(blocking_cap),
            panic: Mutex::new(None),
        }
    }

    pub(crate) fn store_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().expect("executor panic slot");
        slot.get_or_insert(payload);
    }

    pub(crate) fn peak_tasks(&self) -> usize {
        self.state.lock().expect("executor state lock").peak
    }

    pub(crate) fn live_tasks(&self) -> usize {
        self.state.lock().expect("executor state lock").live
    }

    /// Installs `future` into a fresh (or recycled) slot and queues it.
    /// Returns the slot key for cancellation, or `None` if the executor
    /// is already shut down (the future is dropped, which resolves its
    /// join handle with `None`).
    pub(crate) fn spawn_raw(self: &Arc<Self>, future: BoxFuture) -> Option<(usize, u64)> {
        let key = {
            let mut st = self.state.lock().expect("executor state lock");
            if st.shutdown {
                None
            } else {
                let id = match st.free.pop() {
                    Some(id) => id,
                    None => {
                        st.slots.push(Slot { gen: 0, core: None });
                        st.slots.len() - 1
                    }
                };
                let gen = st.slots[id].gen;
                let waker = Arc::new(WakeHandle {
                    exec: Arc::downgrade(self),
                    id,
                    gen,
                });
                st.slots[id].core = Some(TaskCore {
                    future: Some(future),
                    run: RunState::Queued,
                    cancelled: false,
                    waker,
                });
                st.run_queue.push_back(id);
                st.live += 1;
                st.peak = st.peak.max(st.live);
                Some((id, gen))
            }
        };
        // `future` was either moved into the slot or (on shutdown)
        // dropped here, outside the lock.
        if key.is_some() {
            self.work.notify_one();
        }
        key
    }

    /// Transitions a task toward the run queue in response to a wake.
    fn schedule(&self, id: usize, gen: u64) {
        let queued = {
            let mut st = self.state.lock().expect("executor state lock");
            if st.shutdown {
                return;
            }
            let Some(slot) = st.slots.get_mut(id) else {
                return;
            };
            if slot.gen != gen {
                return;
            }
            let Some(core) = slot.core.as_mut() else {
                return;
            };
            match core.run {
                RunState::Idle => {
                    core.run = RunState::Queued;
                    st.run_queue.push_back(id);
                    true
                }
                RunState::Running => {
                    core.run = RunState::RunningNotified;
                    false
                }
                RunState::Queued | RunState::RunningNotified => false,
            }
        };
        if queued {
            self.work.notify_one();
        }
    }

    /// Cancels the task at `(id, gen)`: drops its future at the next
    /// safe point, resolving its join handle with `None`.
    pub(crate) fn cancel(&self, id: usize, gen: u64) {
        let reaped = {
            let mut st = self.state.lock().expect("executor state lock");
            let Some(slot) = st.slots.get_mut(id) else {
                return;
            };
            if slot.gen != gen {
                return;
            }
            let Some(core) = slot.core.as_mut() else {
                return;
            };
            match core.run {
                RunState::Running | RunState::RunningNotified => {
                    // A worker holds the future; it drops it when the
                    // current poll returns.
                    core.cancelled = true;
                    None
                }
                RunState::Idle | RunState::Queued => {
                    let core = slot.core.take();
                    Self::free_slot(&mut st, id);
                    core
                }
            }
        };
        // Dropping the future (and through it the completion guard)
        // happens outside the lock: destructors may wake other tasks.
        drop(reaped);
    }

    fn free_slot(st: &mut ExecState, id: usize) {
        st.slots[id].gen = st.slots[id].gen.wrapping_add(1);
        st.free.push(id);
        st.live -= 1;
    }

    /// One worker thread's lifetime: drain the run queue until shutdown.
    pub(crate) fn worker_loop(self: &Arc<Self>) {
        /// What a worker claimed from one run-queue visit.
        enum Claim {
            Task(usize, u64, BoxFuture, Waker),
            /// A task cancelled before its first poll; drop it outside
            /// the lock.
            Reaped(Option<TaskCore>),
            Shutdown,
        }
        loop {
            // Claim a queued task, parking on the condvar when idle.
            let claim = {
                let mut st = self.state.lock().expect("executor state lock");
                loop {
                    if st.shutdown {
                        break Claim::Shutdown;
                    }
                    let Some(id) = st.run_queue.pop_front() else {
                        st = self.work.wait(st).expect("executor state lock");
                        continue;
                    };
                    let Some(slot) = st.slots.get_mut(id) else {
                        continue;
                    };
                    let gen = slot.gen;
                    let Some(core) = slot.core.as_mut() else {
                        continue; // stale queue entry: task already reaped
                    };
                    if core.run != RunState::Queued {
                        continue; // stale entry for a reused slot
                    }
                    if core.cancelled {
                        let core = slot.core.take();
                        Self::free_slot(&mut st, id);
                        break Claim::Reaped(core);
                    }
                    core.run = RunState::Running;
                    let future = core.future.take().expect("queued task owns its future");
                    let waker = Waker::from(Arc::clone(&core.waker));
                    break Claim::Task(id, gen, future, waker);
                }
            };
            let (id, gen, mut fut, waker) = match claim {
                Claim::Shutdown => return,
                Claim::Reaped(core) => {
                    drop(core);
                    continue;
                }
                Claim::Task(id, gen, fut, waker) => (id, gen, fut, waker),
            };

            let mut cx = Context::from_waker(&waker);
            let polled = catch_unwind(AssertUnwindSafe(|| fut.as_mut().poll(&mut cx)));
            match polled {
                Ok(Poll::Ready(())) => {
                    self.reap(id, gen);
                    drop(fut);
                }
                Ok(Poll::Pending) => {
                    let mut fut_back = Some(fut);
                    let reaped = {
                        let mut st = self.state.lock().expect("executor state lock");
                        let slot = &mut st.slots[id];
                        if slot.gen != gen || slot.core.is_none() {
                            None // reaped during shutdown while we polled
                        } else {
                            let core = slot.core.as_mut().expect("checked above");
                            if core.cancelled {
                                let core = slot.core.take();
                                Self::free_slot(&mut st, id);
                                core
                            } else {
                                core.future = fut_back.take();
                                match core.run {
                                    RunState::RunningNotified => {
                                        core.run = RunState::Queued;
                                        st.run_queue.push_back(id);
                                        drop(st);
                                        self.work.notify_one();
                                    }
                                    _ => core.run = RunState::Idle,
                                }
                                None
                            }
                        }
                    };
                    drop(reaped);
                    drop(fut_back); // cancelled/reaped: future dies here
                }
                Err(payload) => {
                    // The task panicked: record the first payload, reap
                    // the slot, and drop what's left of the future. The
                    // completion guard inside resolves the join handle
                    // with `None`. A destructor of a half-unwound future
                    // may panic again; contain that too.
                    self.store_panic(payload);
                    self.reap(id, gen);
                    let _ = catch_unwind(AssertUnwindSafe(move || drop(fut)));
                }
            }
        }
    }

    /// Frees `(id, gen)` after its future finished or died.
    fn reap(&self, id: usize, gen: u64) {
        let reaped = {
            let mut st = self.state.lock().expect("executor state lock");
            let slot = &mut st.slots[id];
            if slot.gen != gen || slot.core.is_none() {
                None
            } else {
                let core = slot.core.take();
                Self::free_slot(&mut st, id);
                core
            }
        };
        drop(reaped);
    }

    /// Flips to shutdown and reaps every remaining task. Workers exit
    /// at their next queue visit; remaining futures are dropped here
    /// (outside the lock — their destructors may wake things).
    pub(crate) fn begin_shutdown(&self) {
        let mut dead: Vec<TaskCore> = Vec::new();
        {
            let mut st = self.state.lock().expect("executor state lock");
            st.shutdown = true;
            st.run_queue.clear();
            for slot in &mut st.slots {
                // Also reaps tasks a worker is polling right now
                // (their future is checked back in against the bumped
                // generation and dropped by the worker).
                if let Some(core) = slot.core.take() {
                    slot.gen = slot.gen.wrapping_add(1);
                    dead.push(core);
                }
            }
            st.live -= dead.len();
            st.free.clear();
        }
        self.work.notify_all();
        drop(dead);
    }
}

/// The waker target: addresses a task by `(slot, generation)` through a
/// weak executor reference, so wakers outliving the executor (or the
/// task) are inert.
pub(crate) struct WakeHandle {
    exec: Weak<Inner>,
    id: usize,
    gen: u64,
}

impl Wake for WakeHandle {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        if let Some(inner) = self.exec.upgrade() {
            inner.schedule(self.id, self.gen);
        }
    }
}

/// Result slot shared between a running task and its [`JoinHandle`].
pub(crate) struct JoinShared<T> {
    state: Mutex<JoinState<T>>,
    cvar: Condvar,
}

struct JoinState<T> {
    /// `Some(Some(v))` = finished, `Some(None)` = cancelled or panicked.
    result: Option<Option<T>>,
    waker: Option<Waker>,
    done: bool,
}

impl<T> Default for JoinShared<T> {
    fn default() -> Self {
        Self {
            state: Mutex::new(JoinState {
                result: None,
                waker: None,
                done: false,
            }),
            cvar: Condvar::new(),
        }
    }
}

impl<T> JoinShared<T> {
    /// Stores the outcome (idempotent: first write wins) and wakes both
    /// async and blocking waiters.
    pub(crate) fn complete(&self, value: Option<T>) {
        let waker = {
            let mut st = self.state.lock().expect("join state lock");
            if st.done {
                return;
            }
            st.result = Some(value);
            st.done = true;
            self.cvar.notify_all();
            st.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }

    fn poll_take(&self, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut st = self.state.lock().expect("join state lock");
        if st.done {
            Poll::Ready(st.result.take().flatten())
        } else {
            st.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }

    fn block_take(&self) -> Option<T> {
        let mut st = self.state.lock().expect("join state lock");
        while !st.done {
            st = self.cvar.wait(st).expect("join state lock");
        }
        st.result.take().flatten()
    }
}

/// Completes the join slot with `None` if the task's future is dropped
/// (cancelled, executor shutdown, or panic unwind) before finishing.
pub(crate) struct CompletionGuard<T> {
    pub(crate) shared: Arc<JoinShared<T>>,
}

impl<T> CompletionGuard<T> {
    pub(crate) fn finish(&self, value: T) {
        self.shared.complete(Some(value));
    }
}

impl<T> Drop for CompletionGuard<T> {
    fn drop(&mut self) {
        self.shared.complete(None);
    }
}

/// Handle on a spawned task. Await it (it is a `Future`) or block on
/// [`JoinHandle::join`]; both yield `Some(output)` on completion and
/// `None` if the task was cancelled, panicked, or the executor shut
/// down first. Dropping the handle detaches the task (it keeps
/// running).
pub struct JoinHandle<T> {
    pub(crate) shared: Arc<JoinShared<T>>,
    pub(crate) exec: Weak<Inner>,
    /// `(slot, generation)` for cancellation; `None` for blocking jobs
    /// (they cannot be cancelled once queued).
    pub(crate) key: Option<(usize, u64)>,
}

impl<T> JoinHandle<T> {
    /// Blocks the current thread until the task resolves.
    pub fn join(self) -> Option<T> {
        self.shared.block_take()
    }

    /// Cancels the task: if it has not finished, its future is dropped
    /// at the next safe point (immediately if parked or queued, after
    /// the in-progress poll if running) and the handle resolves `None`.
    /// No-op for blocking jobs and finished tasks.
    pub fn cancel(&self) {
        if let (Some((id, gen)), Some(inner)) = (self.key, self.exec.upgrade()) {
            inner.cancel(id, gen);
        }
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.shared.poll_take(cx)
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").finish_non_exhaustive()
    }
}

/// Thread parker used by `block_on`: a condvar-backed [`Wake`].
pub(crate) struct Parker {
    state: Mutex<bool>,
    cvar: Condvar,
}

impl Default for Parker {
    fn default() -> Self {
        Self {
            state: Mutex::new(false),
            cvar: Condvar::new(),
        }
    }
}

impl Parker {
    pub(crate) fn park(&self) {
        let mut woken = self.state.lock().expect("parker lock");
        while !*woken {
            woken = self.cvar.wait(woken).expect("parker lock");
        }
        *woken = false;
    }
}

impl Wake for Parker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        let mut woken = self.state.lock().expect("parker lock");
        *woken = true;
        self.cvar.notify_one();
    }
}
