//! An unbounded MPSC channel with a synchronous sender and an async
//! receiver — the executor-native replacement for `std::sync::mpsc` in
//! the orchestrator event loops.
//!
//! Senders never block (the queue is unbounded) and may live on any
//! thread — OS threads, blocking-pool jobs, or other tasks. The single
//! consumer awaits [`Receiver::recv`]; when every sender is gone and
//! the queue is drained, `recv` resolves `None`.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

struct ChanState<T> {
    queue: VecDeque<T>,
    /// The consumer's parked waker (single consumer by construction).
    waker: Option<Waker>,
    senders: usize,
    rx_alive: bool,
}

struct Shared<T> {
    state: Mutex<ChanState<T>>,
}

/// Creates an unbounded channel. See the [module docs](self).
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(ChanState {
            queue: VecDeque::new(),
            waker: None,
            senders: 1,
            rx_alive: true,
        }),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Sending half; clone freely across threads and tasks.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueues `value`, waking the consumer. Returns the value back if
    /// the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), T> {
        let waker = {
            let mut st = self.shared.state.lock().expect("channel lock");
            if !st.rx_alive {
                return Err(value);
            }
            st.queue.push_back(value);
            st.waker.take()
        };
        // Wake outside the lock: the waker grabs the executor's
        // run-queue lock.
        if let Some(w) = waker {
            w.wake();
        }
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel lock").senders += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let waker = {
            let mut st = self.shared.state.lock().expect("channel lock");
            st.senders -= 1;
            if st.senders == 0 {
                // Last sender: wake the consumer so `recv` can resolve
                // `None` once the queue drains.
                st.waker.take()
            } else {
                None
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

/// Receiving half; a single consumer awaiting [`Receiver::recv`].
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Resolves to the next value, or `None` once every sender dropped
    /// and the queue is empty.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { rx: self }
    }

    /// Non-blocking pop, for draining outside the executor.
    pub fn try_recv(&mut self) -> Option<T> {
        self.shared
            .state
            .lock()
            .expect("channel lock")
            .queue
            .pop_front()
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let drained: VecDeque<T> = {
            let mut st = self.shared.state.lock().expect("channel lock");
            st.rx_alive = false;
            st.waker = None;
            std::mem::take(&mut st.queue)
        };
        // Queued values drop outside the lock (their destructors may
        // wake tasks or take other locks).
        drop(drained);
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    rx: &'a mut Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.rx.shared.state.lock().expect("channel lock");
        if let Some(v) = st.queue.pop_front() {
            return Poll::Ready(Some(v));
        }
        if st.senders == 0 {
            return Poll::Ready(None);
        }
        st.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}
