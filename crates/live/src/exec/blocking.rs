//! A cached thread pool for blocking work (real handler execution).
//!
//! Async worker threads must never block on user code: a handful of
//! them multiplex tens of thousands of suspended tasks, and one
//! long-running handler would stall them all. Blocking jobs therefore
//! go to this pool: threads are created on demand up to a cap, parked
//! idle for a grace period so bursts reuse them, and retired when the
//! burst passes. This replaces the old thread-*per-request* model with
//! thread-per-*concurrently-running*-request.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// How long an idle blocking thread lingers before retiring.
const IDLE_GRACE: Duration = Duration::from_millis(200);

struct BlockingState {
    queue: VecDeque<Job>,
    idle: usize,
    total: usize,
    peak: usize,
    shutdown: bool,
    /// First panic payload from a blocking job.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Shared {
    state: Mutex<BlockingState>,
    /// Signals queued work (and shutdown) to pool threads.
    work: Condvar,
    /// Signals thread retirement to a shutdown waiter.
    drained: Condvar,
    cap: usize,
}

pub(crate) struct BlockingPool {
    shared: Arc<Shared>,
}

impl BlockingPool {
    pub(crate) fn new(cap: usize) -> Self {
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(BlockingState {
                    queue: VecDeque::new(),
                    idle: 0,
                    total: 0,
                    peak: 0,
                    shutdown: false,
                    panic: None,
                }),
                work: Condvar::new(),
                drained: Condvar::new(),
                cap: cap.max(1),
            }),
        }
    }

    /// Queues `job`, growing the pool if no thread is idle and the cap
    /// allows. Returns `false` if the pool already shut down (the job
    /// is dropped).
    pub(crate) fn submit(&self, job: Job) -> bool {
        let spawn_worker = {
            let mut st = self.shared.state.lock().expect("blocking pool lock");
            if st.shutdown {
                return false;
            }
            st.queue.push_back(job);
            if st.idle == 0 && st.total < self.shared.cap {
                st.total += 1;
                st.peak = st.peak.max(st.total);
                true
            } else {
                false
            }
        };
        if spawn_worker {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name("faas-exec-blocking".into())
                .spawn(move || blocking_worker(&shared))
                .expect("spawn blocking worker");
        } else {
            self.shared.work.notify_one();
        }
        true
    }

    pub(crate) fn peak_threads(&self) -> usize {
        self.shared.state.lock().expect("blocking pool lock").peak
    }

    /// Stops accepting work, waits for queued jobs to finish and every
    /// thread to retire, and surfaces the first captured job panic.
    pub(crate) fn shutdown(&self) -> Option<Box<dyn std::any::Any + Send>> {
        let mut st = self.shared.state.lock().expect("blocking pool lock");
        st.shutdown = true;
        self.shared.work.notify_all();
        while st.total > 0 {
            st = self.shared.drained.wait(st).expect("blocking pool lock");
        }
        st.panic.take()
    }
}

fn blocking_worker(shared: &Shared) {
    let mut st = shared.state.lock().expect("blocking pool lock");
    loop {
        if let Some(job) = st.queue.pop_front() {
            drop(st);
            // User code runs outside the lock; a panicking job is
            // captured so the pool (and its lock) survive.
            if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                let mut locked = shared.state.lock().expect("blocking pool lock");
                locked.panic.get_or_insert(payload);
                st = locked;
            } else {
                st = shared.state.lock().expect("blocking pool lock");
            }
            continue;
        }
        if st.shutdown {
            st.total -= 1;
            shared.drained.notify_all();
            return;
        }
        st.idle += 1;
        let (guard, timeout) = shared
            .work
            .wait_timeout(st, IDLE_GRACE)
            .expect("blocking pool lock");
        st = guard;
        st.idle -= 1;
        if timeout.timed_out() && st.queue.is_empty() && !st.shutdown {
            // Burst passed: retire quietly.
            st.total -= 1;
            shared.drained.notify_all();
            return;
        }
    }
}
