//! A minimal hermetic async executor: reactor + wakers + task arena +
//! fixed worker pool, in ~1k lines of safe std-only Rust.
//!
//! The live stack used to spend one OS thread per in-flight request,
//! which capped realistic load-serving experiments at a few hundred
//! concurrent requests. This executor multiplexes tens of thousands of
//! suspended requests onto a handful of threads:
//!
//! * [`task`](self) — a slab arena of spawned futures addressed by
//!   `(slot, generation)`; wakers are `Arc<impl Wake>` handles into it,
//!   and a fixed pool of worker threads drains the run queue.
//! * [`reactor`](self) — one thread over a deadline heap (shared with
//!   [`crate::timer`]'s [`crate::heap::DeadlineHeap`]); [`Sleep`]
//!   futures register `(deadline, waker-slot)` entries and the reactor
//!   fires them as deadlines pass.
//! * [`blocking`](self) — a cached thread pool for genuinely blocking
//!   work (real handler bodies), sized by *concurrently running*
//!   handlers instead of in-flight requests.
//! * [`channel`] — an unbounded MPSC with sync senders and an async
//!   receiver, for orchestrator event loops.
//!
//! # Lock discipline
//!
//! Three rules keep the pieces deadlock- and poison-free, and every
//! module here follows them:
//!
//! 1. **Never wake while holding a lock.** Wakers take the arena lock;
//!    firing one under the reactor/channel/join lock would order those
//!    locks against each other at every call site.
//! 2. **User code never runs under an executor lock.** Futures are
//!    polled *and dropped* outside the arena lock, blocking jobs run
//!    outside the pool lock, and timer payloads are sent outside the
//!    heap lock — so a user panic cannot poison executor state.
//! 3. **Stale references are inert, not errors.** Slot generations make
//!    late wakes of finished tasks no-ops; cancelled sleeps are lazily
//!    deleted when their heap entry pops.

mod blocking;
pub mod channel;
mod reactor;
mod task;

use std::future::Future;
use std::panic::resume_unwind;
use std::pin::pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

use task::{CompletionGuard, Inner, JoinShared, Parker};

pub use reactor::Sleep;
pub use task::JoinHandle;

/// Default cap on blocking-pool threads. Blocking jobs model handlers
/// *running* on provisioned container threads, so cluster capacity —
/// not in-flight request count — bounds real concurrency; 1024 covers
/// every configuration the experiments use while still catching a
/// runaway thread-per-request regression.
const DEFAULT_BLOCKING_CAP: usize = 1024;

/// The executor: owns the worker threads, the reactor, and the blocking
/// pool. Dropping it (or calling [`Executor::shutdown`]) cancels every
/// remaining task and joins all threads.
pub struct Executor {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    /// Starts an executor with `workers` poll threads (at least one)
    /// and the default blocking-pool cap.
    pub fn new(workers: usize) -> Self {
        Self::with_blocking_cap(workers, DEFAULT_BLOCKING_CAP)
    }

    /// Starts an executor with `workers` poll threads and an explicit
    /// cap on concurrently running blocking jobs.
    pub fn with_blocking_cap(workers: usize, blocking_cap: usize) -> Self {
        let inner = Arc::new(Inner::new(blocking_cap));
        let workers = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("faas-exec-worker-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawn executor worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// Returns a cloneable [`Handle`] for spawning from other threads.
    pub fn handle(&self) -> Handle {
        Handle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Spawns `future` onto the worker pool. See [`Handle::spawn`].
    pub fn spawn<F, T>(&self, future: F) -> JoinHandle<T>
    where
        F: Future<Output = T> + Send + 'static,
        T: Send + 'static,
    {
        self.handle().spawn(future)
    }

    /// Runs `f` on the blocking pool. See [`Handle::spawn_blocking`].
    pub fn spawn_blocking<F, T>(&self, f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        self.handle().spawn_blocking(f)
    }

    /// Returns a future resolving at `deadline`. See
    /// [`Handle::sleep_until`].
    pub fn sleep_until(&self, deadline: Instant) -> Sleep {
        self.handle().sleep_until(deadline)
    }

    /// Drives `future` to completion on the *calling* thread, parking
    /// between polls. Worker threads run spawned tasks concurrently.
    ///
    /// If a spawned task panicked, the first captured payload is
    /// re-raised here on a best-effort basis (whenever this thread is
    /// next woken); panics are always re-raised by
    /// [`Executor::shutdown`] at the latest.
    pub fn block_on<F: Future>(&self, future: F) -> F::Output {
        let parker = Arc::new(Parker::default());
        let waker = Waker::from(Arc::clone(&parker));
        let mut cx = Context::from_waker(&waker);
        let mut future = pin!(future);
        loop {
            if let Poll::Ready(v) = future.as_mut().poll(&mut cx) {
                return v;
            }
            if let Some(payload) = self.inner.panic.lock().expect("executor panic slot").take() {
                resume_unwind(payload);
            }
            parker.park();
        }
    }

    /// Point-in-time executor statistics.
    pub fn stats(&self) -> ExecStats {
        ExecStats {
            workers: self.workers.len(),
            live_tasks: self.inner.live_tasks(),
            peak_tasks: self.inner.peak_tasks(),
            peak_timers: self.inner.reactor.shared().peak_timers(),
            timer_fires: self.inner.reactor.shared().timer_fires(),
            peak_blocking_threads: self.inner.blocking.peak_threads(),
        }
    }

    /// Tears the executor down: cancels every remaining task (their
    /// join handles resolve `None`), joins all worker/reactor/blocking
    /// threads, and re-raises the first panic any task or blocking job
    /// hit. Dropping the executor does the same teardown but swallows
    /// the panic (destructors must not throw).
    pub fn shutdown(mut self) {
        self.shutdown_inner();
        let payload = self.inner.panic.lock().expect("executor panic slot").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    fn shutdown_inner(&mut self) {
        self.inner.begin_shutdown();
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        if let Some(payload) = self.inner.blocking.shutdown() {
            self.inner.store_panic(payload);
        }
        self.inner.reactor.stop();
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

/// Cloneable spawner detached from the [`Executor`]'s lifetime: handles
/// may outlive the executor, in which case spawns return handles that
/// resolve `None` and sleeps resolve immediately.
#[derive(Clone)]
pub struct Handle {
    inner: Arc<Inner>,
}

impl Handle {
    /// Spawns `future` onto the worker pool, returning a [`JoinHandle`]
    /// that yields `Some(output)` — or `None` if the task is cancelled,
    /// panics, or the executor shuts down first.
    pub fn spawn<F, T>(&self, future: F) -> JoinHandle<T>
    where
        F: Future<Output = T> + Send + 'static,
        T: Send + 'static,
    {
        let shared = Arc::new(JoinShared::default());
        let guard = CompletionGuard {
            shared: Arc::clone(&shared),
        };
        let key = self.inner.spawn_raw(Box::pin(async move {
            guard.finish(future.await);
        }));
        JoinHandle {
            shared,
            exec: Arc::downgrade(&self.inner),
            key,
        }
    }

    /// Runs `f` on the cached blocking pool (for real handler bodies
    /// and anything else that blocks an OS thread). The handle resolves
    /// `None` if the job panics or the pool already shut down.
    pub fn spawn_blocking<F, T>(&self, f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let shared = Arc::new(JoinShared::default());
        let guard = CompletionGuard {
            shared: Arc::clone(&shared),
        };
        // If the pool rejects the job (shutdown), the dropped closure
        // drops `guard`, resolving the handle with `None`.
        let _ = self.inner.blocking.submit(Box::new(move || {
            guard.finish(f());
        }));
        JoinHandle {
            shared,
            exec: std::sync::Weak::new(),
            key: None,
        }
    }

    /// Returns a future resolving once `deadline` passes, driven by the
    /// reactor thread. Dropping it cancels the registration.
    pub fn sleep_until(&self, deadline: Instant) -> Sleep {
        Sleep::new(deadline, Arc::downgrade(self.inner.reactor.shared()))
    }

    /// Convenience for [`Handle::sleep_until`] with a relative duration.
    pub fn sleep(&self, duration: Duration) -> Sleep {
        self.sleep_until(Instant::now() + duration)
    }
}

impl std::fmt::Debug for Handle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Handle").finish_non_exhaustive()
    }
}

/// Spawns a detached event task that sleeps until `deadline`, then
/// sends `value` on `tx`. The building block of the live hosts' event
/// scheduling: every timed event is one suspended task. Send errors are
/// ignored — the receiver leaving means nobody wants the event.
pub fn send_at<T: Send + 'static>(
    handle: &Handle,
    tx: &channel::Sender<T>,
    deadline: Instant,
    value: T,
) {
    let tx = tx.clone();
    let sleep = handle.sleep_until(deadline);
    drop(handle.spawn(async move {
        sleep.await;
        let _ = tx.send(value);
    }));
}

/// Executor statistics, read via [`Executor::stats`].
#[derive(Debug, Clone, Copy)]
pub struct ExecStats {
    /// Poll worker threads in the pool.
    pub workers: usize,
    /// Tasks currently alive (spawned, not yet finished or reaped).
    pub live_tasks: usize,
    /// High-water mark of concurrently live tasks.
    pub peak_tasks: usize,
    /// High-water mark of concurrently registered timers.
    pub peak_timers: usize,
    /// Total timers the reactor fired over the executor's lifetime.
    pub timer_fires: u64,
    /// High-water mark of blocking-pool threads.
    pub peak_blocking_threads: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Join handles resolve inside the final poll, a moment before the
    /// worker reaps the slot — so "everything finished" tests wait for
    /// the arena to drain instead of asserting `live_tasks == 0` raw.
    fn wait_drained(exec: &Executor) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while exec.stats().live_tasks != 0 {
            assert!(Instant::now() < deadline, "task arena never drained");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn spawn_and_join() {
        let exec = Executor::new(2);
        let h = exec.spawn(async { 21 * 2 });
        assert_eq!(h.join(), Some(42));
        exec.shutdown();
    }

    #[test]
    fn block_on_awaits_spawned_tasks() {
        let exec = Executor::new(2);
        let handle = exec.handle();
        let total = exec.block_on(async move {
            let a = handle.spawn(async { 1u32 });
            let b = handle.spawn(async { 2u32 });
            a.await.expect("a finishes") + b.await.expect("b finishes")
        });
        assert_eq!(total, 3);
        exec.shutdown();
    }

    #[test]
    fn sleep_until_fires_and_zero_duration_is_immediate() {
        let exec = Executor::new(1);
        let start = Instant::now();
        exec.block_on(exec.sleep_until(start + Duration::from_millis(25)));
        assert!(start.elapsed() >= Duration::from_millis(25));
        // A past deadline resolves on the first poll without touching
        // the reactor.
        exec.block_on(exec.sleep_until(Instant::now() - Duration::from_millis(1)));
        exec.shutdown();
    }

    /// A future that stashes its waker somewhere the test can reach,
    /// then completes.
    struct StashWaker(Arc<Mutex<Option<Waker>>>);

    impl Future for StashWaker {
        type Output = ();

        fn poll(self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            *self.0.lock().expect("stash lock") = Some(cx.waker().clone());
            Poll::Ready(())
        }
    }

    #[test]
    fn wakes_after_task_completion_are_inert() {
        // Regression guard for the generation check: a waker that
        // outlives its task (and the slot's reuse) must be a no-op, not
        // a spurious poll of whichever task recycled the slot.
        let exec = Executor::new(2);
        let stash = Arc::new(Mutex::new(None));
        exec.spawn(StashWaker(Arc::clone(&stash))).join();
        let stale = stash
            .lock()
            .expect("stash lock")
            .take()
            .expect("waker stashed");
        stale.wake_by_ref();
        // Reuse the freed slot, then fire the stale waker again while
        // the new occupant is alive.
        let ran = Arc::new(AtomicBool::new(false));
        let ran2 = Arc::clone(&ran);
        let h = exec.spawn(async move {
            ran2.store(true, Ordering::SeqCst);
            7u8
        });
        stale.wake();
        assert_eq!(h.join(), Some(7));
        assert!(ran.load(Ordering::SeqCst));
        wait_drained(&exec);
        exec.shutdown();
    }

    #[test]
    fn cancel_mid_await_resolves_none_and_frees_the_slot() {
        let exec = Executor::new(2);
        let finished = Arc::new(AtomicBool::new(false));
        let finished2 = Arc::clone(&finished);
        let handle = exec.handle();
        let h = exec.spawn(async move {
            handle.sleep(Duration::from_secs(60)).await;
            finished2.store(true, Ordering::SeqCst);
        });
        // Let the task reach its await point (parked on the reactor).
        std::thread::sleep(Duration::from_millis(30));
        let start = Instant::now();
        h.cancel();
        assert_eq!(h.join(), None);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "cancel must not wait out the sleep"
        );
        assert!(!finished.load(Ordering::SeqCst));
        wait_drained(&exec);
        exec.shutdown();
    }

    #[test]
    fn cancel_before_first_poll_resolves_none() {
        let exec = Executor::new(1);
        // Keep the single worker busy so the victim stays queued.
        let plug = exec.spawn_blocking(|| std::thread::sleep(Duration::from_millis(50)));
        let h = exec.spawn(async { 1u8 });
        h.cancel();
        // Whichever way the race goes the handle must resolve, and a
        // cancelled-before-poll task resolves `None`.
        let _ = h.join();
        plug.join();
        exec.shutdown();
    }

    #[test]
    fn ten_thousand_concurrent_timers() {
        const TASKS: usize = 10_000;
        let exec = Executor::new(4);
        let fired = Arc::new(AtomicUsize::new(0));
        // All deadlines sit far enough out that every task registers
        // with the reactor before the first one fires.
        let base = Instant::now() + Duration::from_millis(300);
        let handles: Vec<_> = (0..TASKS)
            .map(|i| {
                let handle = exec.handle();
                let fired = Arc::clone(&fired);
                exec.spawn(async move {
                    handle
                        .sleep_until(base + Duration::from_millis((i % 10) as u64))
                        .await;
                    fired.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        exec.block_on(async {
            for h in handles {
                h.await.expect("task finishes");
            }
        });
        assert_eq!(fired.load(Ordering::SeqCst), TASKS);
        let stats = exec.stats();
        assert!(
            stats.peak_tasks >= TASKS,
            "peak_tasks {} < {TASKS}",
            stats.peak_tasks
        );
        assert!(
            stats.peak_timers >= TASKS / 2,
            "peak_timers {} — timers did not overlap",
            stats.peak_timers
        );
        assert!(
            stats.timer_fires >= TASKS as u64,
            "every sleep fires once: timer_fires {}",
            stats.timer_fires
        );
        wait_drained(&exec);
        exec.shutdown();
    }

    #[test]
    fn task_panic_resolves_join_none_and_shutdown_rethrows() {
        let exec = Executor::new(2);
        let h = exec.spawn(async {
            panic!("task exploded");
        });
        assert_eq!(h.join(), None);
        // Other tasks keep running after a panic.
        assert_eq!(exec.spawn(async { 5u8 }).join(), Some(5));
        let err = catch_unwind(AssertUnwindSafe(move || exec.shutdown()))
            .expect_err("shutdown re-raises the task panic");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "task exploded");
    }

    #[test]
    fn spawn_blocking_runs_and_propagates_panics() {
        let exec = Executor::new(1);
        assert_eq!(exec.spawn_blocking(|| 6 * 7).join(), Some(42));
        let h = exec.spawn_blocking(|| -> u8 { panic!("job exploded") });
        assert_eq!(h.join(), None);
        let err = catch_unwind(AssertUnwindSafe(move || exec.shutdown()))
            .expect_err("shutdown re-raises the blocking panic");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "job exploded");
    }

    #[test]
    fn channel_sync_send_async_recv() {
        let exec = Executor::new(2);
        let (tx, mut rx) = channel::channel::<u32>();
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).expect("receiver alive");
            }
        });
        let got = exec.block_on(async move {
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        producer.join().expect("producer");
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        exec.shutdown();
    }

    #[test]
    fn shutdown_cancels_parked_tasks() {
        let exec = Executor::new(2);
        let handle = exec.handle();
        let h = exec.spawn(async move {
            handle.sleep(Duration::from_secs(3600)).await;
            1u8
        });
        std::thread::sleep(Duration::from_millis(20));
        exec.shutdown();
        assert_eq!(h.join(), None);
    }

    #[test]
    fn spawn_after_shutdown_resolves_none() {
        let exec = Executor::new(1);
        let handle = exec.handle();
        exec.shutdown();
        assert_eq!(handle.spawn(async { 9u8 }).join(), None);
        assert_eq!(handle.spawn_blocking(|| 9u8).join(), None);
        // Sleeps on a dead executor resolve instead of hanging.
        let mut sleep = pin!(handle.sleep(Duration::from_secs(3600)));
        let parker = Arc::new(Parker::default());
        let waker = Waker::from(Arc::clone(&parker));
        let mut cx = Context::from_waker(&waker);
        assert!(sleep.as_mut().poll(&mut cx).is_ready());
    }
}
