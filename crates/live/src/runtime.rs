//! The live orchestrator: real-time replay of a trace under a policy
//! stack, mirroring the simulator's mechanics on the wall clock.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use faas_core::{EvictionIndex, RoundHeap};
use faas_metrics::TimeSeries;
use faas_obs::{EvictReason, NoopRecorder, ObsEvent, Recorder, RingRecorder, TraceLog};
use faas_sim::{
    ClusterState, ContainerId, ContainerInfo, FaultState, PolicyCtx, PolicyStack, PriorityDeps,
    RequestId, RequestRecord, ScaleDecision, ScanMode, SimConfig, SimReport, StartClass, WorkerId,
};
use faas_trace::{FunctionId, TimeDelta, TimePoint, Trace};

use crate::exec;

/// Configuration of a live run: the cluster shape (reusing
/// [`SimConfig`]) plus the real-seconds-per-simulated-second scale.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveConfig {
    /// Cluster shape, thread capacity, and tick interval.
    pub sim: SimConfig,
    /// Real seconds per simulated second. `0.001` replays a simulated
    /// minute in 60 real milliseconds.
    pub time_scale: f64,
    /// Poll threads for the async executor driving timed events. Every
    /// in-flight request is a suspended task, so a handful of threads
    /// serves tens of thousands of concurrent requests.
    pub exec_threads: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            sim: SimConfig::default(),
            time_scale: 0.001,
            exec_threads: 4,
        }
    }
}

impl LiveConfig {
    /// Sets the cluster configuration.
    pub fn sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Sets the time compression factor.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    pub fn time_scale(mut self, scale: f64) -> Self {
        self.time_scale = scale;
        self.validate();
        self
    }

    /// Sets the executor poll-thread count (at least 1).
    pub fn exec_threads(mut self, threads: usize) -> Self {
        self.exec_threads = threads.max(1);
        self
    }

    /// Rejects configurations no live run can execute. Called at every
    /// entry point ([`run_live`], [`run_live_stats`],
    /// [`crate::FaasHost::start`]) as well as in the builder: the fields
    /// are `pub`, so literal construction can bypass builder checks —
    /// a non-finite or non-positive `time_scale` would otherwise turn
    /// into `Duration::from_secs_f64` panics (or a zero-length sleep
    /// for *every* deadline) deep inside the event loop.
    ///
    /// # Panics
    ///
    /// Panics if `time_scale` is NaN, infinite, zero, or negative.
    pub(crate) fn validate(&self) {
        assert!(
            self.time_scale.is_finite() && self.time_scale > 0.0,
            "time scale must be positive and finite, got {}",
            self.time_scale
        );
    }
}

/// Concurrency statistics from a live run, returned by
/// [`run_live_stats`] alongside the report.
#[derive(Debug, Clone, Copy)]
pub struct LiveStats {
    /// High-water mark of arrived-but-unserved requests.
    pub peak_inflight: u64,
    /// High-water mark of live executor tasks (each scheduled event —
    /// arrival, completion, tick, retry — is one task).
    pub peak_tasks: usize,
    /// High-water mark of concurrently registered reactor timers.
    pub peak_timers: usize,
    /// Total reactor timers fired over the run (every scheduled event —
    /// arrival, completion, tick, retry — fires exactly one).
    pub timer_fires: u64,
    /// High-water mark of blocking-pool threads.
    pub peak_blocking_threads: usize,
    /// Executor poll threads used.
    pub workers: usize,
    /// Real elapsed time of the replay.
    pub wall: Duration,
}

/// Internal events delivered to the orchestrator in real time.
enum Msg {
    Arrival(RequestId),
    ProvisionDone(ContainerId),
    ExecDone(ContainerId, RequestId),
    Tick,
    /// Fault injection: a provision failed after its full latency.
    ProvisionFailed(ContainerId),
    /// Fault injection: a failed provision's backoff expired
    /// (attempt number, speculative flag).
    RetryProvision(FunctionId, u32, bool),
    /// Fault injection: a worker crashes, killing its containers.
    WorkerDown(WorkerId),
}

/// Replays `trace` on the live host under `stack`, returning the same
/// report shape as [`faas_sim::run`] (waits in simulated time units).
///
/// # Panics
///
/// Panics if some function's memory footprint exceeds every worker (as
/// in the simulator) or if `config` fails [`LiveConfig`] validation.
pub fn run_live(trace: &Trace, config: &LiveConfig, stack: PolicyStack) -> SimReport {
    run_live_stats(trace, config, stack).0
}

/// Like [`run_live`], additionally returning [`LiveStats`] measured by
/// the host itself (so callers need no wall clock of their own).
///
/// # Panics
///
/// As [`run_live`].
pub fn run_live_stats(
    trace: &Trace,
    config: &LiveConfig,
    stack: PolicyStack,
) -> (SimReport, LiveStats) {
    let (report, stats, _) = run_live_with(trace, config, stack, NoopRecorder);
    (report, stats)
}

/// Like [`run_live_stats`], additionally recording a provenance
/// [`TraceLog`]. Event timestamps are virtual times derived from the
/// wall clock, so unlike the simulators the stream varies run to run —
/// the point of live tracing is inspecting *one* real execution
/// (waterfalls, Chrome export), not cross-run comparison.
///
/// # Panics
///
/// As [`run_live`].
pub fn run_live_traced(
    trace: &Trace,
    config: &LiveConfig,
    stack: PolicyStack,
) -> (SimReport, LiveStats, TraceLog) {
    run_live_with(trace, config, stack, RingRecorder::unbounded())
}

fn run_live_with<R: Recorder>(
    trace: &Trace,
    config: &LiveConfig,
    stack: PolicyStack,
    rec: R,
) -> (SimReport, LiveStats, TraceLog) {
    config.validate();
    let executor = exec::Executor::new(config.exec_threads);
    let wall_start = Instant::now();
    let runtime = Runtime::new(trace, config, stack, executor.handle(), rec);
    let (report, peak_inflight, log) = executor.block_on(runtime.run());
    let wall = wall_start.elapsed();
    let stats = executor.stats();
    // Cancels leftover event tasks (e.g. a pending tick) and re-raises
    // the first panic any event task hit.
    executor.shutdown();
    (
        report,
        LiveStats {
            peak_inflight,
            peak_tasks: stats.peak_tasks,
            peak_timers: stats.peak_timers,
            timer_fires: stats.timer_fires,
            peak_blocking_threads: stats.peak_blocking_threads,
            workers: stats.workers,
            wall,
        },
        log,
    )
}

struct Runtime<'a, R: Recorder> {
    cluster: ClusterState,
    policies: PolicyStack,
    config: &'a LiveConfig,
    start: Instant,
    exec: exec::Handle,
    tx: exec::channel::Sender<Msg>,
    rx: exec::channel::Receiver<Msg>,
    requests: Vec<(FunctionId, TimePoint, TimeDelta)>,
    started: Vec<Option<(TimePoint, StartClass)>>,
    busy_until: HashMap<ContainerId, Vec<TimePoint>>,
    deferred: VecDeque<(FunctionId, bool, u32)>,
    records: Vec<RequestRecord>,
    memory: TimeSeries,
    incomplete: u64,
    finished_at: TimePoint,
    last_memory_us: u64,
    faults: FaultState,
    /// Whether the configured `FaultPlan` injects anything; when false the
    /// fault bookkeeping is skipped, exactly as in the simulator.
    fault_active: bool,
    /// Retry attempt per provisioning container (fault runs only).
    attempts: HashMap<ContainerId, u32>,
    /// In-flight requests per container as `(rid, record index)` (fault
    /// runs only), so a worker crash can void and re-queue them.
    running: HashMap<ContainerId, Vec<(RequestId, usize)>>,
    /// Arrival messages processed (request-conservation invariant).
    arrived: u64,
    /// Arrived-but-unserved requests right now, and the run's
    /// high-water mark (the "concurrent in-flight requests" statistic).
    inflight: u64,
    peak_inflight: u64,
    /// Per-worker lazy-deletion heap of eviction candidates, kept warm
    /// across REPLACE rounds when `use_evict_index` is set.
    evict_index: EvictionIndex<WorkerId, ContainerId>,
    /// Whether cached priorities in `evict_index` are sound for the
    /// configured keep-alive policy (see [`PriorityDeps`]).
    use_evict_index: bool,
    /// Provenance event sink; [`NoopRecorder`] for untraced runs.
    rec: R,
}

impl<'a, R: Recorder> Runtime<'a, R> {
    fn new(
        trace: &Trace,
        config: &'a LiveConfig,
        policies: PolicyStack,
        exec: exec::Handle,
        rec: R,
    ) -> Self {
        let max_worker = config.sim.workers_mb.iter().copied().max().unwrap_or(0);
        for f in trace.functions() {
            assert!(
                (f.mem_mb as u64) <= max_worker,
                "function {} ({} MB) exceeds the largest worker ({} MB)",
                f.id,
                f.mem_mb,
                max_worker
            );
        }
        let mut cluster = ClusterState::with_placement(
            &config.sim.workers_mb,
            trace.functions().iter().cloned(),
            config.sim.threads,
            config.sim.placement,
        );
        cluster.set_scan(config.sim.scan);
        let use_evict_index = config.sim.scan == ScanMode::Indexed
            && policies.keepalive.priority_deps() != PriorityDeps::Volatile;
        let (tx, rx) = exec::channel::channel();
        let start = Instant::now();
        // Schedule every arrival and the first tick on the wall clock.
        // Each scheduled event is one suspended executor task
        // (`sleep_until(deadline); send(msg)`), so the whole trace sits
        // in the reactor's deadline heap, not in OS threads.
        let requests: Vec<(FunctionId, TimePoint, TimeDelta)> = trace
            .invocations()
            .iter()
            .map(|i| (i.func, i.arrival, i.exec))
            .collect();
        for (i, inv) in trace.invocations().iter().enumerate() {
            schedule_msg(
                &exec,
                &tx,
                start
                    + scale(
                        inv.arrival.saturating_since(TimePoint::ZERO),
                        config.time_scale,
                    ),
                Msg::Arrival(RequestId(i as u64)),
            );
        }
        if !requests.is_empty() {
            schedule_msg(
                &exec,
                &tx,
                start + scale(config.sim.tick, config.time_scale),
                Msg::Tick,
            );
        }
        for &(at, worker) in &config.sim.faults.worker_crashes {
            assert!(
                (worker.0 as usize) < config.sim.workers_mb.len(),
                "fault plan crashes unknown worker {worker:?}"
            );
            schedule_msg(
                &exec,
                &tx,
                start + scale(at.saturating_since(TimePoint::ZERO), config.time_scale),
                Msg::WorkerDown(worker),
            );
        }
        let fault_active = !config.sim.faults.is_none();
        let incomplete = requests.len() as u64;
        let started = vec![None; requests.len()];
        Self {
            cluster,
            policies,
            config,
            start,
            exec,
            tx,
            rx,
            requests,
            started,
            busy_until: HashMap::new(),
            deferred: VecDeque::new(),
            records: Vec::new(),
            memory: TimeSeries::new(),
            incomplete,
            finished_at: TimePoint::ZERO,
            last_memory_us: 0,
            faults: FaultState::new(config.sim.faults.clone()),
            fault_active,
            attempts: HashMap::new(),
            running: HashMap::new(),
            arrived: 0,
            inflight: 0,
            peak_inflight: 0,
            evict_index: EvictionIndex::new(),
            use_evict_index,
            rec,
        }
    }

    /// Current simulated time from the wall clock.
    fn now(&self) -> TimePoint {
        let real = self.start.elapsed().as_secs_f64();
        TimePoint::from_micros((real / self.config.time_scale * 1e6) as u64)
    }

    /// Schedules `msg` to arrive at `deadline` (a detached event task).
    fn schedule(&self, deadline: Instant, msg: Msg) {
        schedule_msg(&self.exec, &self.tx, deadline, msg);
    }

    async fn run(mut self) -> (SimReport, u64, TraceLog) {
        while self.incomplete > 0 {
            let Some(msg) = self.rx.recv().await else {
                break;
            };
            match msg {
                Msg::Arrival(rid) => self.on_arrival(rid),
                Msg::ProvisionDone(cid) => self.on_provision_done(cid),
                Msg::ExecDone(cid, rid) => self.on_exec_done(cid, rid),
                Msg::Tick => self.on_tick(),
                Msg::ProvisionFailed(cid) => self.on_provision_failed(cid),
                Msg::RetryProvision(func, attempt, spec) => {
                    self.on_retry_provision(func, attempt, spec)
                }
                Msg::WorkerDown(worker) => self.on_worker_down(worker),
            }
            #[cfg(debug_assertions)]
            faas_sim::InvariantChecker::check(&self.cluster, self.arrived, self.records.len());
        }
        assert_eq!(
            self.incomplete, 0,
            "live host stopped with unserved requests"
        );
        // Settle the ledger at its own high-water mark: the last
        // charging mutation in virtual time, wall-clock-free.
        let settle_at = self.cluster.ledger_hwm();
        self.cluster.settle_ledger_at(settle_at);
        let report = SimReport {
            requests: self.records,
            memory: self.memory,
            containers_created: self.cluster.containers_created,
            containers_evicted: self.cluster.containers_evicted,
            wasted_cold_starts: self.cluster.wasted_cold_starts,
            provision_failures: self.cluster.provision_failures,
            crash_evictions: self.cluster.crash_evictions,
            finished_at: self.finished_at,
            ledger: self.cluster.ledger,
            ledger_settled_at: settle_at,
        };
        (report, self.peak_inflight, self.rec.take_log())
    }

    fn on_arrival(&mut self, rid: RequestId) {
        self.arrived += 1;
        self.inflight += 1;
        self.peak_inflight = self.peak_inflight.max(self.inflight);
        let now = self.now();
        let func = self.requests[rid.0 as usize].0;
        self.cluster.note_arrival(func, now);
        if let Some(cid) = self.cluster.pick_available(func) {
            self.start_exec(cid, rid, StartClass::Warm, now);
            return;
        }
        let info = faas_sim::RequestInfo {
            id: rid,
            func,
            arrival: self.requests[rid.0 as usize].1,
        };
        let mut decision = {
            let ctx = PolicyCtx::new(now, &self.cluster, &self.busy_until);
            let d = self.policies.scaler.on_blocked(&info, &ctx);
            if d == ScaleDecision::WaitWarm
                && ctx.warm_count(func) == 0
                && ctx.provisioning_count(func) == 0
            {
                ScaleDecision::Race
            } else {
                d
            }
        };
        if let ScaleDecision::EnqueueOn(cid) = decision {
            let valid = self
                .cluster
                .container(cid)
                .map(|c| c.func == func && c.is_saturated())
                .unwrap_or(false);
            if !valid {
                decision = ScaleDecision::ColdStart;
            }
        }
        obs!(
            self.rec,
            ObsEvent::Admit {
                at: now,
                rid: rid.0,
                func,
                decision: decision.into(),
                note: self.policies.scaler.explain(),
            }
        );
        match decision {
            ScaleDecision::ColdStart => {
                self.cluster.fn_runtime_mut(func).pending.push(rid, true);
                self.request_provision(func, false, now, 0);
            }
            ScaleDecision::WaitWarm => {
                self.cluster.fn_runtime_mut(func).pending.push(rid, false);
            }
            ScaleDecision::Race => {
                self.cluster.fn_runtime_mut(func).pending.push(rid, false);
                self.request_provision(func, true, now, 0);
            }
            ScaleDecision::EnqueueOn(cid) => {
                self.cluster.enqueue_local(cid, rid);
            }
        }
    }

    fn on_provision_done(&mut self, cid: ContainerId) {
        if self.cluster.container(cid).is_none() {
            // Stale message: the container's worker crashed while it was
            // provisioning. Ids are never reused, so this is the only way
            // the container can be gone; fault-free runs never hit this.
            return;
        }
        let now = self.now();
        self.attempts.remove(&cid);
        self.cluster.finish_provision(cid, now);
        obs!(
            self.rec,
            ObsEvent::ProvisionEnd {
                at: now,
                cid: cid.0,
                ok: true,
            }
        );
        let func = self.cluster.container(cid).expect("just provisioned").func;
        if let Some(rid) = self.pop_pending(func, true) {
            self.start_exec(cid, rid, StartClass::Cold, now);
        } else {
            self.index_candidate(cid, now);
            self.retry_deferred(now);
        }
    }

    fn on_exec_done(&mut self, cid: ContainerId, rid: RequestId) {
        if self.cluster.container(cid).is_none() {
            // Stale message: the worker crashed mid-execution and the
            // request was re-queued; a fresh ExecDone fires when it
            // re-executes elsewhere.
            return;
        }
        let now = self.now();
        self.finished_at = self.finished_at.max(now);
        self.incomplete -= 1;
        self.inflight -= 1;
        obs!(
            self.rec,
            ObsEvent::Finish {
                at: now,
                rid: rid.0,
                cid: cid.0,
            }
        );
        if self.fault_active {
            if let Some(runs) = self.running.get_mut(&cid) {
                if let Some(pos) = runs.iter().position(|&(r, _)| r == rid) {
                    runs.swap_remove(pos);
                }
                if runs.is_empty() {
                    self.running.remove(&cid);
                }
            }
        }
        let func = self.requests[rid.0 as usize].0;
        self.cluster.note_completion(func);
        if let Some(ends) = self.busy_until.get_mut(&cid) {
            if !ends.is_empty() {
                ends.remove(0);
            }
            if ends.is_empty() {
                self.busy_until.remove(&cid);
            }
        }
        self.cluster.release_thread(cid, now);
        if let Some(next) = self.cluster.dequeue_local(cid) {
            self.start_exec(cid, next, StartClass::DelayedWarm, now);
            return;
        }
        if let Some(next) = self.pop_pending(func, false) {
            self.start_exec(cid, next, StartClass::DelayedWarm, now);
            return;
        }
        self.index_candidate(cid, now);
        self.retry_deferred(now);
    }

    fn on_tick(&mut self) {
        let now = self.now();
        let expired = {
            let ctx = PolicyCtx::new(now, &self.cluster, &self.busy_until);
            self.policies.keepalive.expirations(&ctx)
        };
        for cid in expired {
            let still_idle = self
                .cluster
                .container(cid)
                .map(|c| c.is_idle() && c.local_queue.is_empty())
                .unwrap_or(false);
            if still_idle {
                self.evict_container(cid, now, EvictReason::Expire);
            }
        }
        if self.policies.prewarm.is_some() {
            let wants = {
                let ctx = PolicyCtx::new(now, &self.cluster, &self.busy_until);
                self.policies
                    .prewarm
                    .as_mut()
                    .expect("checked")
                    .on_tick(&ctx)
            };
            for func in wants {
                let mem = self.cluster.profile(func).mem_mb;
                if self.cluster.pick_worker(mem).is_some() {
                    self.request_provision(func, false, now, 0);
                }
            }
        }
        if self.incomplete > 0 {
            self.schedule(
                Instant::now() + scale(self.config.sim.tick, self.config.time_scale),
                Msg::Tick,
            );
        }
    }

    /// A provision failed (fault injection): abandon the container,
    /// signal the policies, and schedule a retry with capped exponential
    /// backoff — mirroring the simulator's handler on the wall clock.
    fn on_provision_failed(&mut self, cid: ContainerId) {
        let Some(c) = self.cluster.container(cid) else {
            // The worker crashed before the failure fired; the crash
            // handler already re-provisioned for the backlog.
            return;
        };
        let now = self.now();
        let func = c.func;
        let speculative = c.speculative_unused;
        let attempt = self.attempts.remove(&cid).unwrap_or(0);
        let info = self.cluster.fail_provision(cid, now);
        self.note_memory(now);
        obs!(
            self.rec,
            ObsEvent::ProvisionEnd {
                at: now,
                cid: cid.0,
                ok: false,
            }
        );
        {
            let ctx = PolicyCtx::new(now, &self.cluster, &self.busy_until);
            self.policies.keepalive.on_evict(&info, &ctx);
            if speculative {
                // A failed speculative cold start burned a provision and
                // served nobody (Ti = ∞ for CSS).
                self.policies.scaler.on_cold_outcome(func, None, &ctx);
            }
        }
        let next = attempt + 1;
        let backoff = self.faults.plan().backoff(next);
        obs!(
            self.rec,
            ObsEvent::RetryScheduled {
                at: now,
                func,
                attempt: next,
                backoff,
                speculative,
            }
        );
        self.schedule(
            Instant::now() + scale(backoff, self.config.time_scale),
            Msg::RetryProvision(func, next, speculative),
        );
        self.retry_deferred(now);
    }

    /// A failed provision's backoff expired: retry unless the backlog
    /// drained during the wait (cold-only waiters keep the channel
    /// non-empty until a provision serves them, so skipping is safe).
    fn on_retry_provision(&mut self, func: FunctionId, attempt: u32, speculative: bool) {
        let backlog = self
            .cluster
            .fn_runtime(func)
            .map(|rt| !rt.pending.is_empty())
            .unwrap_or(false);
        if backlog {
            let now = self.now();
            self.request_provision(func, speculative, now, attempt);
        }
    }

    /// A worker crashes: its containers die, in-flight requests and
    /// local queues are re-queued (records voided), and affected
    /// functions are re-provisioned so cold-only waiters are not
    /// stranded. Mirrors the simulator's handler.
    fn on_worker_down(&mut self, worker: WorkerId) {
        if !self.cluster.worker_is_alive(worker) {
            return; // duplicate crash message
        }
        let now = self.now();
        self.cluster.mark_worker_down(worker);
        self.evict_index.drop_worker(worker);
        obs!(
            self.rec,
            ObsEvent::WorkerDown {
                at: now,
                worker: worker.0,
            }
        );
        let victims = self.cluster.containers_on(worker);
        let mut voided: Vec<usize> = Vec::new();
        let mut requeue: Vec<(FunctionId, RequestId)> = Vec::new();
        let mut affected: Vec<FunctionId> = Vec::new();
        for cid in victims {
            self.attempts.remove(&cid);
            if let Some(runs) = self.running.remove(&cid) {
                for (rid, rec_idx) in runs {
                    voided.push(rec_idx);
                    self.started[rid.0 as usize] = None;
                    requeue.push((self.requests[rid.0 as usize].0, rid));
                }
            }
            self.busy_until.remove(&cid);
            let (info, local_queued) = self.cluster.crash_evict(cid, now);
            obs!(
                self.rec,
                ObsEvent::Evict {
                    at: now,
                    cid: cid.0,
                    func: info.func,
                    worker: worker.0,
                    reason: EvictReason::Crash,
                    note: None,
                }
            );
            affected.push(info.func);
            for rid in local_queued {
                requeue.push((info.func, rid));
            }
            let ctx = PolicyCtx::new(now, &self.cluster, &self.busy_until);
            self.policies.keepalive.on_evict(&info, &ctx);
            // No `on_cold_outcome`: a crash says nothing about whether
            // speculation was wasteful.
        }
        self.note_memory(now);
        self.remove_records(voided);
        requeue.sort_by_key(|&(_, rid)| rid);
        for &(func, rid) in &requeue {
            self.cluster.fn_runtime_mut(func).pending.push(rid, false);
        }
        affected.extend(requeue.iter().map(|&(f, _)| f));
        affected.sort_unstable();
        affected.dedup();
        for func in affected {
            let Some(rt) = self.cluster.fn_runtime(func) else {
                continue;
            };
            let pending = rt.pending.len();
            let cold_only = rt.pending.cold_only_len();
            let provisioning = rt.provisioning.len();
            let warm = rt.warm.len();
            let mut need = cold_only.saturating_sub(provisioning);
            if need == 0 && pending > 0 && warm == 0 && provisioning == 0 {
                need = 1;
            }
            for _ in 0..need {
                self.request_provision(func, false, now, 0);
            }
        }
        self.retry_deferred(now);
    }

    /// Voids crash-killed record indices and remaps the surviving
    /// in-flight records' indices.
    fn remove_records(&mut self, mut voided: Vec<usize>) {
        if voided.is_empty() {
            return;
        }
        voided.sort_unstable();
        let old = std::mem::take(&mut self.records);
        let mut vi = 0;
        for (i, r) in old.into_iter().enumerate() {
            if vi < voided.len() && voided[vi] == i {
                vi += 1;
            } else {
                self.records.push(r);
            }
        }
        for runs in self.running.values_mut() {
            for (_, idx) in runs.iter_mut() {
                *idx -= voided.partition_point(|&v| v < *idx);
            }
        }
    }

    fn start_exec(&mut self, cid: ContainerId, rid: RequestId, class: StartClass, now: TimePoint) {
        let (was_speculative, warm_at) = {
            let c = self.cluster.container(cid).expect("live container");
            (c.speculative_unused, c.warm_at)
        };
        self.cluster.occupy_thread(cid, now);
        self.evict_index.leave(cid);
        let (func, arrival, exec) = self.requests[rid.0 as usize];
        self.started[rid.0 as usize] = Some((now, class));
        let wait = now.saturating_since(arrival);
        self.busy_until.entry(cid).or_default().push(now + exec);
        self.schedule(
            Instant::now() + scale(exec, self.config.time_scale),
            Msg::ExecDone(cid, rid),
        );
        self.records.push(RequestRecord {
            func,
            arrival,
            wait,
            exec,
            class,
        });
        obs!(
            self.rec,
            ObsEvent::Start {
                at: now,
                rid: rid.0,
                cid: cid.0,
                func,
                class: class.into(),
                wait,
            }
        );
        if self.fault_active {
            // Track in-flight work so a worker crash can void the record
            // and re-queue the request.
            self.running
                .entry(cid)
                .or_default()
                .push((rid, self.records.len() - 1));
        }

        let info = faas_sim::RequestInfo {
            id: rid,
            func,
            arrival,
        };
        let cinfo = ContainerInfo::from(self.cluster.container(cid).expect("live container"));
        let ctx = PolicyCtx::new(now, &self.cluster, &self.busy_until);
        if class != StartClass::Cold {
            self.policies.keepalive.on_reuse(&cinfo, &ctx);
        }
        self.policies
            .scaler
            .on_start(&info, class, wait, exec, &ctx);
        if was_speculative {
            let idle = now.saturating_since(warm_at);
            self.policies.scaler.on_cold_outcome(func, Some(idle), &ctx);
        }
    }

    fn request_provision(
        &mut self,
        func: FunctionId,
        speculative: bool,
        now: TimePoint,
        attempt: u32,
    ) {
        let mem = self.cluster.profile(func).mem_mb;
        let Some(worker) = self.cluster.pick_worker(mem) else {
            obs!(
                self.rec,
                ObsEvent::Defer {
                    at: now,
                    func,
                    speculative,
                }
            );
            self.deferred.push_back((func, speculative, attempt));
            return;
        };
        let mut evicted = Vec::new();
        if self.cluster.workers()[worker.0 as usize].free_mb() < mem as u64 {
            // Victim-selection provenance: the recording path snapshots
            // the idle set before the REPLACE round mutates it. Live
            // candidates are the full idle set (no local-queue filter),
            // matching the live REPLACE semantics below.
            if self.rec.enabled() {
                let candidates = self.eviction_snapshot(worker, now);
                self.rec.record(ObsEvent::EvictCandidates {
                    at: now,
                    worker: worker.0,
                    incoming: func,
                    candidates,
                });
            }
            // REPLACE mirror of the simulator: cached cross-round heap
            // when priorities allow it, otherwise a per-round snapshot.
            // Unlike the simulator, live candidates are the full idle
            // set (no local-queue filter) — the historical live
            // behaviour, preserved bit-for-bit by the reference scan.
            if self.use_evict_index {
                while self.cluster.workers()[worker.0 as usize].free_mb() < mem as u64 {
                    let popped = {
                        let cluster = &self.cluster;
                        let busy = &self.busy_until;
                        let ka = &self.policies.keepalive;
                        let ctx = PolicyCtx::new(now, cluster, busy);
                        self.evict_index.pop_min(worker, |cid| {
                            let c = cluster.container(cid)?;
                            if !c.is_idle() {
                                return None;
                            }
                            Some(ka.priority(&ContainerInfo::from(c), &ctx))
                        })
                    };
                    let Some((_, victim)) = popped else {
                        obs!(
                            self.rec,
                            ObsEvent::Defer {
                                at: now,
                                func,
                                speculative,
                            }
                        );
                        self.deferred.push_back((func, speculative, attempt));
                        return;
                    };
                    evicted.push(self.evict_container(victim, now, EvictReason::Replace));
                }
            } else {
                let candidates: Vec<(f64, ContainerId)> = {
                    let ctx = PolicyCtx::new(now, &self.cluster, &self.busy_until);
                    let ka = &self.policies.keepalive;
                    self.cluster.workers()[worker.0 as usize]
                        .idle
                        .iter()
                        .map(|&cid| {
                            let cinfo = ctx.container(cid).expect("idle containers are live");
                            (ka.priority(&cinfo, &ctx), cid)
                        })
                        .collect()
                };
                match self.cluster.scan() {
                    ScanMode::Indexed => {
                        let mut heap = RoundHeap::from_entries(candidates);
                        while self.cluster.workers()[worker.0 as usize].free_mb() < mem as u64 {
                            let Some((_, victim)) = heap.pop() else {
                                obs!(
                                    self.rec,
                                    ObsEvent::Defer {
                                        at: now,
                                        func,
                                        speculative,
                                    }
                                );
                                self.deferred.push_back((func, speculative, attempt));
                                return;
                            };
                            evicted.push(self.evict_container(victim, now, EvictReason::Replace));
                        }
                    }
                    ScanMode::Reference => {
                        let sorted = faas_sim::reference::sorted_eviction_candidates(candidates);
                        let mut victims = sorted.into_iter();
                        while self.cluster.workers()[worker.0 as usize].free_mb() < mem as u64 {
                            let Some((_, victim)) = victims.next() else {
                                obs!(
                                    self.rec,
                                    ObsEvent::Defer {
                                        at: now,
                                        func,
                                        speculative,
                                    }
                                );
                                self.deferred.push_back((func, speculative, attempt));
                                return;
                            };
                            evicted.push(self.evict_container(victim, now, EvictReason::Replace));
                        }
                    }
                }
            }
        }
        if !evicted.is_empty() {
            self.cluster.note_replace_round();
        }
        let cid = self.cluster.begin_provision(func, worker, now, speculative);
        self.note_memory(now);
        obs!(
            self.rec,
            ObsEvent::ProvisionBegin {
                at: now,
                cid: cid.0,
                func,
                worker: worker.0,
                speculative,
                attempt,
            }
        );
        let cinfo = ContainerInfo::from(self.cluster.container(cid).expect("just created"));
        let cold = {
            let ctx = PolicyCtx::new(now, &self.cluster, &self.busy_until);
            self.policies.keepalive.on_admit(&cinfo, &evicted, &ctx);
            self.policies
                .keepalive
                .provision_latency(func, &ctx)
                .unwrap_or_else(|| self.cluster.profile(func).cold_start)
        };
        if self.fault_active {
            self.attempts.insert(cid, attempt);
            if self.faults.provision_fails() {
                // The failure surfaces only after the full provisioning
                // latency was spent — like a real timed-out cold start.
                self.schedule(
                    Instant::now() + scale(cold, self.config.time_scale),
                    Msg::ProvisionFailed(cid),
                );
                return;
            }
            let factor = self.faults.straggler_factor();
            let cold = if factor > 1.0 {
                cold.scale(factor)
            } else {
                cold
            };
            self.schedule(
                Instant::now() + scale(cold, self.config.time_scale),
                Msg::ProvisionDone(cid),
            );
            return;
        }
        self.schedule(
            Instant::now() + scale(cold, self.config.time_scale),
            Msg::ProvisionDone(cid),
        );
    }

    fn evict_container(
        &mut self,
        cid: ContainerId,
        now: TimePoint,
        reason: EvictReason,
    ) -> ContainerInfo {
        let was_unused = self
            .cluster
            .container(cid)
            .map(|c| c.speculative_unused)
            .unwrap_or(false);
        self.evict_index.leave(cid);
        let info = self.cluster.evict(cid, now);
        self.note_memory(now);
        obs!(
            self.rec,
            ObsEvent::Evict {
                at: now,
                cid: cid.0,
                func: info.func,
                worker: info.worker.0,
                reason,
                note: self.policies.keepalive.explain(),
            }
        );
        let ctx = PolicyCtx::new(now, &self.cluster, &self.busy_until);
        self.policies.keepalive.on_evict(&info, &ctx);
        if was_unused {
            self.policies.scaler.on_cold_outcome(info.func, None, &ctx);
        }
        info
    }

    /// Idle containers on `worker` with their keep-alive priorities, in
    /// eviction order — the [`ObsEvent::EvictCandidates`] provenance
    /// snapshot. Only called on the recording path.
    fn eviction_snapshot(&self, worker: WorkerId, now: TimePoint) -> Vec<(u64, f64)> {
        let ctx = PolicyCtx::new(now, &self.cluster, &self.busy_until);
        let ka = &self.policies.keepalive;
        let candidates: Vec<(f64, ContainerId)> = self.cluster.workers()[worker.0 as usize]
            .idle
            .iter()
            .map(|&cid| {
                let cinfo = ctx.container(cid).expect("idle containers are live");
                (ka.priority(&cinfo, &ctx), cid)
            })
            .collect();
        faas_sim::reference::sorted_eviction_candidates(candidates)
            .into_iter()
            .map(|(p, cid)| (cid.0, p))
            .collect()
    }

    /// Enters `cid` into the eviction index if it just became idle,
    /// caching its current priority. No-op unless cross-round caching
    /// is enabled.
    fn index_candidate(&mut self, cid: ContainerId, now: TimePoint) {
        if !self.use_evict_index {
            return;
        }
        let Some(c) = self.cluster.container(cid) else {
            return;
        };
        if !c.is_idle() {
            return;
        }
        let worker = c.worker;
        let priority = {
            let ctx = PolicyCtx::new(now, &self.cluster, &self.busy_until);
            self.policies
                .keepalive
                .priority(&ContainerInfo::from(c), &ctx)
        };
        self.evict_index.enter(worker, cid, priority);
    }

    fn pop_pending(&mut self, func: FunctionId, any: bool) -> Option<RequestId> {
        let rt = self.cluster.fn_runtime_mut(func);
        if any {
            rt.pending.pop_any().map(|(rid, _)| rid)
        } else {
            rt.pending.pop_flexible()
        }
    }

    fn retry_deferred(&mut self, now: TimePoint) {
        while let Some(&(func, speculative, attempt)) = self.deferred.front() {
            let mem = self.cluster.profile(func).mem_mb;
            if self.cluster.pick_worker(mem).is_none() {
                break;
            }
            self.deferred.pop_front();
            self.request_provision(func, speculative, now, attempt);
        }
    }

    fn note_memory(&mut self, now: TimePoint) {
        if self.config.sim.record_memory {
            // Real-time clocks can regress below an already-recorded
            // point within the same microsecond; clamp monotone.
            let us = now.as_micros().max(self.last_memory_us);
            self.last_memory_us = us;
            self.memory.push(us, self.cluster.used_mb() as f64);
        }
    }
}

/// Converts a simulated span into a real sleep duration.
fn scale(d: TimeDelta, time_scale: f64) -> Duration {
    Duration::from_secs_f64(d.as_secs_f64() * time_scale)
}

/// Schedules `msg` for wall-clock delivery; see [`exec::send_at`].
fn schedule_msg(exec: &exec::Handle, tx: &exec::channel::Sender<Msg>, deadline: Instant, msg: Msg) {
    exec::send_at(exec, tx, deadline, msg);
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_sim::baseline_lru_stack;
    use faas_trace::{gen, FunctionProfile, Invocation};

    fn tiny_trace() -> Trace {
        let f = FunctionProfile::new(FunctionId(0), "f", 128, TimeDelta::from_millis(100));
        let invs = vec![
            Invocation {
                func: FunctionId(0),
                arrival: TimePoint::ZERO,
                exec: TimeDelta::from_millis(50),
            },
            Invocation {
                func: FunctionId(0),
                arrival: TimePoint::from_millis(500),
                exec: TimeDelta::from_millis(50),
            },
        ];
        Trace::new(vec![f], invs).expect("valid")
    }

    #[test]
    fn cold_then_warm_on_live_host() {
        // 1 simulated ms = 20 real µs: the 550 ms trace replays in ~11 ms
        // of real time with wide margins between events.
        let config = LiveConfig::default().time_scale(0.02);
        let report = run_live(&tiny_trace(), &config, baseline_lru_stack());
        assert_eq!(report.requests.len(), 2);
        assert_eq!(report.requests[0].class, StartClass::Cold);
        assert_eq!(report.requests[1].class, StartClass::Warm);
        // Wall-clock jitter: the cold wait must be at least the cold
        // start latency; the overshoot margin absorbs scheduler noise
        // from neighboring tests (the executor suite runs 10k tasks).
        let wait = report.requests[0].wait.as_millis_f64();
        assert!((100.0..300.0).contains(&wait), "cold wait {wait} ms");
    }

    #[test]
    fn conservation_on_generated_workload() {
        let trace = gen::fc(3).functions(5).minutes(1).build();
        let config = LiveConfig::default().time_scale(0.0005);
        let report = run_live(&trace, &config, baseline_lru_stack());
        assert_eq!(report.requests.len(), trace.len());
        let total = report.ratio(StartClass::Warm)
            + report.ratio(StartClass::Cold)
            + report.ratio(StartClass::DelayedWarm);
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "time scale must be positive")]
    fn rejects_bad_scale() {
        let _ = LiveConfig::default().time_scale(0.0);
    }

    #[test]
    #[should_panic(expected = "time scale must be positive")]
    fn rejects_nan_scale_in_builder() {
        let _ = LiveConfig::default().time_scale(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "time scale must be positive")]
    fn rejects_literal_constructed_bad_scale_at_entry() {
        // Regression: the fields are `pub`, so literal construction
        // bypasses the builder's check; a NaN scale used to reach
        // `Duration::from_secs_f64` deep inside the event loop. Entry
        // points validate up front now.
        let config = LiveConfig {
            sim: SimConfig::default(),
            time_scale: f64::NAN,
            exec_threads: 2,
        };
        let _ = run_live(&tiny_trace(), &config, baseline_lru_stack());
    }

    #[test]
    #[should_panic(expected = "time scale must be positive")]
    fn rejects_negative_scale_at_entry() {
        let config = LiveConfig {
            sim: SimConfig::default(),
            time_scale: -0.5,
            exec_threads: 2,
        };
        let _ = run_live(&tiny_trace(), &config, baseline_lru_stack());
    }

    #[test]
    fn stats_count_concurrent_inflight_requests() {
        // 200 simultaneous arrivals: every request is in flight at once
        // before any is served, and each scheduled event is a task.
        let f = FunctionProfile::new(FunctionId(0), "f", 128, TimeDelta::from_millis(20));
        let invs = (0..200)
            .map(|_| Invocation {
                func: FunctionId(0),
                arrival: TimePoint::ZERO,
                exec: TimeDelta::from_millis(10),
            })
            .collect();
        let trace = Trace::new(vec![f], invs).expect("valid");
        let config = LiveConfig::default().time_scale(0.02).exec_threads(2);
        let (report, stats) = run_live_stats(&trace, &config, baseline_lru_stack());
        assert_eq!(report.requests.len(), 200);
        assert_eq!(stats.peak_inflight, 200);
        assert!(
            stats.peak_tasks >= 200,
            "each pending arrival is a task: peak_tasks {}",
            stats.peak_tasks
        );
        assert_eq!(stats.workers, 2);
        assert!(stats.wall > Duration::ZERO);
    }

    #[test]
    fn traced_run_records_request_lifecycle() {
        let config = LiveConfig::default().time_scale(0.02);
        let (report, stats, log) = run_live_traced(&tiny_trace(), &config, baseline_lru_stack());
        assert_eq!(report.requests.len(), 2);
        assert!(stats.timer_fires > 0, "scheduled events fire via timers");
        let count = |pred: fn(&ObsEvent) -> bool| log.events().iter().filter(|e| pred(e)).count();
        assert_eq!(count(|e| matches!(e, ObsEvent::Start { .. })), 2);
        assert_eq!(count(|e| matches!(e, ObsEvent::Finish { .. })), 2);
        // The first request cold-started: admission + provisioning
        // provenance must be on the trace.
        assert!(count(|e| matches!(e, ObsEvent::Admit { .. })) >= 1);
        assert_eq!(count(|e| matches!(e, ObsEvent::ProvisionBegin { .. })), 1);
        assert_eq!(log.waterfalls().len(), 2);
    }

    #[test]
    fn provision_failures_retry_on_live_host() {
        use faas_sim::FaultPlan;
        let sim = SimConfig::default().workers_mb(vec![1024]).faults(
            FaultPlan::none()
                .seed(3)
                .provision_failures(0.8)
                .retry_backoff(TimeDelta::from_millis(10), TimeDelta::from_millis(80)),
        );
        let config = LiveConfig::default().sim(sim).time_scale(0.02);
        let report = run_live(&tiny_trace(), &config, baseline_lru_stack());
        // Both requests complete despite failed provisions; every
        // failure is retried until one succeeds.
        assert_eq!(report.requests.len(), 2);
        assert!(report.provision_failures > 0, "seed 3 at p=0.8 must fail");
        assert_eq!(
            report.containers_created,
            report.provision_failures + report.count(StartClass::Cold)
        );
    }

    #[test]
    fn worker_crash_reexecutes_on_live_host() {
        use faas_sim::FaultPlan;
        // One long request on worker 0 of 2; the crash at simulated
        // t = 500 ms hits mid-execution, and the request re-executes.
        let f = FunctionProfile::new(FunctionId(0), "f", 128, TimeDelta::from_millis(100));
        let invs = vec![Invocation {
            func: FunctionId(0),
            arrival: TimePoint::ZERO,
            exec: TimeDelta::from_millis(1_000),
        }];
        let trace = Trace::new(vec![f], invs).expect("valid");
        let sim = SimConfig::default()
            .workers_mb(vec![1024, 1024])
            .faults(FaultPlan::none().crash_worker(TimePoint::from_millis(500), WorkerId(0)));
        let config = LiveConfig::default().sim(sim).time_scale(0.02);
        let report = run_live(&trace, &config, baseline_lru_stack());
        assert_eq!(report.requests.len(), 1);
        assert_eq!(report.crash_evictions, 1);
        assert_eq!(report.containers_created, 2);
        // The recorded wait covers the doomed first run plus the
        // re-provision: well above a plain 100 ms cold start.
        assert!(
            report.requests[0].wait > TimeDelta::from_millis(400),
            "wait {:?} should include the crashed attempt",
            report.requests[0].wait
        );
    }
}
