//! A programmable FaaS host: deploy real Rust handlers, invoke them, and
//! let a keep-alive/scaling policy manage the container fleet.
//!
//! Where [`crate::run_live`] replays a pre-recorded trace, [`FaasHost`]
//! is the interactive mode: callers deploy functions (a profile plus a
//! handler closure), fire invocations from any thread, and receive
//! [`InvokeOutcome`]s carrying the handler's output together with the
//! start class (warm / delayed warm / cold) and the invocation overhead
//! the policy produced.
//!
//! Handler execution is real: each *running* invocation occupies a
//! thread of the executor's cached blocking pool for as long as the
//! handler runs (waiting invocations are suspended tasks, not threads —
//! see [`crate::exec`]). Provisioning latency — the part of a cold
//! start a host cannot execute for you — is realised as a timed delay
//! of `profile.cold_start` scaled by [`crate::LiveConfig::time_scale`].
//!
//! Fault injection ([`faas_sim::FaultPlan`]) applies only to trace
//! replay ([`crate::run_live`]): replay owns every request's lifecycle,
//! so crashed executions can be voided and re-queued. The interactive
//! host hands outputs to external callers the moment handlers return
//! and therefore cannot un-deliver them; its fault counters are always
//! zero.
//!
//! ```
//! use faas_live::{FaasHost, LiveConfig};
//! use faas_sim::baseline_lru_stack;
//! use faas_trace::{FunctionId, FunctionProfile, TimeDelta};
//! use std::sync::Arc;
//!
//! let profile = FunctionProfile::new(FunctionId(0), "double", 128, TimeDelta::from_millis(50));
//! let host = FaasHost::start(
//!     LiveConfig::default().time_scale(0.01),
//!     baseline_lru_stack(),
//!     vec![(profile, Arc::new(|x: Vec<u8>| x.iter().map(|b| b * 2).collect()))],
//! );
//! let out = host.invoke(FunctionId(0), vec![1, 2, 3]).wait().expect("function ran");
//! assert_eq!(out.output, vec![2, 4, 6]);
//! let report = host.shutdown();
//! assert_eq!(report.requests.len(), 1);
//! ```

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use faas_core::{EvictionIndex, RoundHeap};
use faas_metrics::TimeSeries;
use faas_obs::{EvictReason, NoopRecorder, ObsEvent, Recorder, RingRecorder, TraceLog};
use faas_sim::{
    ClusterState, ContainerId, ContainerInfo, PolicyCtx, PolicyStack, PriorityDeps, RequestId,
    RequestRecord, ScaleDecision, ScanMode, SimReport, StartClass, WorkerId,
};
use faas_trace::{FunctionId, FunctionProfile, TimeDelta, TimePoint};

use crate::exec;
use crate::runtime::LiveConfig;

/// A deployed function's handler: bytes in, bytes out. Runs on a
/// blocking-pool thread for every invocation.
pub type Handler = Arc<dyn Fn(Vec<u8>) -> Vec<u8> + Send + Sync>;

/// The outcome of one invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvokeOutcome {
    /// The handler's output.
    pub output: Vec<u8>,
    /// How the request started (warm / delayed warm / cold).
    pub class: StartClass,
    /// Invocation overhead (queueing + provisioning before the handler
    /// began), in simulated time units.
    pub wait: TimeDelta,
}

/// Handle on an in-flight invocation.
#[derive(Debug)]
pub struct InvokeHandle {
    rx: mpsc::Receiver<InvokeOutcome>,
}

impl InvokeHandle {
    /// Blocks until the invocation completes. Returns `None` if the host
    /// shut down without serving it (cannot happen before
    /// [`FaasHost::shutdown`]).
    pub fn wait(self) -> Option<InvokeOutcome> {
        self.rx.recv().ok()
    }
}

enum Msg {
    Invoke(FunctionId, Vec<u8>, mpsc::Sender<InvokeOutcome>),
    ProvisionDone(ContainerId),
    ExecDone(ContainerId, RequestId, Vec<u8>, Duration),
    Tick,
    Shutdown(mpsc::Sender<(SimReport, TraceLog)>),
}

/// A running FaaS host. See the module docs for the lifecycle.
pub struct FaasHost {
    tx: exec::channel::Sender<Msg>,
    executor: Option<exec::Executor>,
}

impl std::fmt::Debug for FaasHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaasHost").finish_non_exhaustive()
    }
}

impl FaasHost {
    /// Starts the host with the given deployments. The orchestrator
    /// runs as a task on an in-process [`exec::Executor`].
    ///
    /// # Panics
    ///
    /// Panics if a deployed function's memory footprint exceeds every
    /// worker, if two deployments share a [`FunctionId`], or if
    /// `config` fails [`LiveConfig`] validation.
    pub fn start(
        config: LiveConfig,
        stack: PolicyStack,
        deployments: Vec<(FunctionProfile, Handler)>,
    ) -> Self {
        Self::start_with(config, stack, deployments, NoopRecorder)
    }

    /// Like [`FaasHost::start`], but with provenance recording enabled:
    /// [`FaasHost::shutdown_traced`] returns the accumulated
    /// [`TraceLog`] alongside the report. Event timestamps are virtual
    /// times derived from the wall clock, so the stream varies run to
    /// run (live tracing inspects one real execution, it is not a
    /// determinism oracle).
    ///
    /// # Panics
    ///
    /// As [`FaasHost::start`].
    pub fn start_traced(
        config: LiveConfig,
        stack: PolicyStack,
        deployments: Vec<(FunctionProfile, Handler)>,
    ) -> Self {
        Self::start_with(config, stack, deployments, RingRecorder::unbounded())
    }

    fn start_with<R: Recorder + Send + 'static>(
        config: LiveConfig,
        stack: PolicyStack,
        deployments: Vec<(FunctionProfile, Handler)>,
        rec: R,
    ) -> Self {
        config.validate();
        let executor = exec::Executor::new(config.exec_threads);
        let (tx, rx) = exec::channel::channel();
        let orchestrator = Orchestrator::new(
            config,
            stack,
            deployments,
            executor.handle(),
            tx.clone(),
            rx,
            rec,
        );
        drop(executor.spawn(orchestrator.run()));
        Self {
            tx,
            executor: Some(executor),
        }
    }

    /// Fires an invocation; returns immediately with a handle.
    pub fn invoke(&self, func: FunctionId, payload: Vec<u8>) -> InvokeHandle {
        let (otx, orx) = mpsc::channel();
        // The orchestrator outlives every handle until shutdown.
        let _ = self.tx.send(Msg::Invoke(func, payload, otx));
        InvokeHandle { rx: orx }
    }

    /// Drains in-flight invocations and returns the run report.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic any handler hit (the executor captures
    /// handler panics instead of letting them kill a request thread).
    pub fn shutdown(self) -> SimReport {
        self.shutdown_traced().0
    }

    /// Like [`FaasHost::shutdown`], additionally returning the
    /// provenance [`TraceLog`] — empty unless the host was started with
    /// [`FaasHost::start_traced`].
    ///
    /// # Panics
    ///
    /// As [`FaasHost::shutdown`].
    pub fn shutdown_traced(mut self) -> (SimReport, TraceLog) {
        let (rtx, rrx) = mpsc::channel();
        let _ = self.tx.send(Msg::Shutdown(rtx));
        let report = rrx.recv();
        let executor = self.executor.take().expect("executor lives until shutdown");
        // Rethrows captured orchestrator/handler panics.
        executor.shutdown();
        report.expect("orchestrator returns a report")
    }
}

struct InFlight {
    payload: Vec<u8>,
    reply: mpsc::Sender<InvokeOutcome>,
    arrival: TimePoint,
    func: FunctionId,
}

struct Orchestrator<R: Recorder> {
    cluster: ClusterState,
    policies: PolicyStack,
    config: LiveConfig,
    handlers: HashMap<FunctionId, Handler>,
    start: Instant,
    exec: exec::Handle,
    self_tx: exec::channel::Sender<Msg>,
    rx: exec::channel::Receiver<Msg>,
    next_request: u64,
    inflight: HashMap<RequestId, InFlight>,
    /// Wait and class stamped when each request started executing.
    started: HashMap<RequestId, (TimeDelta, StartClass)>,
    busy_until: HashMap<ContainerId, Vec<TimePoint>>,
    deferred: VecDeque<(FunctionId, bool)>,
    records: Vec<RequestRecord>,
    memory: TimeSeries,
    running: u64,
    finished_at: TimePoint,
    shutdown_reply: Option<mpsc::Sender<(SimReport, TraceLog)>>,
    last_memory_us: u64,
    /// Per-worker lazy-deletion heap of eviction candidates, kept warm
    /// across REPLACE rounds when `use_evict_index` is set.
    evict_index: EvictionIndex<WorkerId, ContainerId>,
    /// Whether cached priorities in `evict_index` are sound for the
    /// configured keep-alive policy (see [`PriorityDeps`]).
    use_evict_index: bool,
    /// Provenance event sink; [`NoopRecorder`] for untraced hosts.
    rec: R,
}

impl<R: Recorder> Orchestrator<R> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        config: LiveConfig,
        policies: PolicyStack,
        deployments: Vec<(FunctionProfile, Handler)>,
        exec: exec::Handle,
        self_tx: exec::channel::Sender<Msg>,
        rx: exec::channel::Receiver<Msg>,
        rec: R,
    ) -> Self {
        let max_worker = config.sim.workers_mb.iter().copied().max().unwrap_or(0);
        let mut handlers = HashMap::new();
        let mut profiles = Vec::new();
        for (profile, handler) in deployments {
            assert!(
                (profile.mem_mb as u64) <= max_worker,
                "function {} ({} MB) exceeds the largest worker ({} MB)",
                profile.id,
                profile.mem_mb,
                max_worker
            );
            assert!(
                handlers.insert(profile.id, handler).is_none(),
                "duplicate deployment of {}",
                profile.id
            );
            profiles.push(profile);
        }
        let mut cluster = ClusterState::with_placement(
            &config.sim.workers_mb,
            profiles,
            config.sim.threads,
            config.sim.placement,
        );
        cluster.set_scan(config.sim.scan);
        let use_evict_index = config.sim.scan == ScanMode::Indexed
            && policies.keepalive.priority_deps() != PriorityDeps::Volatile;
        let start = Instant::now();
        exec::send_at(
            &exec,
            &self_tx,
            start + scale(config.sim.tick, config.time_scale),
            Msg::Tick,
        );
        Self {
            cluster,
            policies,
            config,
            handlers,
            start,
            exec,
            self_tx,
            rx,
            next_request: 0,
            inflight: HashMap::new(),
            started: HashMap::new(),
            busy_until: HashMap::new(),
            deferred: VecDeque::new(),
            records: Vec::new(),
            memory: TimeSeries::new(),
            running: 0,
            finished_at: TimePoint::ZERO,
            shutdown_reply: None,
            last_memory_us: 0,
            evict_index: EvictionIndex::new(),
            use_evict_index,
            rec,
        }
    }

    fn now(&self) -> TimePoint {
        let real = self.start.elapsed().as_secs_f64();
        TimePoint::from_micros((real / self.config.time_scale * 1e6) as u64)
    }

    /// Schedules `msg` for wall-clock delivery; see [`exec::send_at`].
    fn schedule(&self, deadline: Instant, msg: Msg) {
        exec::send_at(&self.exec, &self.self_tx, deadline, msg);
    }

    async fn run(mut self) {
        loop {
            let Some(msg) = self.rx.recv().await else {
                return;
            };
            match msg {
                Msg::Invoke(func, payload, reply) => self.on_invoke(func, payload, reply),
                Msg::ProvisionDone(cid) => self.on_provision_done(cid),
                Msg::ExecDone(cid, rid, output, real_exec) => {
                    self.on_exec_done(cid, rid, output, real_exec)
                }
                Msg::Tick => self.on_tick(),
                Msg::Shutdown(reply) => {
                    self.shutdown_reply = Some(reply);
                }
            }
            if let Some(reply) = self.shutdown_reply.take() {
                if self.running == 0 && self.inflight.is_empty() {
                    // Settle the ledger at its own virtual-time
                    // high-water mark before reporting.
                    let settle_at = self.cluster.ledger_hwm();
                    self.cluster.settle_ledger_at(settle_at);
                    let report = SimReport {
                        requests: std::mem::take(&mut self.records),
                        memory: std::mem::take(&mut self.memory),
                        containers_created: self.cluster.containers_created,
                        containers_evicted: self.cluster.containers_evicted,
                        wasted_cold_starts: self.cluster.wasted_cold_starts,
                        // Fault injection applies to trace replay
                        // (`run_live`), not to the ad-hoc invocation host.
                        provision_failures: 0,
                        crash_evictions: 0,
                        finished_at: self.finished_at,
                        ledger: self.cluster.ledger,
                        ledger_settled_at: settle_at,
                    };
                    let _ = reply.send((report, self.rec.take_log()));
                    return;
                }
                self.shutdown_reply = Some(reply);
            }
        }
    }

    fn on_invoke(
        &mut self,
        func: FunctionId,
        payload: Vec<u8>,
        reply: mpsc::Sender<InvokeOutcome>,
    ) {
        assert!(
            self.handlers.contains_key(&func),
            "invoke of undeployed function {func}"
        );
        let now = self.now();
        let rid = RequestId(self.next_request);
        self.next_request += 1;
        self.cluster.note_arrival(func, now);
        self.inflight.insert(
            rid,
            InFlight {
                payload,
                reply,
                arrival: now,
                func,
            },
        );
        if let Some(cid) = self.cluster.pick_available(func) {
            self.start_exec(cid, rid, StartClass::Warm, now);
            return;
        }
        let info = faas_sim::RequestInfo {
            id: rid,
            func,
            arrival: now,
        };
        let mut decision = {
            let ctx = PolicyCtx::new(now, &self.cluster, &self.busy_until);
            let d = self.policies.scaler.on_blocked(&info, &ctx);
            if d == ScaleDecision::WaitWarm
                && ctx.warm_count(func) == 0
                && ctx.provisioning_count(func) == 0
            {
                ScaleDecision::Race
            } else {
                d
            }
        };
        if let ScaleDecision::EnqueueOn(cid) = decision {
            let valid = self
                .cluster
                .container(cid)
                .map(|c| c.func == func && c.is_saturated())
                .unwrap_or(false);
            if !valid {
                decision = ScaleDecision::ColdStart;
            }
        }
        obs!(
            self.rec,
            ObsEvent::Admit {
                at: now,
                rid: rid.0,
                func,
                decision: decision.into(),
                note: self.policies.scaler.explain(),
            }
        );
        match decision {
            ScaleDecision::ColdStart => {
                self.cluster.fn_runtime_mut(func).pending.push(rid, true);
                self.request_provision(func, false, now);
            }
            ScaleDecision::WaitWarm => {
                self.cluster.fn_runtime_mut(func).pending.push(rid, false);
            }
            ScaleDecision::Race => {
                self.cluster.fn_runtime_mut(func).pending.push(rid, false);
                self.request_provision(func, true, now);
            }
            ScaleDecision::EnqueueOn(cid) => {
                self.cluster.enqueue_local(cid, rid);
            }
        }
    }

    fn on_provision_done(&mut self, cid: ContainerId) {
        let now = self.now();
        self.cluster.finish_provision(cid, now);
        obs!(
            self.rec,
            ObsEvent::ProvisionEnd {
                at: now,
                cid: cid.0,
                ok: true,
            }
        );
        let func = self.cluster.container(cid).expect("just provisioned").func;
        if let Some(rid) = self.pop_pending(func, true) {
            self.start_exec(cid, rid, StartClass::Cold, now);
        } else {
            self.index_candidate(cid, now);
            self.retry_deferred(now);
        }
    }

    fn on_exec_done(
        &mut self,
        cid: ContainerId,
        rid: RequestId,
        output: Vec<u8>,
        real_exec: Duration,
    ) {
        let now = self.now();
        self.finished_at = self.finished_at.max(now);
        self.running -= 1;
        obs!(
            self.rec,
            ObsEvent::Finish {
                at: now,
                rid: rid.0,
                cid: cid.0,
            }
        );
        let flight = self.inflight.remove(&rid).expect("in-flight request");
        self.cluster.note_completion(flight.func);
        if let Some(ends) = self.busy_until.get_mut(&cid) {
            if !ends.is_empty() {
                ends.remove(0);
            }
            if ends.is_empty() {
                self.busy_until.remove(&cid);
            }
        }
        self.cluster.release_thread(cid, now);

        // Record in simulated units: the exec is the measured wall time
        // mapped back through the compression factor.
        let exec =
            TimeDelta::from_micros((real_exec.as_secs_f64() / self.config.time_scale * 1e6) as u64);
        let (wait, class) = self.started.remove(&rid).expect("request was started");
        let record = RequestRecord {
            func: flight.func,
            arrival: flight.arrival,
            wait,
            exec,
            class,
        };
        self.records.push(record);
        let _ = flight.reply.send(InvokeOutcome {
            output,
            class,
            wait,
        });

        if let Some(next) = self.cluster.dequeue_local(cid) {
            self.start_exec(cid, next, StartClass::DelayedWarm, now);
            return;
        }
        if let Some(next) = self.pop_pending(flight.func, false) {
            self.start_exec(cid, next, StartClass::DelayedWarm, now);
            return;
        }
        self.index_candidate(cid, now);
        self.retry_deferred(now);
    }

    fn on_tick(&mut self) {
        let now = self.now();
        let expired = {
            let ctx = PolicyCtx::new(now, &self.cluster, &self.busy_until);
            self.policies.keepalive.expirations(&ctx)
        };
        for cid in expired {
            let still_idle = self
                .cluster
                .container(cid)
                .map(|c| c.is_idle() && c.local_queue.is_empty())
                .unwrap_or(false);
            if still_idle {
                self.evict_container(cid, now, EvictReason::Expire);
            }
        }
        if self.policies.prewarm.is_some() {
            let wants = {
                let ctx = PolicyCtx::new(now, &self.cluster, &self.busy_until);
                self.policies
                    .prewarm
                    .as_mut()
                    .expect("checked")
                    .on_tick(&ctx)
            };
            for func in wants {
                let mem = self.cluster.profile(func).mem_mb;
                if self.cluster.pick_worker(mem).is_some() {
                    self.request_provision(func, false, now);
                }
            }
        }
        self.schedule(
            Instant::now() + scale(self.config.sim.tick, self.config.time_scale),
            Msg::Tick,
        );
    }

    fn start_exec(&mut self, cid: ContainerId, rid: RequestId, class: StartClass, now: TimePoint) {
        let (was_speculative, warm_at) = {
            let c = self.cluster.container(cid).expect("live container");
            (c.speculative_unused, c.warm_at)
        };
        self.cluster.occupy_thread(cid, now);
        self.evict_index.leave(cid);
        self.running += 1;
        let flight = self.inflight.get(&rid).expect("in-flight request");
        let (func, arrival, payload) = (flight.func, flight.arrival, flight.payload.clone());
        let wait = now.saturating_since(arrival);
        self.started.insert(rid, (wait, class));
        obs!(
            self.rec,
            ObsEvent::Start {
                at: now,
                rid: rid.0,
                cid: cid.0,
                func,
                class: class.into(),
                wait,
            }
        );
        // We do not know the handler's duration ahead of time; busy_until
        // gets a far-future placeholder so oracle queries stay sane.
        self.busy_until
            .entry(cid)
            .or_default()
            .push(now + TimeDelta::from_secs(3600));

        let handler = Arc::clone(self.handlers.get(&func).expect("deployed"));
        let done_tx = self.self_tx.clone();
        // The handler runs on the executor's cached blocking pool: one
        // pool thread per *running* invocation, reused across bursts,
        // instead of a fresh OS thread per request.
        drop(self.exec.spawn_blocking(move || {
            let begun = Instant::now();
            let output = handler(payload);
            let _ = done_tx.send(Msg::ExecDone(cid, rid, output, begun.elapsed()));
        }));

        let info = faas_sim::RequestInfo {
            id: rid,
            func,
            arrival,
        };
        let cinfo = ContainerInfo::from(self.cluster.container(cid).expect("live container"));
        let ctx = PolicyCtx::new(now, &self.cluster, &self.busy_until);
        if class != StartClass::Cold {
            self.policies.keepalive.on_reuse(&cinfo, &ctx);
        }
        self.policies
            .scaler
            .on_start(&info, class, wait, TimeDelta::ZERO, &ctx);
        if was_speculative {
            let idle = now.saturating_since(warm_at);
            self.policies.scaler.on_cold_outcome(func, Some(idle), &ctx);
        }
    }

    fn request_provision(&mut self, func: FunctionId, speculative: bool, now: TimePoint) {
        let mem = self.cluster.profile(func).mem_mb;
        let Some(worker) = self.cluster.pick_worker(mem) else {
            obs!(
                self.rec,
                ObsEvent::Defer {
                    at: now,
                    func,
                    speculative,
                }
            );
            self.deferred.push_back((func, speculative));
            return;
        };
        let mut evicted = Vec::new();
        if self.cluster.workers()[worker.0 as usize].free_mb() < mem as u64 {
            // Victim-selection provenance, snapshotted before the
            // REPLACE round mutates the idle set (recording path only).
            if self.rec.enabled() {
                let candidates = self.eviction_snapshot(worker, now);
                self.rec.record(ObsEvent::EvictCandidates {
                    at: now,
                    worker: worker.0,
                    incoming: func,
                    candidates,
                });
            }
            // REPLACE mirror of the trace-replay runtime (see
            // `crate::runtime`): cached cross-round heap when priorities
            // allow it, otherwise a per-round snapshot of the idle set.
            if self.use_evict_index {
                while self.cluster.workers()[worker.0 as usize].free_mb() < mem as u64 {
                    let popped = {
                        let cluster = &self.cluster;
                        let busy = &self.busy_until;
                        let ka = &self.policies.keepalive;
                        let ctx = PolicyCtx::new(now, cluster, busy);
                        self.evict_index.pop_min(worker, |cid| {
                            let c = cluster.container(cid)?;
                            if !c.is_idle() {
                                return None;
                            }
                            Some(ka.priority(&ContainerInfo::from(c), &ctx))
                        })
                    };
                    let Some((_, victim)) = popped else {
                        obs!(
                            self.rec,
                            ObsEvent::Defer {
                                at: now,
                                func,
                                speculative,
                            }
                        );
                        self.deferred.push_back((func, speculative));
                        return;
                    };
                    evicted.push(self.evict_container(victim, now, EvictReason::Replace));
                }
            } else {
                let candidates: Vec<(f64, ContainerId)> = {
                    let ctx = PolicyCtx::new(now, &self.cluster, &self.busy_until);
                    let ka = &self.policies.keepalive;
                    self.cluster.workers()[worker.0 as usize]
                        .idle
                        .iter()
                        .map(|&cid| {
                            let cinfo = ctx.container(cid).expect("idle containers are live");
                            (ka.priority(&cinfo, &ctx), cid)
                        })
                        .collect()
                };
                match self.cluster.scan() {
                    ScanMode::Indexed => {
                        let mut heap = RoundHeap::from_entries(candidates);
                        while self.cluster.workers()[worker.0 as usize].free_mb() < mem as u64 {
                            let Some((_, victim)) = heap.pop() else {
                                obs!(
                                    self.rec,
                                    ObsEvent::Defer {
                                        at: now,
                                        func,
                                        speculative,
                                    }
                                );
                                self.deferred.push_back((func, speculative));
                                return;
                            };
                            evicted.push(self.evict_container(victim, now, EvictReason::Replace));
                        }
                    }
                    ScanMode::Reference => {
                        let sorted = faas_sim::reference::sorted_eviction_candidates(candidates);
                        let mut victims = sorted.into_iter();
                        while self.cluster.workers()[worker.0 as usize].free_mb() < mem as u64 {
                            let Some((_, victim)) = victims.next() else {
                                obs!(
                                    self.rec,
                                    ObsEvent::Defer {
                                        at: now,
                                        func,
                                        speculative,
                                    }
                                );
                                self.deferred.push_back((func, speculative));
                                return;
                            };
                            evicted.push(self.evict_container(victim, now, EvictReason::Replace));
                        }
                    }
                }
            }
        }
        if !evicted.is_empty() {
            self.cluster.note_replace_round();
        }
        let cid = self.cluster.begin_provision(func, worker, now, speculative);
        self.note_memory(now);
        obs!(
            self.rec,
            ObsEvent::ProvisionBegin {
                at: now,
                cid: cid.0,
                func,
                worker: worker.0,
                speculative,
                // The interactive host has no fault model, hence no
                // retries: every provision is a first attempt.
                attempt: 0,
            }
        );
        let cinfo = ContainerInfo::from(self.cluster.container(cid).expect("just created"));
        let cold = {
            let ctx = PolicyCtx::new(now, &self.cluster, &self.busy_until);
            self.policies.keepalive.on_admit(&cinfo, &evicted, &ctx);
            self.policies
                .keepalive
                .provision_latency(func, &ctx)
                .unwrap_or_else(|| self.cluster.profile(func).cold_start)
        };
        self.schedule(
            Instant::now() + scale(cold, self.config.time_scale),
            Msg::ProvisionDone(cid),
        );
    }

    fn evict_container(
        &mut self,
        cid: ContainerId,
        now: TimePoint,
        reason: EvictReason,
    ) -> ContainerInfo {
        let was_unused = self
            .cluster
            .container(cid)
            .map(|c| c.speculative_unused)
            .unwrap_or(false);
        self.evict_index.leave(cid);
        let info = self.cluster.evict(cid, now);
        self.note_memory(now);
        obs!(
            self.rec,
            ObsEvent::Evict {
                at: now,
                cid: cid.0,
                func: info.func,
                worker: info.worker.0,
                reason,
                note: self.policies.keepalive.explain(),
            }
        );
        let ctx = PolicyCtx::new(now, &self.cluster, &self.busy_until);
        self.policies.keepalive.on_evict(&info, &ctx);
        if was_unused {
            self.policies.scaler.on_cold_outcome(info.func, None, &ctx);
        }
        info
    }

    /// Idle containers on `worker` with their keep-alive priorities, in
    /// eviction order — the [`ObsEvent::EvictCandidates`] provenance
    /// snapshot. Only called on the recording path.
    fn eviction_snapshot(&self, worker: WorkerId, now: TimePoint) -> Vec<(u64, f64)> {
        let ctx = PolicyCtx::new(now, &self.cluster, &self.busy_until);
        let ka = &self.policies.keepalive;
        let candidates: Vec<(f64, ContainerId)> = self.cluster.workers()[worker.0 as usize]
            .idle
            .iter()
            .map(|&cid| {
                let cinfo = ctx.container(cid).expect("idle containers are live");
                (ka.priority(&cinfo, &ctx), cid)
            })
            .collect();
        faas_sim::reference::sorted_eviction_candidates(candidates)
            .into_iter()
            .map(|(p, cid)| (cid.0, p))
            .collect()
    }

    /// Enters `cid` into the eviction index if it just became idle,
    /// caching its current priority. No-op unless cross-round caching
    /// is enabled.
    fn index_candidate(&mut self, cid: ContainerId, now: TimePoint) {
        if !self.use_evict_index {
            return;
        }
        let Some(c) = self.cluster.container(cid) else {
            return;
        };
        if !c.is_idle() {
            return;
        }
        let worker = c.worker;
        let priority = {
            let ctx = PolicyCtx::new(now, &self.cluster, &self.busy_until);
            self.policies
                .keepalive
                .priority(&ContainerInfo::from(c), &ctx)
        };
        self.evict_index.enter(worker, cid, priority);
    }

    fn pop_pending(&mut self, func: FunctionId, any: bool) -> Option<RequestId> {
        let rt = self.cluster.fn_runtime_mut(func);
        if any {
            rt.pending.pop_any().map(|(rid, _)| rid)
        } else {
            rt.pending.pop_flexible()
        }
    }

    fn retry_deferred(&mut self, now: TimePoint) {
        while let Some(&(func, speculative)) = self.deferred.front() {
            let mem = self.cluster.profile(func).mem_mb;
            if self.cluster.pick_worker(mem).is_none() {
                break;
            }
            self.deferred.pop_front();
            self.request_provision(func, speculative, now);
        }
    }

    fn note_memory(&mut self, now: TimePoint) {
        if self.config.sim.record_memory {
            let us = now.as_micros().max(self.last_memory_us);
            self.last_memory_us = us;
            self.memory.push(us, self.cluster.used_mb() as f64);
        }
    }
}

fn scale(d: TimeDelta, time_scale: f64) -> Duration {
    Duration::from_secs_f64(d.as_secs_f64() * time_scale)
}
