//! Edge cases of the policy-facing cluster queries that the indexed
//! refactor must not disturb: `oracle_earliest_free` and the
//! saturated-container views, across dead workers, provisioning-only
//! functions, and the exact saturation boundary.

use std::collections::HashMap;

use faas_sim::{ClusterState, ContainerId, PolicyCtx, WorkerId};
use faas_trace::{FunctionId, FunctionProfile, TimeDelta, TimePoint};

fn profiles(n: u32) -> Vec<FunctionProfile> {
    (0..n)
        .map(|i| {
            FunctionProfile::new(
                FunctionId(i),
                format!("f{i}"),
                100,
                TimeDelta::from_millis(50),
            )
        })
        .collect()
}

fn warm(cl: &mut ClusterState, func: u32, worker: u16) -> ContainerId {
    let id = cl.begin_provision(FunctionId(func), WorkerId(worker), TimePoint::ZERO, false);
    cl.finish_provision(id, TimePoint::ZERO);
    id
}

#[test]
fn oracle_earliest_free_is_none_for_provisioning_only_function() {
    let mut cl = ClusterState::new(&[1_000], profiles(1), 1);
    // Provisioning has begun but no container is warm yet.
    let _pending = cl.begin_provision(FunctionId(0), WorkerId(0), TimePoint::ZERO, false);
    let busy = HashMap::new();
    let ctx = PolicyCtx::new(TimePoint::from_secs(1), &cl, &busy);
    assert_eq!(ctx.oracle_earliest_free(FunctionId(0)), None);
    assert!(ctx.saturated_containers(FunctionId(0)).is_empty());
    assert_eq!(ctx.saturated_count(FunctionId(0)), 0);
}

#[test]
fn oracle_earliest_free_picks_global_minimum_across_containers() {
    let mut cl = ClusterState::new(&[1_000], profiles(1), 2);
    let a = warm(&mut cl, 0, 0);
    let b = warm(&mut cl, 0, 0);
    cl.occupy_thread(a, TimePoint::ZERO);
    cl.occupy_thread(b, TimePoint::ZERO);
    let mut busy = HashMap::new();
    busy.insert(
        a,
        vec![TimePoint::from_millis(900), TimePoint::from_millis(400)],
    );
    busy.insert(b, vec![TimePoint::from_millis(700)]);
    let ctx = PolicyCtx::new(TimePoint::from_millis(100), &cl, &busy);
    assert_eq!(
        ctx.oracle_earliest_free(FunctionId(0)),
        Some(TimePoint::from_millis(400))
    );
}

#[test]
fn dead_workers_drop_out_of_oracle_and_saturation_views() {
    let mut cl = ClusterState::new(&[1_000, 1_000], profiles(1), 1);
    let doomed = warm(&mut cl, 0, 0);
    let survivor = warm(&mut cl, 0, 1);
    cl.occupy_thread(doomed, TimePoint::ZERO);
    cl.occupy_thread(survivor, TimePoint::ZERO);
    let mut busy = HashMap::new();
    busy.insert(doomed, vec![TimePoint::from_millis(200)]);
    busy.insert(survivor, vec![TimePoint::from_millis(800)]);

    cl.mark_worker_down(WorkerId(0));
    for cid in cl.containers_on(WorkerId(0)) {
        let _ = cl.crash_evict(cid, TimePoint::from_millis(100));
        busy.remove(&cid);
    }

    let ctx = PolicyCtx::new(TimePoint::from_millis(100), &cl, &busy);
    // The dead worker's container (and its earlier free time) is gone.
    assert_eq!(
        ctx.oracle_earliest_free(FunctionId(0)),
        Some(TimePoint::from_millis(800))
    );
    let saturated: Vec<ContainerId> = ctx.saturated_iter(FunctionId(0)).map(|c| c.id).collect();
    assert_eq!(saturated, vec![survivor]);
    // And the crashed worker can no longer host provisions.
    assert!(!cl.worker_is_alive(WorkerId(0)));
    assert_eq!(cl.pick_worker(100), Some(WorkerId(1)));
}

#[test]
fn saturation_flips_exactly_at_thread_capacity() {
    let mut cl = ClusterState::new(&[1_000], profiles(1), 2);
    let id = warm(&mut cl, 0, 0);
    let busy = HashMap::new();

    // 1 of 2 threads: not saturated, still schedulable.
    cl.occupy_thread(id, TimePoint::ZERO);
    {
        let ctx = PolicyCtx::new(TimePoint::ZERO, &cl, &busy);
        assert_eq!(ctx.saturated_count(FunctionId(0)), 0);
    }
    assert_eq!(cl.pick_available(FunctionId(0)), Some(id));

    // 2 of 2 threads: saturated, invisible to the free-thread pool.
    cl.occupy_thread(id, TimePoint::ZERO);
    {
        let ctx = PolicyCtx::new(TimePoint::ZERO, &cl, &busy);
        assert_eq!(ctx.saturated_count(FunctionId(0)), 1);
        let ids: Vec<ContainerId> = ctx.saturated_iter(FunctionId(0)).map(|c| c.id).collect();
        assert_eq!(ids, vec![id]);
    }
    assert_eq!(cl.pick_available(FunctionId(0)), None);

    // Releasing one thread crosses back below the boundary.
    cl.release_thread(id, TimePoint::ZERO);
    {
        let ctx = PolicyCtx::new(TimePoint::ZERO, &cl, &busy);
        assert_eq!(ctx.saturated_count(FunctionId(0)), 0);
    }
    assert_eq!(cl.pick_available(FunctionId(0)), Some(id));
}

#[test]
fn saturated_views_agree_between_vec_and_iter_flavors() {
    let mut cl = ClusterState::new(&[2_000], profiles(2), 1);
    let a = warm(&mut cl, 0, 0);
    let _idle = warm(&mut cl, 0, 0);
    let b = warm(&mut cl, 0, 0);
    cl.occupy_thread(a, TimePoint::ZERO);
    cl.occupy_thread(b, TimePoint::ZERO);
    let busy = HashMap::new();
    let ctx = PolicyCtx::new(TimePoint::ZERO, &cl, &busy);
    let from_vec: Vec<ContainerId> = ctx
        .saturated_containers(FunctionId(0))
        .iter()
        .map(|c| c.id)
        .collect();
    let from_iter: Vec<ContainerId> = ctx.saturated_iter(FunctionId(0)).map(|c| c.id).collect();
    assert_eq!(from_vec, from_iter);
    assert_eq!(from_vec, vec![a, b]);
    // A function with no containers at all yields empty views.
    assert!(ctx.saturated_containers(FunctionId(1)).is_empty());
    assert_eq!(ctx.saturated_iter(FunctionId(1)).count(), 0);
}
