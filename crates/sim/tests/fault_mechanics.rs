//! Mechanics of the fault-injection subsystem: provision failures with
//! retry/backoff, worker crashes with re-execution, straggler cold
//! starts, and the deferred-provision retry path under memory pressure
//! combined with faults. Debug builds additionally assert the engine's
//! structural invariants after every event, so each of these runs also
//! exercises `InvariantChecker`.

use faas_sim::{baseline_lru_stack, run, FaultPlan, SimConfig, StartClass, WorkerId};
use faas_trace::{FunctionId, FunctionProfile, Invocation, TimeDelta, TimePoint, Trace};

fn one_fn_trace(arrivals_ms: &[u64], exec_ms: u64, cold_ms: u64, mem: u32) -> Trace {
    let f = FunctionProfile::new(FunctionId(0), "f", mem, TimeDelta::from_millis(cold_ms));
    let invs = arrivals_ms
        .iter()
        .map(|&ms| Invocation {
            func: FunctionId(0),
            arrival: TimePoint::from_millis(ms),
            exec: TimeDelta::from_millis(exec_ms),
        })
        .collect();
    Trace::new(vec![f], invs).expect("valid")
}

#[test]
fn provision_failures_retry_until_success() {
    // One request, high failure rate: the provision fails some number of
    // times, backs off, and eventually succeeds (p < 1 guarantees
    // termination almost surely; this seed terminates quickly).
    let trace = one_fn_trace(&[0], 50, 100, 128);
    let config = SimConfig::default().workers_mb(vec![1024]).faults(
        FaultPlan::none()
            .seed(3)
            .provision_failures(0.8)
            .retry_backoff(TimeDelta::from_millis(10), TimeDelta::from_millis(80)),
    );
    let report = run(&trace, &config, baseline_lru_stack());
    assert_eq!(report.requests.len(), 1);
    assert_eq!(report.requests[0].class, StartClass::Cold);
    assert!(
        report.provision_failures > 0,
        "seed 3 at p=0.8 must fail at least once"
    );
    // Each failure burns the full cold start plus backoff before the
    // next attempt, so the wait exceeds a single cold start.
    assert!(
        report.requests[0].wait > TimeDelta::from_millis(100),
        "wait {:?} should include failed attempts",
        report.requests[0].wait
    );
    // created = failures + the one success.
    assert_eq!(report.containers_created, report.provision_failures + 1);
}

#[test]
fn straggler_stretches_cold_start() {
    let trace = one_fn_trace(&[0], 50, 100, 128);
    let config = SimConfig::default()
        .workers_mb(vec![1024])
        .faults(FaultPlan::none().seed(1).stragglers(0.99, 1.5, 20.0));
    let report = run(&trace, &config, baseline_lru_stack());
    assert_eq!(report.requests.len(), 1);
    assert_eq!(report.provision_failures, 0);
    // p = 0.99: this seed stretches the single cold start.
    assert!(
        report.requests[0].wait > TimeDelta::from_millis(100),
        "wait {:?} not stretched",
        report.requests[0].wait
    );
    // The stretch factor is capped at 20x.
    assert!(report.requests[0].wait <= TimeDelta::from_millis(2_000));
}

#[test]
fn worker_crash_reexecutes_inflight_request() {
    // Two workers; the request runs on worker 0 (ties break to the
    // lowest id) when its worker crashes mid-execution at t = 1 s. It is
    // re-queued, re-provisioned on worker 1, and re-executed.
    let trace = one_fn_trace(&[0], 10_000, 100, 128);
    let config = SimConfig::default()
        .workers_mb(vec![1024, 1024])
        .faults(FaultPlan::none().crash_worker(TimePoint::from_secs(1), WorkerId(0)));
    let report = run(&trace, &config, baseline_lru_stack());
    assert_eq!(
        report.requests.len(),
        1,
        "exactly one (re-)execution recorded"
    );
    assert_eq!(report.crash_evictions, 1);
    assert_eq!(report.containers_created, 2);
    let r = &report.requests[0];
    assert_eq!(r.class, StartClass::Cold);
    // Arrived at 0, crashed at 1000 ms, re-provisioned for 100 ms.
    assert_eq!(r.wait, TimeDelta::from_millis(1_100));
    assert_eq!(report.finished_at, TimePoint::from_millis(11_100));
}

#[test]
fn crash_of_idle_worker_only_drops_containers() {
    // The request finishes at t = 150 ms; the crash at t = 10 s evicts
    // the idle container but re-executes nothing.
    let trace = one_fn_trace(&[0], 50, 100, 128);
    let config = SimConfig::default()
        .workers_mb(vec![1024, 1024])
        .faults(FaultPlan::none().crash_worker(TimePoint::from_secs(10), WorkerId(0)));
    let report = run(&trace, &config, baseline_lru_stack());
    assert_eq!(report.requests.len(), 1);
    assert_eq!(report.requests[0].wait, TimeDelta::from_millis(100));
    assert_eq!(report.crash_evictions, 1);
    assert_eq!(report.containers_created, 1);
}

#[test]
fn deferred_retry_under_memory_pressure_and_faults() {
    // The worker fits exactly one 600 MB container, so every second
    // function's provision is deferred behind the first; provision
    // failures and a mid-run crash stress retry_deferred's FIFO
    // head-blocking drain. Every request must still complete.
    let f0 = FunctionProfile::new(FunctionId(0), "a", 600, TimeDelta::from_millis(100));
    let f1 = FunctionProfile::new(FunctionId(1), "b", 600, TimeDelta::from_millis(100));
    let mut invs = Vec::new();
    for i in 0..10u64 {
        invs.push(Invocation {
            func: FunctionId((i % 2) as u32),
            arrival: TimePoint::from_millis(i * 40),
            exec: TimeDelta::from_millis(120),
        });
    }
    let trace = Trace::new(vec![f0, f1], invs).expect("valid");
    let config = SimConfig::default().workers_mb(vec![1000, 1000]).faults(
        FaultPlan::none()
            .seed(11)
            .provision_failures(0.3)
            .retry_backoff(TimeDelta::from_millis(20), TimeDelta::from_millis(160))
            .crash_worker(TimePoint::from_millis(500), WorkerId(0)),
    );
    let report = run(&trace, &config, baseline_lru_stack());
    // Conservation: every arrival is eventually served exactly once.
    assert_eq!(report.requests.len(), trace.len());
    assert!(report.crash_evictions >= 1);
}

#[test]
fn deferred_retry_without_faults_still_drains_fifo() {
    // Memory-pressure-only coverage of retry_deferred: three functions
    // compete for a single slot; deferred provisions drain in FIFO order
    // as each predecessor's container is evicted.
    let profiles: Vec<FunctionProfile> = (0..3)
        .map(|i| {
            FunctionProfile::new(
                FunctionId(i),
                format!("f{i}"),
                600,
                TimeDelta::from_millis(50),
            )
        })
        .collect();
    let invs: Vec<Invocation> = (0..3u64)
        .map(|i| Invocation {
            func: FunctionId(i as u32),
            arrival: TimePoint::from_millis(i), // nearly concurrent
            exec: TimeDelta::from_millis(30),
        })
        .collect();
    let trace = Trace::new(profiles, invs).expect("valid");
    let config = SimConfig::default().workers_mb(vec![1000]);
    let report = run(&trace, &config, baseline_lru_stack());
    assert_eq!(report.requests.len(), 3);
    // FIFO drain: requests finish in arrival order of their functions.
    let mut waits: Vec<TimeDelta> = report.requests.iter().map(|r| r.wait).collect();
    let sorted = {
        let mut s = waits.clone();
        s.sort();
        s
    };
    waits.sort();
    assert_eq!(waits, sorted);
    assert_eq!(report.containers_evicted, 2);
}

#[test]
fn faulty_runs_are_deterministic() {
    let trace = faas_trace::gen::azure(5).functions(8).minutes(1).build();
    let config = SimConfig::default().workers_mb(vec![2048, 2048]).faults(
        FaultPlan::none()
            .seed(9)
            .provision_failures(0.2)
            .stragglers(0.1, 1.5, 20.0)
            .crash_worker(TimePoint::from_secs(20), WorkerId(0)),
    );
    let a = run(&trace, &config, baseline_lru_stack());
    let b = run(&trace, &config, baseline_lru_stack());
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    // A different fault seed must actually change something.
    let other = SimConfig::default().workers_mb(vec![2048, 2048]).faults(
        FaultPlan::none()
            .seed(10)
            .provision_failures(0.2)
            .stragglers(0.1, 1.5, 20.0)
            .crash_worker(TimePoint::from_secs(20), WorkerId(0)),
    );
    let c = run(&trace, &other, baseline_lru_stack());
    assert_ne!(
        format!("{a:?}"),
        format!("{c:?}"),
        "fault seed must steer the run"
    );
}

#[test]
fn none_plan_reports_zero_fault_counters() {
    let trace = one_fn_trace(&[0, 500, 1_000], 50, 100, 128);
    let config = SimConfig::default().workers_mb(vec![1024]);
    let report = run(&trace, &config, baseline_lru_stack());
    assert_eq!(report.provision_failures, 0);
    assert_eq!(report.crash_evictions, 0);
}

/// Ledger edge: a crash mid-provision charges the interrupted residency
/// to the cold-start class (DESIGN.md §11), and the re-provision on the
/// surviving worker charges its own full window. Every value is exact
/// integer MB·µs, derived by hand from the event schedule.
#[test]
fn ledger_charges_crash_mid_provision_to_cold_start() {
    // 10 s cold start, crash at 1 s: worker 0's container dies while
    // provisioning; the request re-provisions on worker 1 (10 s), runs
    // 50 ms, and the run settles at the final release.
    let trace = one_fn_trace(&[0], 50, 10_000, 128);
    let config = SimConfig::default()
        .workers_mb(vec![1024, 1024])
        .faults(FaultPlan::none().crash_worker(TimePoint::from_secs(1), WorkerId(0)));
    let report = run(&trace, &config, baseline_lru_stack());
    assert_eq!(report.requests.len(), 1);
    assert_eq!(report.crash_evictions, 1);
    let l = &report.ledger;
    // Interrupted provision: 128 MB x 1 s; successful one: 128 MB x 10 s.
    assert_eq!(l.cold_start_mb_us, 128 * (1_000_000 + 10_000_000));
    // Warm residency: from warm-up (11 s) to settlement at the release
    // (11.05 s) — the 50 ms execution window, never idle.
    assert_eq!(l.keep_warm_mb_us, 128 * 50_000);
    assert_eq!(l.idle_mb_us, 0);
    assert_eq!(l.speculative_mb_us, 0);
    assert_eq!(l.dispatches, 1);
    assert_eq!(l.replace_rounds, 0);
    assert_eq!(report.ledger_settled_at, TimePoint::from_millis(11_050));
}

/// Ledger edge: a crash that kills an idle warm container closes both
/// the keep-warm window (from warm-up) and the idle window (from the
/// last release) at the crash instant.
#[test]
fn ledger_charges_idle_crash_to_keep_warm_and_idle() {
    // Warm at 100 ms, executes to 150 ms, idles until the crash at 10 s.
    let trace = one_fn_trace(&[0], 50, 100, 128);
    let config = SimConfig::default()
        .workers_mb(vec![1024, 1024])
        .faults(FaultPlan::none().crash_worker(TimePoint::from_secs(10), WorkerId(0)));
    let report = run(&trace, &config, baseline_lru_stack());
    assert_eq!(report.requests.len(), 1);
    assert_eq!(report.crash_evictions, 1);
    let l = &report.ledger;
    assert_eq!(l.cold_start_mb_us, 128 * 100_000);
    assert_eq!(l.keep_warm_mb_us, 128 * (10_000_000 - 100_000));
    assert_eq!(l.idle_mb_us, 128 * (10_000_000 - 150_000));
    assert_eq!(l.speculative_mb_us, 0);
    assert_eq!(l.dispatches, 1);
    assert_eq!(report.ledger_settled_at, TimePoint::from_secs(10));
}

/// Ledger edge: a speculative racer that *loses* — the busy container
/// frees first and serves the blocked request — is charged its entire
/// residency (provisioning + warm) as speculative waste, even though it
/// was never evicted (`wasted_cold_starts` only counts destroyed
/// racers; the settlement charge is what makes the loser visible).
#[test]
fn ledger_charges_speculative_loser_in_full() {
    use faas_sim::{LruKeepAlive, PolicyCtx, PolicyStack, RequestInfo, ScaleDecision, Scaler};

    /// Basic speculative scaling: always race a blocked request.
    #[derive(Debug, Default)]
    struct AlwaysRace;
    impl Scaler for AlwaysRace {
        fn name(&self) -> &str {
            "race"
        }
        fn on_blocked(&mut self, _r: &RequestInfo, _c: &PolicyCtx<'_>) -> ScaleDecision {
            ScaleDecision::Race
        }
    }

    // r1: cold 0 -> 500 ms, executes 500 -> 700. r2 arrives at 600,
    // blocked behind the busy container; the racer starts at 600 but
    // only turns warm at 1100 — r1's container frees at 700 and wins.
    let f = FunctionProfile::new(FunctionId(0), "f", 400, TimeDelta::from_millis(500));
    let iv = |at_ms: u64, exec_ms: u64| Invocation {
        func: FunctionId(0),
        arrival: TimePoint::from_millis(at_ms),
        exec: TimeDelta::from_millis(exec_ms),
    };
    let trace = Trace::new(vec![f], vec![iv(0, 200), iv(600, 200)]).expect("valid");
    let config = SimConfig::default().workers_mb(vec![2_048]);
    let stack = PolicyStack::new(Box::new(LruKeepAlive), Box::new(AlwaysRace));
    let report = run(&trace, &config, stack);
    assert_eq!(report.requests.len(), 2);
    assert_eq!(report.requests[1].class, StartClass::DelayedWarm);
    assert_eq!(report.requests[1].wait, TimeDelta::from_millis(100));
    let l = &report.ledger;
    // Two full 500 ms provisions (the winner's and the loser's).
    assert_eq!(l.cold_start_mb_us, 400 * (500_000 + 500_000));
    // Winner warm 500 -> settlement at 1100 (the loser's warm-up, the
    // run's last charge); loser warm for zero time.
    assert_eq!(l.keep_warm_mb_us, 400 * 600_000);
    // Winner idle only 900 -> 1100 (r2 occupied it 700 -> 900).
    assert_eq!(l.idle_mb_us, 400 * 200_000);
    // The loser's whole life, 600 -> 1100, is speculative waste.
    assert_eq!(l.speculative_mb_us, 400 * 500_000);
    assert_eq!(l.dispatches, 2);
    assert_eq!(l.replace_rounds, 0);
    // Never destroyed, so the wasted-start *counter* stays zero: the
    // ledger is what accounts for surviving losers.
    assert_eq!(report.wasted_cold_starts, 0);
    assert_eq!(report.ledger_settled_at, TimePoint::from_millis(1_100));
}

/// Ledger edge: REPLACE evictions that land on sharded epoch barriers
/// (provision failures, backoff retries, and a mid-run crash all force
/// rollback/replay around them) must reproduce the sequential ledger
/// field-for-field — eviction charges are part of cluster state, so
/// checkpoint restore must rewind them exactly.
#[test]
fn ledger_survives_evictions_at_epoch_barriers() {
    let trace = faas_trace::gen::azure(5).functions(8).minutes(1).build();
    let config = SimConfig::default().workers_mb(vec![2_048, 2_048]).faults(
        FaultPlan::none()
            .seed(9)
            .provision_failures(0.2)
            .retry_backoff(TimeDelta::from_millis(50), TimeDelta::from_secs(2))
            .crash_worker(TimePoint::from_secs(20), WorkerId(0)),
    );
    let seq = run(&trace, &config, baseline_lru_stack());
    assert!(seq.containers_evicted > 0, "workload must evict");
    assert!(seq.ledger.replace_rounds > 0, "workload must REPLACE");
    for shards in [2, 8] {
        let sharded = run(&trace, &config.clone().shards(shards), baseline_lru_stack());
        let (a, b) = (&sharded.ledger, &seq.ledger);
        assert_eq!(a.keep_warm_mb_us, b.keep_warm_mb_us, "shards={shards}");
        assert_eq!(a.idle_mb_us, b.idle_mb_us, "shards={shards}");
        assert_eq!(a.cold_start_mb_us, b.cold_start_mb_us, "shards={shards}");
        assert_eq!(a.speculative_mb_us, b.speculative_mb_us, "shards={shards}");
        assert_eq!(a.dispatches, b.dispatches, "shards={shards}");
        assert_eq!(a.replace_rounds, b.replace_rounds, "shards={shards}");
        assert_eq!(
            sharded.ledger_settled_at, seq.ledger_settled_at,
            "shards={shards}"
        );
    }
}

/// Regression: a cold-only waiter whose provision is stolen by crash
/// refugees must not be stranded. Crash refugees are re-queued as
/// *flexible* entries at the head of the function channel, so the
/// `ProvisionDone`s that were started for a later cold-only arrival
/// `pop_any` the refugees instead; the cold-only entry is invisible to
/// `pop_flexible` and, before the repair in `on_provision_done`, no
/// further provision would ever pop it — the run span ticks forever
/// with `incomplete == 1`.
#[test]
fn cold_only_waiter_survives_refugees_stealing_its_provision() {
    use faas_sim::{AlwaysCold, LruKeepAlive, PolicyStack};
    let profiles = vec![
        // Fills worker 0 exactly, pinning every f0 container to worker 1.
        FunctionProfile::new(FunctionId(0), "filler", 1_000, TimeDelta::from_millis(50)),
        FunctionProfile::new(FunctionId(1), "f0", 400, TimeDelta::from_millis(100)),
    ];
    let iv = |f: u32, at_ms: u64, exec_ms: u64| Invocation {
        func: FunctionId(f),
        arrival: TimePoint::from_millis(at_ms),
        exec: TimeDelta::from_millis(exec_ms),
    };
    let invocations = vec![
        iv(0, 0, 30_000),    // filler occupies all of worker 0
        iv(1, 200, 20_000),  // runs on worker 1
        iv(1, 400, 20_000),  // blocked, cold-only, second container on worker 1
        iv(1, 2_000, 1_000), // cold-only; its provision defers (no room)
    ];
    let trace = Trace::new(profiles, invocations).expect("valid");
    // Crash kills both running f0 containers: the two refugees re-queue
    // as flexible entries ahead of the cold-only rid3.
    let plan = FaultPlan::none()
        .seed(1)
        .crash_worker(TimePoint::from_secs(1), WorkerId(1));
    let config = SimConfig::default()
        .workers_mb(vec![1_000, 1_000])
        .faults(plan);
    let mk = || PolicyStack::new(Box::new(LruKeepAlive), Box::new(AlwaysCold));
    let seq = run(&trace, &config, mk());
    assert_eq!(seq.requests.len(), 4, "every request must complete");
    for shards in [2, 3] {
        let sharded = run(&trace, &config.clone().shards(shards), mk());
        assert_eq!(
            format!("{sharded:?}"),
            format!("{seq:?}"),
            "shards={shards} diverged on the repair path"
        );
    }
}
