//! Epoch-boundary mechanics of the sharded engine (DESIGN.md §9).
//!
//! `tests/equivalence.rs` (workspace root) proves sharded ≡ sequential
//! on random workloads; this suite pins the awkward epoch edges by
//! construction: a request admitted in the same epoch a cross-shard
//! worker crashes, provisioning completing exactly on a barrier event,
//! eviction of a container whose owning shard is mid-epoch, and more
//! shards than workers/functions.

use faas_sim::{
    baseline_lru_stack, run, AlwaysCold, FaultPlan, PolicyCtx, PolicyStack, RequestInfo,
    ScaleDecision, Scaler, SimConfig, StartClass, WorkerId,
};
use faas_trace::{gen, FunctionId, FunctionProfile, Invocation, TimeDelta, TimePoint, Trace};

/// Scaler that always races (provision + wait, first wins) — the
/// decision mix that exercises pending queues and deferred provisions.
#[derive(Debug, Default)]
struct AlwaysRace;

impl Scaler for AlwaysRace {
    fn name(&self) -> &str {
        "race"
    }
    fn on_blocked(&mut self, _r: &RequestInfo, _c: &PolicyCtx<'_>) -> ScaleDecision {
        ScaleDecision::Race
    }
}

fn race_stack() -> PolicyStack {
    PolicyStack::new(Box::new(faas_sim::LruKeepAlive), Box::new(AlwaysRace))
}

/// Render a report to one comparable string (byte-identity oracle).
fn fingerprint(report: &faas_sim::SimReport) -> String {
    format!("{report:?}")
}

fn assert_shards_match(
    trace: &Trace,
    config: &SimConfig,
    mk: fn() -> PolicyStack,
    counts: &[usize],
) {
    let seq = run(trace, &config.clone().shards(1), mk());
    let want = fingerprint(&seq);
    for &s in counts {
        let sharded = run(trace, &config.clone().shards(s), mk());
        assert_eq!(
            fingerprint(&sharded),
            want,
            "shards={s} diverged from the sequential run"
        );
    }
}

fn two_fn_profiles() -> Vec<FunctionProfile> {
    vec![
        FunctionProfile::new(FunctionId(0), "a", 400, TimeDelta::from_millis(150)),
        FunctionProfile::new(FunctionId(1), "b", 400, TimeDelta::from_millis(250)),
    ]
}

#[test]
fn sharded_matches_sequential_on_generated_trace() {
    let trace = gen::azure(11).functions(13).minutes(2).build();
    let config = SimConfig::default().workers_mb(vec![3_072, 3_072]);
    assert_shards_match(&trace, &config, baseline_lru_stack, &[2, 3, 7]);
    assert_shards_match(&trace, &config, race_stack, &[2, 3, 7]);
}

/// More shards than functions AND workers: surplus shards own nothing
/// and must degrade to no-ops without perturbing the merge order.
#[test]
fn more_shards_than_workers_and_functions() {
    let trace = gen::fc(5).functions(3).minutes(1).build();
    let config = SimConfig::default().workers_mb(vec![2_048, 2_048]);
    assert_shards_match(&trace, &config, race_stack, &[4, 16]);
}

/// A request admitted (cold-started) in the same epoch a worker in a
/// *different* shard's territory crashes: the crash must void exactly
/// the same records and re-queue the same refugees at every shard count.
#[test]
fn admission_same_epoch_as_cross_shard_crash() {
    let profiles = two_fn_profiles();
    let mut invocations = Vec::new();
    // fn0 keeps worker 0 busy; fn1 cold-starts right around the crash.
    for i in 0..12u64 {
        invocations.push(Invocation {
            func: FunctionId(0),
            arrival: TimePoint::from_millis(i * 40),
            exec: TimeDelta::from_millis(600),
        });
    }
    for i in 0..6u64 {
        invocations.push(Invocation {
            func: FunctionId(1),
            arrival: TimePoint::from_millis(480 + i * 7),
            exec: TimeDelta::from_millis(300),
        });
    }
    invocations.sort_by_key(|inv| inv.arrival);
    let trace = Trace::new(profiles, invocations).expect("valid");
    let plan = FaultPlan::none()
        .seed(9)
        .crash_worker(TimePoint::from_millis(500), WorkerId(0));
    let config = SimConfig::default()
        .workers_mb(vec![2_000, 2_000])
        .faults(plan);
    assert_shards_match(&trace, &config, race_stack, &[2, 3]);
}

/// Provisioning that completes exactly at a tick boundary: the
/// `ProvisionDone` and `Tick` conductor events carry the same timestamp,
/// so the barrier must order them by lineage, not time alone.
#[test]
fn provision_completes_exactly_on_a_barrier() {
    let profiles = two_fn_profiles();
    // Tick fires at 1000ms (tick(1s)); fn1's cold start is timed so
    // ProvisionDone lands exactly at 1000ms too: arrival 750 + cold 250.
    let invocations = vec![
        Invocation {
            func: FunctionId(0),
            arrival: TimePoint::ZERO,
            exec: TimeDelta::from_millis(2_000),
        },
        Invocation {
            func: FunctionId(1),
            arrival: TimePoint::from_millis(750),
            exec: TimeDelta::from_millis(100),
        },
        Invocation {
            func: FunctionId(1),
            arrival: TimePoint::from_millis(1_000),
            exec: TimeDelta::from_millis(100),
        },
    ];
    let trace = Trace::new(profiles, invocations).expect("valid");
    let config = SimConfig::default()
        .workers_mb(vec![1_000])
        .tick(TimeDelta::from_secs(1));
    assert_shards_match(&trace, &config, race_stack, &[2]);
}

/// Eviction (REPLACE) of a container whose owning shard is mid-epoch:
/// fn0's shard is busy processing warm hits while fn1's admission needs
/// to evict fn0's idle container. The barrier must roll fn0's shard
/// back so the eviction happens against the exact sequential state.
#[test]
fn eviction_of_container_while_owner_shard_is_mid_epoch() {
    let profiles = vec![
        FunctionProfile::new(FunctionId(0), "hot", 300, TimeDelta::from_millis(100)),
        FunctionProfile::new(FunctionId(1), "big", 900, TimeDelta::from_millis(400)),
    ];
    let mut invocations = Vec::new();
    // A dense warm-hit stream for fn0 (its shard stays mid-epoch), then
    // fn1 arrives and must REPLACE one of fn0's idle containers.
    for i in 0..40u64 {
        invocations.push(Invocation {
            func: FunctionId(0),
            arrival: TimePoint::from_millis(i * 25),
            exec: TimeDelta::from_millis(20),
        });
    }
    invocations.push(Invocation {
        func: FunctionId(1),
        arrival: TimePoint::from_millis(430),
        exec: TimeDelta::from_millis(50),
    });
    invocations.sort_by_key(|inv| inv.arrival);
    let trace = Trace::new(profiles, invocations).expect("valid");
    let config = SimConfig::default().workers_mb(vec![1_100]);
    assert_shards_match(&trace, &config, race_stack, &[2]);
    assert_shards_match(&trace, &config, baseline_lru_stack, &[2]);
}

/// AlwaysCold forces every blocked arrival through the conductor's
/// provisioning path — the worst case for the conductor fast path.
#[test]
fn cold_heavy_workload_matches() {
    let trace = gen::azure(23).functions(8).minutes(1).build();
    let config = SimConfig::default().workers_mb(vec![1_500, 1_500]);
    let mk = || PolicyStack::new(Box::new(faas_sim::LruKeepAlive), Box::new(AlwaysCold));
    let seq = run(&trace, &config.clone().shards(1), mk());
    // The scenario must actually stress the conductor for the test to
    // mean anything: dozens of blocked arrivals take the provisioning
    // path (the generated workload yields ~98 of 483).
    let cold = seq
        .requests
        .iter()
        .filter(|r| r.class != StartClass::Warm)
        .count();
    assert!(cold >= 50, "only {cold} cold starts; conductor barely used");
    for s in [2, 5] {
        let sharded = run(&trace, &config.clone().shards(s), mk());
        assert_eq!(fingerprint(&sharded), fingerprint(&seq), "shards={s}");
    }
}
