//! Integration tests of engine mechanics that need whole-run scenarios:
//! tick-driven expiration, prewarming, provisioning-latency overrides,
//! and memory time-series accounting.

use faas_sim::{
    run, AlwaysCold, ContainerId, ContainerInfo, KeepAlive, PolicyCtx, PolicyStack, Prewarm,
    SimConfig, StartClass,
};
use faas_trace::{FunctionId, FunctionProfile, Invocation, TimeDelta, TimePoint, Trace};

/// LRU keep-alive with a TTL expiration, for tick tests.
#[derive(Debug)]
struct ExpiringLru {
    ttl: TimeDelta,
}

impl KeepAlive for ExpiringLru {
    fn name(&self) -> &str {
        "expiring-lru"
    }
    fn priority(&self, c: &ContainerInfo, _ctx: &PolicyCtx<'_>) -> f64 {
        c.last_used.as_micros() as f64
    }
    fn expirations(&mut self, ctx: &PolicyCtx<'_>) -> Vec<ContainerId> {
        ctx.all_containers()
            .into_iter()
            .filter(|c| c.threads_in_use == 0 && ctx.now.saturating_since(c.last_used) >= self.ttl)
            .map(|c| c.id)
            .collect()
    }
}

fn trace_two_hits_apart(gap_ms: u64) -> Trace {
    let f = FunctionProfile::new(FunctionId(0), "f", 128, TimeDelta::from_millis(100));
    let invs = vec![
        Invocation {
            func: FunctionId(0),
            arrival: TimePoint::ZERO,
            exec: TimeDelta::from_millis(10),
        },
        Invocation {
            func: FunctionId(0),
            arrival: TimePoint::from_millis(gap_ms),
            exec: TimeDelta::from_millis(10),
        },
    ];
    Trace::new(vec![f], invs).expect("valid")
}

#[test]
fn ttl_expiration_forces_second_cold_start() {
    // Container expires after 1 s idle; second request 5 s later must
    // cold start again even though memory is ample.
    let stack = PolicyStack::new(
        Box::new(ExpiringLru {
            ttl: TimeDelta::from_secs(1),
        }),
        Box::new(AlwaysCold),
    );
    let config = SimConfig::default()
        .workers_mb(vec![10_000])
        .tick(TimeDelta::from_millis(200));
    let report = run(&trace_two_hits_apart(5_000), &config, stack);
    assert_eq!(report.count(StartClass::Cold), 2);
    assert_eq!(report.containers_evicted, 1);
}

#[test]
fn without_expiration_second_hit_is_warm() {
    let stack = PolicyStack::new(
        Box::new(ExpiringLru {
            ttl: TimeDelta::from_secs(60),
        }),
        Box::new(AlwaysCold),
    );
    let config = SimConfig::default()
        .workers_mb(vec![10_000])
        .tick(TimeDelta::from_millis(200));
    let report = run(&trace_two_hits_apart(5_000), &config, stack);
    assert_eq!(report.count(StartClass::Cold), 1);
    assert_eq!(report.count(StartClass::Warm), 1);
}

/// Prewarms one container for fn0 on the very first tick.
#[derive(Debug)]
struct PrewarmOnce {
    done: bool,
}

impl Prewarm for PrewarmOnce {
    fn name(&self) -> &str {
        "prewarm-once"
    }
    fn on_tick(&mut self, _ctx: &PolicyCtx<'_>) -> Vec<FunctionId> {
        if self.done {
            Vec::new()
        } else {
            self.done = true;
            vec![FunctionId(0)]
        }
    }
}

#[test]
fn prewarmed_container_turns_cold_start_into_warm() {
    // Request arrives at t=2s; prewarm fires at the first tick (500 ms)
    // and the container is warm (cold start 100 ms) well before arrival.
    let f = FunctionProfile::new(FunctionId(0), "f", 128, TimeDelta::from_millis(100));
    let invs = vec![Invocation {
        func: FunctionId(0),
        arrival: TimePoint::from_secs(2),
        exec: TimeDelta::from_millis(10),
    }];
    let trace = Trace::new(vec![f], invs).expect("valid");
    let stack = PolicyStack::new(
        Box::new(ExpiringLru {
            ttl: TimeDelta::from_secs(600),
        }),
        Box::new(AlwaysCold),
    )
    .with_prewarm(Box::new(PrewarmOnce { done: false }));
    let config = SimConfig::default()
        .workers_mb(vec![10_000])
        .tick(TimeDelta::from_millis(500));
    let report = run(&trace, &config, stack);
    assert_eq!(report.count(StartClass::Warm), 1);
    assert_eq!(report.containers_created, 1);
}

/// Keep-alive that halves provisioning latency (layer-sharing stand-in).
#[derive(Debug)]
struct HalfCold;

impl KeepAlive for HalfCold {
    fn name(&self) -> &str {
        "half-cold"
    }
    fn priority(&self, c: &ContainerInfo, _ctx: &PolicyCtx<'_>) -> f64 {
        c.last_used.as_micros() as f64
    }
    fn provision_latency(&mut self, func: FunctionId, ctx: &PolicyCtx<'_>) -> Option<TimeDelta> {
        Some(ctx.profile(func).cold_start.scale(0.5))
    }
}

#[test]
fn provision_latency_override_shortens_cold_start() {
    let f = FunctionProfile::new(FunctionId(0), "f", 128, TimeDelta::from_millis(400));
    let invs = vec![Invocation {
        func: FunctionId(0),
        arrival: TimePoint::ZERO,
        exec: TimeDelta::from_millis(10),
    }];
    let trace = Trace::new(vec![f], invs).expect("valid");
    let stack = PolicyStack::new(Box::new(HalfCold), Box::new(AlwaysCold));
    let report = run(&trace, &SimConfig::default(), stack);
    assert_eq!(report.requests[0].wait, TimeDelta::from_millis(200));
}

#[test]
fn memory_timeseries_tracks_provision_and_eviction() {
    // One container provisioned then evicted by TTL: memory rises to
    // 128 MB and returns to 0.
    let stack = PolicyStack::new(
        Box::new(ExpiringLru {
            ttl: TimeDelta::from_secs(1),
        }),
        Box::new(AlwaysCold),
    );
    let config = SimConfig::default()
        .workers_mb(vec![10_000])
        .tick(TimeDelta::from_millis(500));
    let report = run(&trace_two_hits_apart(5_000), &config, stack);
    assert_eq!(report.memory.max(), Some(128.0));
    // The last recorded point (after the final eviction... the second
    // container may survive to the end): peak is the invariant we pin.
    assert!(report.memory.len() >= 2);
}

#[test]
fn memory_timeseries_can_be_disabled() {
    let stack = PolicyStack::new(
        Box::new(ExpiringLru {
            ttl: TimeDelta::from_secs(60),
        }),
        Box::new(AlwaysCold),
    );
    let config = SimConfig::default()
        .workers_mb(vec![10_000])
        .without_memory_timeseries();
    let report = run(&trace_two_hits_apart(100), &config, stack);
    assert!(report.memory.is_empty());
}

#[test]
fn multi_worker_placement_spreads_by_free_memory() {
    // Two workers; four distinct functions of 400 MB with 1000 MB
    // workers: placement must alternate so all four fit concurrently.
    let profiles: Vec<FunctionProfile> = (0..4)
        .map(|i| {
            FunctionProfile::new(
                FunctionId(i),
                format!("f{i}"),
                400,
                TimeDelta::from_millis(50),
            )
        })
        .collect();
    let invs = (0..4)
        .map(|i| Invocation {
            func: FunctionId(i),
            arrival: TimePoint::from_millis(i as u64),
            exec: TimeDelta::from_secs(10),
        })
        .collect();
    let trace = Trace::new(profiles, invs).expect("valid");
    let stack = PolicyStack::new(
        Box::new(ExpiringLru {
            ttl: TimeDelta::from_secs(600),
        }),
        Box::new(AlwaysCold),
    );
    let config = SimConfig::default().workers_mb(vec![1_000, 1_000]);
    let report = run(&trace, &config, stack);
    // All four run concurrently: every request only waits its cold start.
    for r in &report.requests {
        assert_eq!(r.wait, TimeDelta::from_millis(50));
    }
    assert_eq!(report.memory.max(), Some(1_600.0));
}
