//! Placement-strategy behaviour across whole runs.

use faas_sim::{baseline_lru_stack, run, Placement, SimConfig, WorkerId};
use faas_trace::{gen, FunctionId, FunctionProfile, Invocation, TimeDelta, TimePoint, Trace};

/// Four concurrent one-off functions on four workers.
fn four_functions() -> Trace {
    let profiles: Vec<FunctionProfile> = (0..4)
        .map(|i| {
            FunctionProfile::new(
                FunctionId(i),
                format!("f{i}"),
                300,
                TimeDelta::from_millis(50),
            )
        })
        .collect();
    let invs = (0..4)
        .map(|i| Invocation {
            func: FunctionId(i),
            arrival: TimePoint::from_millis(i as u64 * 10),
            exec: TimeDelta::from_secs(5),
        })
        .collect();
    Trace::new(profiles, invs).expect("valid")
}

#[test]
fn first_fit_packs_one_worker() {
    let config = SimConfig::default()
        .workers_mb(vec![2_000, 2_000, 2_000])
        .placement(Placement::FirstFit);
    let report = run(&four_functions(), &config, baseline_lru_stack());
    // All four 300 MB containers fit on worker 0 (1200 <= 2000).
    assert_eq!(report.memory.max(), Some(1_200.0));
    assert_eq!(report.requests.len(), 4);
}

#[test]
fn round_robin_rotates_workers() {
    // Probe the cluster state directly: four placements over three
    // workers must wrap around.
    let profiles = vec![FunctionProfile::new(
        FunctionId(0),
        "f",
        100,
        TimeDelta::from_millis(10),
    )];
    let mut cl = faas_sim::ClusterState::with_placement(
        &[1_000, 1_000, 1_000],
        profiles,
        1,
        Placement::RoundRobin,
    );
    let picks: Vec<WorkerId> = (0..4)
        .map(|_| {
            let w = cl.pick_worker(100).expect("fits");
            let id = cl.begin_provision(FunctionId(0), w, TimePoint::ZERO, false);
            cl.finish_provision(id, TimePoint::ZERO);
            w
        })
        .collect();
    assert_eq!(
        picks,
        vec![WorkerId(0), WorkerId(1), WorkerId(2), WorkerId(0)]
    );
}

#[test]
fn round_robin_skips_full_workers() {
    let profiles = vec![FunctionProfile::new(
        FunctionId(0),
        "f",
        800,
        TimeDelta::from_millis(10),
    )];
    let mut cl = faas_sim::ClusterState::with_placement(
        &[1_000, 500, 1_000],
        profiles,
        1,
        Placement::RoundRobin,
    );
    // Worker 1 (500 MB) can never host an 800 MB container.
    let a = cl.pick_worker(800).expect("fits");
    let id = cl.begin_provision(FunctionId(0), a, TimePoint::ZERO, false);
    cl.finish_provision(id, TimePoint::ZERO);
    cl.occupy_thread(id, TimePoint::ZERO); // pin it so it is not evictable
    let b = cl.pick_worker(800).expect("fits");
    assert_eq!(a, WorkerId(0));
    assert_eq!(b, WorkerId(2));
}

#[test]
fn all_strategies_complete_generated_workloads() {
    let trace = gen::fc(17).functions(12).minutes(1).build();
    for placement in [
        Placement::MaxFree,
        Placement::RoundRobin,
        Placement::FirstFit,
    ] {
        let config = SimConfig::with_cache_gb(8).placement(placement);
        let report = run(&trace, &config, baseline_lru_stack());
        assert_eq!(
            report.requests.len(),
            trace.len(),
            "{placement:?} dropped requests"
        );
        let capacity: u64 = config.workers_mb.iter().sum();
        if let Some(peak) = report.memory.max() {
            assert!(peak <= capacity as f64, "{placement:?} overcommitted");
        }
    }
}

#[test]
fn max_free_balances_better_than_first_fit() {
    // Under MaxFree the peak single-worker load is lower or equal.
    let trace = four_functions();
    let per_worker = |placement: Placement| {
        let config = SimConfig::default()
            .workers_mb(vec![2_000, 2_000, 2_000])
            .placement(placement);
        // The memory series is cluster-wide, so instead compare cluster
        // peak (equal) and rely on FirstFit's packing proof above; here
        // just assert completion parity.
        run(&trace, &config, baseline_lru_stack()).requests.len()
    };
    assert_eq!(
        per_worker(Placement::MaxFree),
        per_worker(Placement::FirstFit)
    );
}
