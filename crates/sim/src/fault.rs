//! Fault injection: provision failures, worker crashes, and cold-start
//! stragglers.
//!
//! Production characterizations (e.g. *The High Cost of Keeping Warm*,
//! *SPES*) stress that cold-start latency is heavy-tailed and
//! provisioning is unreliable at scale. A [`FaultPlan`] describes a
//! deterministic, seeded fault schedule that both execution substrates
//! (`faas-sim` and `faas-live`) interpret identically:
//!
//! * **Provision failures** — each provision independently fails with
//!   probability `p`; the failure is discovered after the full cold-start
//!   latency and retried with capped exponential backoff.
//! * **Worker crashes** — at a scheduled time a worker dies, evicting all
//!   of its containers; requests that were running or queued on them are
//!   re-queued on the function channel.
//! * **Stragglers** — with probability `straggler_p` a cold start is
//!   stretched by a Pareto-distributed factor, modelling the heavy tail.
//!
//! The default plan is [`FaultPlan::none`], which draws **zero** random
//! numbers and schedules zero events — a fault-free run is byte-identical
//! to a run of a simulator without fault support at all.

use faas_testkit::Rng;
use faas_trace::{TimeDelta, TimePoint};

use crate::ids::WorkerId;

/// A deterministic fault schedule. Same seed + same plan ⇒ identical
/// fault decisions, on both the simulated and the live substrate.
///
/// # Examples
///
/// ```
/// use faas_sim::FaultPlan;
/// use faas_trace::{TimeDelta, TimePoint};
///
/// let plan = FaultPlan::none()
///     .seed(7)
///     .provision_failures(0.1)
///     .stragglers(0.05, 1.5, 20.0)
///     .crash_worker(TimePoint::from_secs(30), faas_sim::WorkerId(0));
/// assert!(!plan.is_none());
/// assert_eq!(FaultPlan::none().backoff(3), TimeDelta::from_millis(400));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault RNG (independent of the trace seed).
    pub seed: u64,
    /// Probability in `[0, 1)` that a provision fails (discovered after
    /// the full cold-start latency, then retried with backoff).
    pub provision_fail_p: f64,
    /// First retry delay; doubles per attempt.
    pub retry_base: TimeDelta,
    /// Upper bound on the retry delay.
    pub retry_cap: TimeDelta,
    /// Scheduled `(time, worker)` crashes. Workers stay down for the
    /// rest of the run.
    pub worker_crashes: Vec<(TimePoint, WorkerId)>,
    /// Probability in `[0, 1)` that a (successful) provision is a
    /// straggler.
    pub straggler_p: f64,
    /// Pareto shape of the straggler stretch factor (smaller = heavier
    /// tail).
    pub straggler_alpha: f64,
    /// Upper bound on the stretch factor.
    pub straggler_cap: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The fault-free plan: no failures, no crashes, no stragglers. Runs
    /// under this plan draw zero random numbers and schedule zero fault
    /// events, so they are byte-identical to pre-fault-support runs.
    pub fn none() -> Self {
        Self {
            seed: 0,
            provision_fail_p: 0.0,
            retry_base: TimeDelta::from_millis(100),
            retry_cap: TimeDelta::from_secs(5),
            worker_crashes: Vec::new(),
            straggler_p: 0.0,
            straggler_alpha: 1.5,
            straggler_cap: 20.0,
        }
    }

    /// Whether this plan injects no faults at all.
    pub fn is_none(&self) -> bool {
        self.provision_fail_p == 0.0 && self.straggler_p == 0.0 && self.worker_crashes.is_empty()
    }

    /// Sets the fault RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the provision-failure probability.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1)` — with `p == 1` no provision ever
    /// succeeds and retry chains never terminate.
    pub fn provision_failures(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "failure probability must be in [0, 1)"
        );
        self.provision_fail_p = p;
        self
    }

    /// Sets the retry backoff parameters (first delay and cap).
    pub fn retry_backoff(mut self, base: TimeDelta, cap: TimeDelta) -> Self {
        self.retry_base = base;
        self.retry_cap = cap;
        self
    }

    /// Schedules a worker crash at `at`.
    pub fn crash_worker(mut self, at: TimePoint, worker: WorkerId) -> Self {
        self.worker_crashes.push((at, worker));
        self
    }

    /// Sets the straggler parameters: probability, Pareto shape, and
    /// stretch-factor cap.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1)`, `alpha > 0`, and `cap >= 1`.
    pub fn stragglers(mut self, p: f64, alpha: f64, cap: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "straggler probability must be in [0, 1)"
        );
        assert!(alpha > 0.0, "Pareto shape must be positive");
        assert!(cap >= 1.0, "stretch cap below 1 would speed up cold starts");
        self.straggler_p = p;
        self.straggler_alpha = alpha;
        self.straggler_cap = cap;
        self
    }

    /// The delay before retry number `attempt` (1-based): capped
    /// exponential backoff `min(base * 2^(attempt-1), cap)`.
    pub fn backoff(&self, attempt: u32) -> TimeDelta {
        let shift = attempt.saturating_sub(1).min(63);
        let us = self
            .retry_base
            .as_micros()
            .saturating_mul(1u64.checked_shl(shift).unwrap_or(u64::MAX));
        TimeDelta::from_micros(us.min(self.retry_cap.as_micros()))
    }
}

/// Runtime state of a [`FaultPlan`]: the plan plus its RNG stream. Both
/// substrates consume the stream in provision order, so the same plan
/// produces the same fault decisions in sim and live runs.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    rng: Rng,
}

impl FaultState {
    /// Instantiates the plan's RNG.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = Rng::seed_from_u64(plan.seed ^ 0xfa17_7e57);
        Self { plan, rng }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Draws whether the next provision fails. Draws nothing when the
    /// failure probability is zero (keeps fault-free runs byte-identical).
    pub fn provision_fails(&mut self) -> bool {
        if self.plan.provision_fail_p == 0.0 {
            return false;
        }
        self.rng.bool(self.plan.provision_fail_p)
    }

    /// Draws the cold-start stretch factor for the next (successful)
    /// provision: `1.0` for non-stragglers, otherwise a Pareto factor
    /// `(1-u)^(-1/alpha)` capped at `straggler_cap`. Draws nothing when
    /// stragglers are disabled.
    pub fn straggler_factor(&mut self) -> f64 {
        if self.plan.straggler_p == 0.0 {
            return 1.0;
        }
        if !self.rng.bool(self.plan.straggler_p) {
            return 1.0;
        }
        let u = self.rng.open01();
        (1.0 - u)
            .powf(-1.0 / self.plan.straggler_alpha)
            .min(self.plan.straggler_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_default_and_faultless() {
        assert_eq!(FaultPlan::default(), FaultPlan::none());
        assert!(FaultPlan::none().is_none());
        let mut st = FaultState::new(FaultPlan::none());
        for _ in 0..100 {
            assert!(!st.provision_fails());
            assert_eq!(st.straggler_factor(), 1.0);
        }
    }

    #[test]
    fn builders_mark_plan_faulty() {
        assert!(!FaultPlan::none().provision_failures(0.1).is_none());
        assert!(!FaultPlan::none().stragglers(0.1, 1.5, 20.0).is_none());
        assert!(!FaultPlan::none()
            .crash_worker(TimePoint::from_secs(1), WorkerId(0))
            .is_none());
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let plan =
            FaultPlan::none().retry_backoff(TimeDelta::from_millis(100), TimeDelta::from_secs(1));
        assert_eq!(plan.backoff(1), TimeDelta::from_millis(100));
        assert_eq!(plan.backoff(2), TimeDelta::from_millis(200));
        assert_eq!(plan.backoff(3), TimeDelta::from_millis(400));
        assert_eq!(plan.backoff(4), TimeDelta::from_millis(800));
        assert_eq!(plan.backoff(5), TimeDelta::from_secs(1));
        assert_eq!(plan.backoff(200), TimeDelta::from_secs(1));
    }

    #[test]
    fn failure_draws_are_seed_deterministic() {
        let plan = FaultPlan::none().seed(42).provision_failures(0.5);
        let mut a = FaultState::new(plan.clone());
        let mut b = FaultState::new(plan);
        let draws_a: Vec<bool> = (0..64).map(|_| a.provision_fails()).collect();
        let draws_b: Vec<bool> = (0..64).map(|_| b.provision_fails()).collect();
        assert_eq!(draws_a, draws_b);
        assert!(draws_a.iter().any(|&f| f));
        assert!(draws_a.iter().any(|&f| !f));
    }

    #[test]
    fn straggler_factor_bounds() {
        let plan = FaultPlan::none().seed(7).stragglers(0.9, 1.5, 4.0);
        let mut st = FaultState::new(plan);
        let mut stretched = 0;
        for _ in 0..256 {
            let f = st.straggler_factor();
            assert!((1.0..=4.0).contains(&f), "factor {f} out of bounds");
            if f > 1.0 {
                stretched += 1;
            }
        }
        assert!(stretched > 128, "p=0.9 should stretch most provisions");
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn certain_failure_rejected() {
        let _ = FaultPlan::none().provision_failures(1.0);
    }
}
