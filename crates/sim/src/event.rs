//! The discrete-event queue driving the simulation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use faas_trace::TimePoint;

use faas_trace::FunctionId;

use crate::ids::{ContainerId, RequestId, WorkerId};

/// A simulator event. Ordering at equal timestamps follows insertion
/// order, making runs fully deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A trace request arrives.
    Arrival(RequestId),
    /// A container finishes provisioning and becomes available.
    ProvisionDone(ContainerId),
    /// One execution slot on a container finishes running a request.
    ExecDone(ContainerId, RequestId),
    /// Periodic policy tick (TTL expiration, prewarming).
    Tick,
    /// A provision fails (fault injection), discovered after the full
    /// cold-start latency.
    ProvisionFailed(ContainerId),
    /// A failed provision's backoff expires; retry attempt number
    /// (1-based) for the function, preserving speculativeness.
    RetryProvision(FunctionId, u32, bool),
    /// A worker crashes (fault injection), evicting its containers.
    WorkerDown(WorkerId),
}

/// Time-ordered event queue with deterministic FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use faas_sim::{Event, EventQueue, RequestId};
/// use faas_trace::TimePoint;
///
/// let mut q = EventQueue::new();
/// q.push(TimePoint::from_millis(5), Event::Arrival(RequestId(1)));
/// q.push(TimePoint::from_millis(1), Event::Tick);
/// assert_eq!(q.pop(), Some((TimePoint::from_millis(1), Event::Tick)));
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(TimePoint, u64, EventKey)>>,
    seq: u64,
}

/// Internal ordered mirror of [`Event`] (keeps the heap key `Ord`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKey {
    Arrival(RequestId),
    ProvisionDone(ContainerId),
    ExecDone(ContainerId, RequestId),
    Tick,
    ProvisionFailed(ContainerId),
    RetryProvision(FunctionId, u32, bool),
    WorkerDown(WorkerId),
}

impl From<Event> for EventKey {
    fn from(e: Event) -> Self {
        match e {
            Event::Arrival(r) => EventKey::Arrival(r),
            Event::ProvisionDone(c) => EventKey::ProvisionDone(c),
            Event::ExecDone(c, r) => EventKey::ExecDone(c, r),
            Event::Tick => EventKey::Tick,
            Event::ProvisionFailed(c) => EventKey::ProvisionFailed(c),
            Event::RetryProvision(f, n, s) => EventKey::RetryProvision(f, n, s),
            Event::WorkerDown(w) => EventKey::WorkerDown(w),
        }
    }
}

impl From<EventKey> for Event {
    fn from(e: EventKey) -> Self {
        match e {
            EventKey::Arrival(r) => Event::Arrival(r),
            EventKey::ProvisionDone(c) => Event::ProvisionDone(c),
            EventKey::ExecDone(c, r) => Event::ExecDone(c, r),
            EventKey::Tick => Event::Tick,
            EventKey::ProvisionFailed(c) => Event::ProvisionFailed(c),
            EventKey::RetryProvision(f, n, s) => Event::RetryProvision(f, n, s),
            EventKey::WorkerDown(w) => Event::WorkerDown(w),
        }
    }
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: TimePoint, event: Event) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, event.into())));
    }

    /// Removes and returns the earliest event, FIFO within a timestamp.
    pub fn pop(&mut self) -> Option<(TimePoint, Event)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t, e.into()))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<TimePoint> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> TimePoint {
        TimePoint::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3), Event::Tick);
        q.push(t(1), Event::Arrival(RequestId(0)));
        q.push(t(2), Event::ProvisionDone(ContainerId(0)));
        assert_eq!(q.pop().map(|(x, _)| x), Some(t(1)));
        assert_eq!(q.pop().map(|(x, _)| x), Some(t(2)));
        assert_eq!(q.pop().map(|(x, _)| x), Some(t(3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        q.push(t(5), Event::Arrival(RequestId(10)));
        q.push(t(5), Event::Arrival(RequestId(2)));
        q.push(t(5), Event::Arrival(RequestId(7)));
        let order: Vec<Event> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(
            order,
            vec![
                Event::Arrival(RequestId(10)),
                Event::Arrival(RequestId(2)),
                Event::Arrival(RequestId(7)),
            ]
        );
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(9), Event::Tick);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(9)));
        // Peek does not consume.
        assert_eq!(q.len(), 1);
    }
}
