//! Simulation configuration.

use faas_trace::TimeDelta;

use crate::fault::FaultPlan;

/// Strategy for choosing which worker hosts a newly provisioned
/// container. Only workers that can fit the container (free memory, or
/// free plus evictable idle memory) are considered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// The worker with the most free memory (falls back to the most
    /// reclaimable memory under pressure). Balances load; the default.
    #[default]
    MaxFree,
    /// Rotate through fitting workers in order, OpenLambda-style
    /// round-robin dispatch.
    RoundRobin,
    /// The lowest-numbered fitting worker; packs the cluster tightly,
    /// concentrating eviction pressure.
    FirstFit,
}

/// Which implementation the scheduling/eviction hot paths use.
///
/// Both modes make byte-identical decisions; the reference mode keeps
/// the original linear scans alive as the oracle for differential
/// property tests (see `faas_sim::reference` and `tests/equivalence.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanMode {
    /// Indexed pools and lazy-deletion eviction heaps (production).
    #[default]
    Indexed,
    /// The retained naive linear scans (differential-test oracle).
    Reference,
}

/// Configuration of one simulation run.
///
/// The defaults model the paper's main testbed: a three-worker cluster
/// with a 100 GB aggregate function cache and single-threaded containers.
///
/// # Examples
///
/// ```
/// use faas_sim::SimConfig;
///
/// let cfg = SimConfig::with_cache_gb(160).container_threads(4);
/// let total: u64 = cfg.workers_mb.iter().sum();
/// // Three equal workers; integer division loses at most 2 MB.
/// assert!(total > 160 * 1024 - 3 && total <= 160 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Per-worker memory capacity in MB.
    pub workers_mb: Vec<u64>,
    /// Execution threads per container (1 except in the Fig. 21 study).
    pub threads: u32,
    /// Interval between policy ticks (TTL expiration, prewarming).
    pub tick: TimeDelta,
    /// Whether to record the memory-usage time series.
    pub record_memory: bool,
    /// Worker-placement strategy for new containers.
    pub placement: Placement,
    /// Fault-injection schedule ([`FaultPlan::none`] by default — zero
    /// RNG draws, zero fault events, byte-identical to fault-free runs).
    pub faults: FaultPlan,
    /// Hot-path implementation selector ([`ScanMode::Indexed`] by
    /// default; [`ScanMode::Reference`] replays the original linear
    /// scans for differential testing).
    pub scan: ScanMode,
    /// Number of simulation shards. `1` (the default) runs the original
    /// single-threaded event loop unchanged; `> 1` partitions the
    /// functions across that many worker threads synchronized by
    /// conservative epoch barriers (DESIGN.md §9). Every report is
    /// byte-identical across shard counts.
    pub shards: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::with_cache_gb(100)
    }
}

impl SimConfig {
    /// A three-worker cluster splitting `cache_gb` GB of total function
    /// cache evenly, matching the evaluation's cache-size sweep
    /// (80–160 GB, Fig. 12).
    pub fn with_cache_gb(cache_gb: u64) -> Self {
        let per_worker = cache_gb * 1024 / 3;
        Self {
            workers_mb: vec![per_worker; 3],
            threads: 1,
            tick: TimeDelta::from_secs(10),
            record_memory: true,
            placement: Placement::MaxFree,
            faults: FaultPlan::none(),
            scan: ScanMode::Indexed,
            shards: 1,
        }
    }

    /// Explicit per-worker capacities in MB.
    pub fn workers_mb(mut self, caps: Vec<u64>) -> Self {
        self.workers_mb = caps;
        self
    }

    /// A uniform cluster of `n` workers with `mb` MB each (the §5.2
    /// production configuration is `uniform(37, 384 * 1024)`).
    pub fn uniform_workers(mut self, n: usize, mb: u64) -> Self {
        self.workers_mb = vec![mb; n];
        self
    }

    /// Sets threads per container (Fig. 21).
    pub fn container_threads(mut self, threads: u32) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the policy tick interval.
    pub fn tick(mut self, tick: TimeDelta) -> Self {
        self.tick = tick;
        self
    }

    /// Disables memory time-series recording (saves memory on large runs
    /// that don't need Fig. 16-style output).
    pub fn without_memory_timeseries(mut self) -> Self {
        self.record_memory = false;
        self
    }

    /// Sets the worker-placement strategy.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the fault-injection plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the hot-path implementation ([`ScanMode`]).
    pub fn scan_mode(mut self, scan: ScanMode) -> Self {
        self.scan = scan;
        self
    }

    /// Sets the number of simulation shards (worker threads). `1` keeps
    /// the sequential engine; any value is clamped to at least 1.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_three_workers_100gb() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.workers_mb.len(), 3);
        assert_eq!(cfg.threads, 1);
        // Integer division loses at most 2 MB.
        let total: u64 = cfg.workers_mb.iter().sum();
        assert!((100 * 1024 - 3..=100 * 1024).contains(&total));
    }

    #[test]
    fn builders_chain() {
        let cfg = SimConfig::default()
            .uniform_workers(2, 1000)
            .container_threads(8)
            .tick(TimeDelta::from_secs(1))
            .without_memory_timeseries();
        assert_eq!(cfg.workers_mb, vec![1000, 1000]);
        assert_eq!(cfg.threads, 8);
        assert_eq!(cfg.tick, TimeDelta::from_secs(1));
        assert!(!cfg.record_memory);
    }

    #[test]
    fn placement_defaults_and_overrides() {
        assert_eq!(SimConfig::default().placement, Placement::MaxFree);
        let cfg = SimConfig::default().placement(Placement::RoundRobin);
        assert_eq!(cfg.placement, Placement::RoundRobin);
    }

    #[test]
    fn scan_mode_defaults_indexed() {
        assert_eq!(SimConfig::default().scan, ScanMode::Indexed);
        let cfg = SimConfig::default().scan_mode(ScanMode::Reference);
        assert_eq!(cfg.scan, ScanMode::Reference);
    }

    #[test]
    fn shards_default_to_sequential_and_clamp() {
        assert_eq!(SimConfig::default().shards, 1);
        assert_eq!(SimConfig::default().shards(4).shards, 4);
        assert_eq!(SimConfig::default().shards(0).shards, 1);
    }

    #[test]
    fn default_faults_are_none() {
        let cfg = SimConfig::default();
        assert!(cfg.faults.is_none());
        assert_eq!(cfg, SimConfig::default().faults(FaultPlan::none()));
        let faulty = SimConfig::default().faults(FaultPlan::none().provision_failures(0.1));
        assert!(!faulty.faults.is_none());
    }
}
