//! Container instances and their lifecycle state.

use std::collections::VecDeque;

use faas_trace::{FunctionId, TimeDelta, TimePoint};

use crate::ids::{ContainerId, RequestId, WorkerId};

/// Lifecycle state of a container.
///
/// Containers move `Provisioning → Warm` and are then evicted (removed)
/// when the keep-alive policy reclaims them. "Warm" covers both idle and
/// busy containers; business is tracked by the number of occupied
/// execution threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerState {
    /// The cold-start process (image pull, runtime init) is under way.
    Provisioning,
    /// The container is initialised and kept alive; it may be serving up
    /// to its thread capacity of requests.
    Warm,
}

/// One container instance hosted on a worker.
#[derive(Debug, Clone)]
pub struct Container {
    /// Unique id of this instance.
    pub id: ContainerId,
    /// The function this container can execute.
    pub func: FunctionId,
    /// The worker hosting it.
    pub worker: WorkerId,
    /// Memory footprint in MB, charged against the worker while alive.
    pub mem_mb: u32,
    /// The provisioning latency this container paid (its `Cost`).
    pub cold_start: TimeDelta,
    /// Lifecycle state.
    pub state: ContainerState,
    /// When provisioning started.
    pub created_at: TimePoint,
    /// When provisioning finished (valid once `Warm`).
    pub warm_at: TimePoint,
    /// Last time a request started executing here.
    pub last_used: TimePoint,
    /// When the container last became fully idle (set when provisioning
    /// finishes and whenever the occupied-thread count drops to zero);
    /// the cost ledger charges wasted-idle time from this point.
    pub idle_from: TimePoint,
    /// Number of requests this container has started executing.
    pub served: u64,
    /// Occupied execution threads.
    pub threads_in_use: u32,
    /// Thread capacity (1 in all experiments except Fig. 21).
    pub thread_capacity: u32,
    /// Whether this container was created speculatively (BSS race) and
    /// has not yet been matched to its first request; used to account
    /// wasted cold starts and CIDRE's `Ti` signal.
    pub speculative_unused: bool,
    /// Requests queued directly on this container by `EnqueueOn`
    /// scaling decisions (fixed queue-length policies, Fig. 7).
    pub local_queue: VecDeque<RequestId>,
}

impl Container {
    /// Whether at least one execution thread is free (and the container
    /// is warm), i.e. a request could start here immediately.
    pub fn has_free_thread(&self) -> bool {
        self.state == ContainerState::Warm && self.threads_in_use < self.thread_capacity
    }

    /// Whether the container is warm and entirely idle (evictable).
    pub fn is_idle(&self) -> bool {
        self.state == ContainerState::Warm && self.threads_in_use == 0
    }

    /// Whether the container is warm and fully saturated.
    pub fn is_saturated(&self) -> bool {
        self.state == ContainerState::Warm && self.threads_in_use >= self.thread_capacity
    }
}

/// Read-only snapshot of a container handed to policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContainerInfo {
    /// Unique id of this instance.
    pub id: ContainerId,
    /// The function this container executes.
    pub func: FunctionId,
    /// Hosting worker.
    pub worker: WorkerId,
    /// Memory footprint in MB (`Size(c)` in the paper's Eq. 1/3).
    pub mem_mb: u32,
    /// Provisioning latency (`Cost(c)`).
    pub cold_start: TimeDelta,
    /// When provisioning started.
    pub created_at: TimePoint,
    /// Last time a request started executing here.
    pub last_used: TimePoint,
    /// Requests started on this container so far.
    pub served: u64,
    /// Occupied execution threads.
    pub threads_in_use: u32,
    /// Length of the container-local request queue.
    pub local_queue_len: usize,
}

impl From<&Container> for ContainerInfo {
    fn from(c: &Container) -> Self {
        Self {
            id: c.id,
            func: c.func,
            worker: c.worker,
            mem_mb: c.mem_mb,
            cold_start: c.cold_start,
            created_at: c.created_at,
            last_used: c.last_used,
            served: c.served,
            threads_in_use: c.threads_in_use,
            local_queue_len: c.local_queue.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn container(threads: u32, in_use: u32, state: ContainerState) -> Container {
        Container {
            id: ContainerId(1),
            func: FunctionId(0),
            worker: WorkerId(0),
            mem_mb: 128,
            cold_start: TimeDelta::from_millis(100),
            state,
            created_at: TimePoint::ZERO,
            warm_at: TimePoint::ZERO,
            last_used: TimePoint::ZERO,
            idle_from: TimePoint::ZERO,
            served: 0,
            threads_in_use: in_use,
            thread_capacity: threads,
            speculative_unused: false,
            local_queue: VecDeque::new(),
        }
    }

    #[test]
    fn thread_accounting() {
        let c = container(2, 1, ContainerState::Warm);
        assert!(c.has_free_thread());
        assert!(!c.is_idle());
        assert!(!c.is_saturated());
    }

    #[test]
    fn idle_and_saturated() {
        assert!(container(1, 0, ContainerState::Warm).is_idle());
        assert!(container(1, 1, ContainerState::Warm).is_saturated());
    }

    #[test]
    fn provisioning_is_not_available() {
        let c = container(4, 0, ContainerState::Provisioning);
        assert!(!c.has_free_thread());
        assert!(!c.is_idle());
    }

    #[test]
    fn info_snapshot_copies_fields() {
        let mut c = container(1, 0, ContainerState::Warm);
        c.served = 5;
        c.local_queue.push_back(RequestId(3));
        let info = ContainerInfo::from(&c);
        assert_eq!(info.served, 5);
        assert_eq!(info.local_queue_len, 1);
        assert_eq!(info.mem_mb, 128);
    }
}
