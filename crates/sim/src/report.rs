//! Simulation outcome: per-request records and derived metrics.

use faas_metrics::{Cdf, Summary, TimeSeries};
use faas_trace::{FunctionId, TimeDelta, TimePoint};

use crate::ledger::CostLedger;
use crate::policy::StartClass;

/// Outcome record for one completed request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// The invoked function.
    pub func: FunctionId,
    /// Arrival time.
    pub arrival: TimePoint,
    /// Invocation overhead: time from arrival until execution began.
    pub wait: TimeDelta,
    /// Pure execution duration.
    pub exec: TimeDelta,
    /// How the request started (warm / delayed warm / cold).
    pub class: StartClass,
}

impl RequestRecord {
    /// The paper's per-request overhead ratio:
    /// `wait / (wait + exec)` (§2.4), in `[0, 1]`.
    pub fn overhead_ratio(&self) -> f64 {
        let w = self.wait.as_millis_f64();
        let e = self.exec.as_millis_f64();
        if w + e == 0.0 {
            0.0
        } else {
            w / (w + e)
        }
    }

    /// End-to-end service time: wait plus execution.
    pub fn e2e(&self) -> TimeDelta {
        self.wait + self.exec
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// One record per completed request, in completion order.
    pub requests: Vec<RequestRecord>,
    /// Cluster memory usage over time (MB).
    pub memory: TimeSeries,
    /// Containers created over the run (cold starts initiated, including
    /// speculative and prewarmed ones).
    pub containers_created: u64,
    /// Containers evicted by the keep-alive policy.
    pub containers_evicted: u64,
    /// Speculative containers evicted without serving any request.
    pub wasted_cold_starts: u64,
    /// Provisions that failed (fault injection) and were retried.
    pub provision_failures: u64,
    /// Containers destroyed by worker crashes (fault injection).
    pub crash_evictions: u64,
    /// Simulated completion time of the last request.
    pub finished_at: TimePoint,
    /// Resource-cost ledger: memory residency by lifecycle class plus
    /// scheduling-work counters (DESIGN.md §11).
    pub ledger: CostLedger,
    /// The instant the ledger was settled: the latest charge timestamp
    /// of the run. Residency tails of containers still alive at the end
    /// are charged up to exactly this point, so the ledger equals the
    /// integral of the memory step function over `[0, ledger_settled_at]`.
    pub ledger_settled_at: TimePoint,
}

impl SimReport {
    /// Number of requests with the given start class.
    pub fn count(&self, class: StartClass) -> u64 {
        self.requests.iter().filter(|r| r.class == class).count() as u64
    }

    /// Fraction of requests with the given start class, in `[0, 1]`.
    /// Zero when the report is empty.
    pub fn ratio(&self, class: StartClass) -> f64 {
        if self.requests.is_empty() {
            0.0
        } else {
            self.count(class) as f64 / self.requests.len() as f64
        }
    }

    /// Mean per-request overhead ratio (the paper's headline "average
    /// overhead ratio", e.g. Figs. 7, 8, 12, 15). Zero when empty.
    pub fn avg_overhead_ratio(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests
            .iter()
            .map(RequestRecord::overhead_ratio)
            .sum::<f64>()
            / self.requests.len() as f64
    }

    /// Summary of invocation overheads in milliseconds (Fig. 20).
    pub fn wait_summary(&self) -> Summary {
        self.requests
            .iter()
            .map(|r| r.wait.as_millis_f64())
            .collect()
    }

    /// CDF of invocation overheads in milliseconds (Figs. 13a/b, 14, 19).
    pub fn wait_cdf(&self) -> Cdf {
        self.requests
            .iter()
            .map(|r| r.wait.as_millis_f64())
            .collect()
    }

    /// CDF of end-to-end service times in milliseconds (Figs. 13c/d).
    pub fn e2e_cdf(&self) -> Cdf {
        self.requests
            .iter()
            .map(|r| r.e2e().as_millis_f64())
            .collect()
    }

    /// CDF of waits for one class only (the Fig. 5/6 tradeoff curves).
    pub fn wait_cdf_of(&self, class: StartClass) -> Cdf {
        self.requests
            .iter()
            .filter(|r| r.class == class)
            .map(|r| r.wait.as_millis_f64())
            .collect()
    }

    /// Serialises every request record as CSV
    /// (`func,arrival_us,wait_us,exec_us,class`), for offline analysis of
    /// a run in external tooling.
    pub fn requests_csv(&self) -> String {
        let mut out = String::from("func,arrival_us,wait_us,exec_us,class\n");
        for r in &self.requests {
            let class = match r.class {
                StartClass::Warm => "warm",
                StartClass::DelayedWarm => "delayed",
                StartClass::Cold => "cold",
            };
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                r.func.0,
                r.arrival.as_micros(),
                r.wait.as_micros(),
                r.exec.as_micros(),
                class
            ));
        }
        out
    }

    /// Memory bill per completed request in GB-seconds — the ratio the
    /// `bench_guard` memory ratchet and the `pareto` sweep gate on.
    /// Zero when the report is empty.
    pub fn gb_s_per_request(&self) -> f64 {
        self.ledger.gb_s_per_request(self.requests.len() as u64)
    }

    /// Time-weighted mean cluster memory usage in GB (Fig. 16).
    pub fn avg_memory_gb(&self) -> f64 {
        self.memory
            .time_weighted_mean(self.finished_at.as_micros())
            .unwrap_or(0.0)
            / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(wait_ms: u64, exec_ms: u64, class: StartClass) -> RequestRecord {
        RequestRecord {
            func: FunctionId(0),
            arrival: TimePoint::ZERO,
            wait: TimeDelta::from_millis(wait_ms),
            exec: TimeDelta::from_millis(exec_ms),
            class,
        }
    }

    #[test]
    fn overhead_ratio_definition() {
        assert_eq!(rec(0, 10, StartClass::Warm).overhead_ratio(), 0.0);
        assert_eq!(rec(10, 10, StartClass::Cold).overhead_ratio(), 0.5);
        assert_eq!(rec(0, 0, StartClass::Warm).overhead_ratio(), 0.0);
    }

    #[test]
    fn ratios_partition() {
        let report = SimReport {
            requests: vec![
                rec(0, 1, StartClass::Warm),
                rec(1, 1, StartClass::Cold),
                rec(1, 1, StartClass::DelayedWarm),
                rec(0, 1, StartClass::Warm),
            ],
            ..Default::default()
        };
        assert_eq!(report.ratio(StartClass::Warm), 0.5);
        assert_eq!(report.ratio(StartClass::Cold), 0.25);
        assert_eq!(report.ratio(StartClass::DelayedWarm), 0.25);
        let total = report.ratio(StartClass::Warm)
            + report.ratio(StartClass::Cold)
            + report.ratio(StartClass::DelayedWarm);
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn avg_overhead_ratio_mean() {
        let report = SimReport {
            requests: vec![rec(0, 10, StartClass::Warm), rec(10, 10, StartClass::Cold)],
            ..Default::default()
        };
        assert_eq!(report.avg_overhead_ratio(), 0.25);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = SimReport::default();
        assert_eq!(r.avg_overhead_ratio(), 0.0);
        assert_eq!(r.ratio(StartClass::Cold), 0.0);
        assert!(r.wait_cdf().is_empty());
        assert_eq!(r.avg_memory_gb(), 0.0);
    }

    #[test]
    fn e2e_adds_wait_and_exec() {
        assert_eq!(rec(3, 4, StartClass::Cold).e2e(), TimeDelta::from_millis(7));
    }

    #[test]
    fn csv_dump_has_header_and_rows() {
        let report = SimReport {
            requests: vec![rec(5, 10, StartClass::Cold), rec(0, 10, StartClass::Warm)],
            ..Default::default()
        };
        let csv = report.requests_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "func,arrival_us,wait_us,exec_us,class");
        assert!(lines[1].ends_with(",cold"));
        assert!(lines[2].ends_with(",warm"));
    }

    #[test]
    fn class_filtered_cdf() {
        let report = SimReport {
            requests: vec![
                rec(5, 1, StartClass::Cold),
                rec(9, 1, StartClass::DelayedWarm),
            ],
            ..Default::default()
        };
        let cold = report.wait_cdf_of(StartClass::Cold);
        assert_eq!(cold.samples(), &[5.0]);
    }
}
