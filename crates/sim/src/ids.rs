//! Identifier newtypes for simulator entities.

use std::fmt;

/// Identifier of one container instance over the life of a simulation.
/// Ids are never reused, even after eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ContainerId(pub u64);

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifier of one invocation request, assigned in trace order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a worker (server) in the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WorkerId(pub u16);

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ContainerId(3).to_string(), "c3");
        assert_eq!(RequestId(9).to_string(), "r9");
        assert_eq!(WorkerId(1).to_string(), "w1");
    }

    #[test]
    fn ordering_follows_numeric() {
        assert!(ContainerId(2) < ContainerId(10));
        assert!(RequestId(0) < RequestId(1));
    }
}
