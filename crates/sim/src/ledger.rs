//! Deterministic resource-cost ledger (DESIGN.md §11).
//!
//! Latency metrics say what the policies won; this ledger says what
//! they paid. Every container's memory residency is charged to exactly
//! one of two lifecycle classes — provisioning ([`CostLedger::cold_start_mb_us`])
//! or warm ([`CostLedger::keep_warm_mb_us`]) — so the two always sum to
//! the integral of the cluster's memory-usage step function (the
//! conservation property pinned in `tests/properties.rs`). Two overlay
//! classes refine the warm charge: idle time (warm but serving nothing)
//! and speculative waste (the full residency of CSS provisions that
//! lost their race and never served).
//!
//! All accumulators are integers in MB·µs. Integer addition is exact
//! and order-independent, so the sharded engine can merge per-shard
//! ledgers by plain summation and stay byte-identical to the sequential
//! engine — the same argument that makes the event counters mergeable.
//! Conversion to GB·s happens only at the reporting boundary.

/// Resource costs and scheduling work accumulated over one run.
///
/// Lives inside `ClusterState`, so shard checkpoints clone it and
/// rollbacks restore it for free. See the module docs for the charging
/// discipline and DESIGN.md §11 for where each class is charged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostLedger {
    /// Warm residency: memory × time from `warm_at` until destruction
    /// (or end-of-run settlement) for every container that turned warm.
    pub keep_warm_mb_us: u128,
    /// Wasted-idle subset of `keep_warm_mb_us`: memory × time spent
    /// warm with zero occupied threads.
    pub idle_mb_us: u128,
    /// Provisioning residency: memory × time from `created_at` until
    /// the container turned warm, failed, or crashed mid-provision.
    pub cold_start_mb_us: u128,
    /// Speculative waste: the full residency (provisioning + warm) of
    /// containers destroyed or settled having never served a request
    /// after a speculative start. Overlaps the two lifecycle classes;
    /// never exceeds their sum.
    pub speculative_mb_us: u128,
    /// Scheduling work: request dispatches onto container threads
    /// (every execution start, including re-executions after crashes).
    pub dispatches: u64,
    /// Scheduling work: REPLACE admissions that evicted at least one
    /// victim to make room.
    pub replace_rounds: u64,
}

/// One MB held for one second, in the ledger's integer unit.
const MB_US_PER_GB_S: f64 = 1024.0 * 1e6;

impl CostLedger {
    /// Adds `other`'s charges into `self` (shard-merge: exact integer
    /// sums, so merge order cannot matter).
    pub fn merge(&mut self, other: &CostLedger) {
        self.keep_warm_mb_us += other.keep_warm_mb_us;
        self.idle_mb_us += other.idle_mb_us;
        self.cold_start_mb_us += other.cold_start_mb_us;
        self.speculative_mb_us += other.speculative_mb_us;
        self.dispatches += other.dispatches;
        self.replace_rounds += other.replace_rounds;
    }

    /// Total memory residency (provisioning + warm) in MB·µs; equals
    /// the integral of the cluster memory step function over the run.
    pub fn total_mb_us(&self) -> u128 {
        self.cold_start_mb_us + self.keep_warm_mb_us
    }

    /// Warm (keep-alive) residency in GB-seconds.
    pub fn keep_warm_gb_s(&self) -> f64 {
        to_gb_s(self.keep_warm_mb_us)
    }

    /// Wasted-idle residency in GB-seconds.
    pub fn idle_gb_s(&self) -> f64 {
        to_gb_s(self.idle_mb_us)
    }

    /// Provisioning (cold-start) residency in GB-seconds.
    pub fn cold_start_gb_s(&self) -> f64 {
        to_gb_s(self.cold_start_mb_us)
    }

    /// Speculative-loser residency in GB-seconds.
    pub fn speculative_gb_s(&self) -> f64 {
        to_gb_s(self.speculative_mb_us)
    }

    /// Total residency in GB-seconds.
    pub fn total_gb_s(&self) -> f64 {
        to_gb_s(self.total_mb_us())
    }

    /// Total GB-seconds divided by `served` requests — the memory bill
    /// per request the `bench_guard` ratchet gates. Zero when nothing
    /// was served.
    pub fn gb_s_per_request(&self, served: u64) -> f64 {
        if served == 0 {
            0.0
        } else {
            // lint:allow(C1): reporting-boundary conversion; the exact
            // integer total is already fixed.
            self.total_gb_s() / served as f64
        }
    }
}

/// MB·µs → GB·s at the reporting boundary.
fn to_gb_s(mb_us: u128) -> f64 {
    // lint:allow(C1): reporting-boundary conversion; comparisons and
    // merges all happen on the exact integer accumulators.
    mb_us as f64 / MB_US_PER_GB_S
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_every_field() {
        let mut a = CostLedger {
            keep_warm_mb_us: 1,
            idle_mb_us: 2,
            cold_start_mb_us: 3,
            speculative_mb_us: 4,
            dispatches: 5,
            replace_rounds: 6,
        };
        let b = CostLedger {
            keep_warm_mb_us: 10,
            idle_mb_us: 20,
            cold_start_mb_us: 30,
            speculative_mb_us: 40,
            dispatches: 50,
            replace_rounds: 60,
        };
        a.merge(&b);
        assert_eq!(
            a,
            CostLedger {
                keep_warm_mb_us: 11,
                idle_mb_us: 22,
                cold_start_mb_us: 33,
                speculative_mb_us: 44,
                dispatches: 55,
                replace_rounds: 66,
            }
        );
    }

    #[test]
    fn merge_is_order_independent() {
        let parts = [
            CostLedger {
                keep_warm_mb_us: 7,
                idle_mb_us: 1,
                cold_start_mb_us: 9,
                speculative_mb_us: 2,
                dispatches: 3,
                replace_rounds: 1,
            },
            CostLedger {
                keep_warm_mb_us: 100,
                idle_mb_us: 40,
                cold_start_mb_us: 5,
                speculative_mb_us: 0,
                dispatches: 8,
                replace_rounds: 0,
            },
            CostLedger {
                keep_warm_mb_us: 3,
                idle_mb_us: 3,
                cold_start_mb_us: 3,
                speculative_mb_us: 3,
                dispatches: 3,
                replace_rounds: 3,
            },
        ];
        let mut fwd = CostLedger::default();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = CostLedger::default();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
    }

    #[test]
    fn unit_conversion_is_gb_seconds() {
        // 1024 MB held for 1 s = 1024 MB · 1e6 µs = 1 GB·s.
        let ledger = CostLedger {
            keep_warm_mb_us: 1024 * 1_000_000,
            ..Default::default()
        };
        assert!((ledger.keep_warm_gb_s() - 1.0).abs() < 1e-12);
        assert!((ledger.total_gb_s() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_request_bill_handles_zero_served() {
        let ledger = CostLedger {
            cold_start_mb_us: 1024 * 1_000_000,
            ..Default::default()
        };
        assert_eq!(ledger.gb_s_per_request(0), 0.0);
        assert!((ledger.gb_s_per_request(2) - 0.5).abs() < 1e-12);
    }
}
