//! The pre-index linear scans, retained verbatim as the oracle for
//! differential testing.
//!
//! Every function here is the naive O(n) / O(n log n) implementation the
//! indexed hot paths replaced. [`crate::ScanMode::Reference`] routes the
//! engine through these, and `tests/equivalence.rs` asserts that random
//! workloads produce byte-identical reports either way. Keep these scans
//! dumb and obviously correct — their value is that they are too simple
//! to be wrong in the same way an index-maintenance bug would be.

use std::cmp::Reverse;

use faas_trace::FunctionId;

use crate::cluster::ClusterState;
use crate::ids::{ContainerId, WorkerId};

/// `MaxFree` placement by two linear filter-then-max passes: first the
/// alive worker with the most free memory that already fits `need` MB,
/// then (under pressure) the one with the most free-plus-idle
/// reclaimable memory. Ties break toward the lowest worker id.
pub fn pick_worker_max_free(cluster: &ClusterState, need: u64) -> Option<WorkerId> {
    if let Some(w) = cluster
        .workers()
        .iter()
        .filter(|w| w.alive && w.free_mb() >= need)
        .max_by_key(|w| (w.free_mb(), Reverse(w.id)))
    {
        return Some(w.id);
    }
    cluster
        .workers()
        .iter()
        .filter(|w| w.alive && w.reclaimable_mb() >= need)
        .max_by_key(|w| (w.reclaimable_mb(), Reverse(w.id)))
        .map(|w| w.id)
}

/// Dispatch pick by a linear max-scan over the function's free-thread
/// set: the most-loaded non-saturated container, oldest id on ties.
pub fn pick_available(cluster: &ClusterState, func: FunctionId) -> Option<ContainerId> {
    let rt = cluster.fn_runtime(func)?;
    rt.free_threads
        .iter()
        .max_by_key(|cid| {
            (
                cluster
                    .container(**cid)
                    .expect("free_threads references dead container")
                    .threads_in_use,
                Reverse(**cid),
            )
        })
        .copied()
}

/// The eviction order of a memory-pressure round: a full
/// recompute-and-sort of every candidate's `(priority, id)`, ascending.
/// Panics on NaN priorities exactly as the original sort did.
pub fn sorted_eviction_candidates(
    mut candidates: Vec<(f64, ContainerId)>,
) -> Vec<(f64, ContainerId)> {
    assert!(
        candidates.iter().all(|(p, _)| !p.is_nan()),
        "priorities must not be NaN"
    );
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    candidates
}
