//! Always-on structural invariants for the simulated cluster.
//!
//! Fault injection makes state transitions that are impossible in
//! fault-free runs (force-removing busy containers, abandoning
//! provisions, re-queueing in-flight requests), so the engine asserts
//! these invariants after every event in debug builds, and the
//! cross-crate integration tests assert them explicitly:
//!
//! * **Memory accounting** — every worker's charged memory equals the
//!   sum of its hosted containers and never exceeds capacity; idle sets
//!   hold exactly the fully idle containers.
//! * **Request conservation** — every arrived request is in exactly one
//!   place: started (it has a request record), waiting on a function
//!   channel, or queued on a container. Crash re-queues void the
//!   victim's record, so the identity holds through failures.

use crate::cluster::ClusterState;

/// Checks structural invariants of a simulation (or live runtime)
/// snapshot.
///
/// # Examples
///
/// ```
/// use faas_sim::{ClusterState, InvariantChecker};
///
/// let cluster = ClusterState::new(&[1024], std::iter::empty(), 1);
/// InvariantChecker::check(&cluster, 0, 0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct InvariantChecker;

impl InvariantChecker {
    /// Validates cluster bookkeeping plus request conservation:
    /// `arrived` requests must equal started (`started_records`) plus
    /// waiting (function channels and container-local queues).
    ///
    /// # Panics
    ///
    /// Panics on any violated invariant (a bug in the engine, the live
    /// runtime, or the cluster bookkeeping).
    pub fn check(cluster: &ClusterState, arrived: u64, started_records: usize) {
        cluster.validate();
        let waiting = cluster.total_pending() + cluster.total_local_queued();
        let accounted = started_records as u64 + waiting as u64;
        assert_eq!(
            arrived, accounted,
            "request conservation violated: {arrived} arrived but {accounted} accounted \
             ({started_records} started + {waiting} waiting)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::WorkerId;
    use faas_trace::{FunctionId, FunctionProfile, TimeDelta, TimePoint};

    fn cluster() -> ClusterState {
        let profiles = vec![FunctionProfile::new(
            FunctionId(0),
            "f",
            100,
            TimeDelta::from_millis(100),
        )];
        ClusterState::new(&[1000], profiles, 1)
    }

    #[test]
    fn clean_cluster_passes() {
        let mut cl = cluster();
        let id = cl.begin_provision(FunctionId(0), WorkerId(0), TimePoint::ZERO, false);
        InvariantChecker::check(&cl, 0, 0);
        cl.finish_provision(id, TimePoint::ZERO);
        InvariantChecker::check(&cl, 0, 0);
        cl.occupy_thread(id, TimePoint::ZERO);
        InvariantChecker::check(&cl, 1, 1);
    }

    #[test]
    fn crash_evict_keeps_memory_accounting() {
        let mut cl = cluster();
        let id = cl.begin_provision(FunctionId(0), WorkerId(0), TimePoint::ZERO, false);
        cl.finish_provision(id, TimePoint::ZERO);
        cl.occupy_thread(id, TimePoint::ZERO);
        cl.mark_worker_down(WorkerId(0));
        let (info, queued) = cl.crash_evict(id, TimePoint::ZERO);
        assert_eq!(info.id, id);
        assert!(queued.is_empty());
        assert_eq!(cl.used_mb(), 0);
        assert_eq!(cl.crash_evictions, 1);
        // The killed request was re-queued by the engine, so it counts
        // as waiting, not started.
        InvariantChecker::check(&cl, 0, 0);
    }

    #[test]
    #[should_panic(expected = "request conservation violated")]
    fn lost_request_detected() {
        let cl = cluster();
        InvariantChecker::check(&cl, 1, 0);
    }
}
